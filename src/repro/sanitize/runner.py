"""Sanitize orchestration: what ``repro-omp sanitize`` and
``pytest -m sanitize`` run.

Three passes, composable via ``suites``:

- ``static`` — the RACE/DLK rules over every registered manifest (or one
  user-supplied environment) on the selected machines,
- ``hb`` — the happens-before tracker over the instrumented scenario
  suite plus the work-stealing order audit,
- ``fuzz`` — the schedule-perturbation fuzzer over the clean scenarios.

The pass/fail gate is **error severity**: unlike ``repro-omp lint``
(which fails on unwaived warnings too), sanitize findings of WARNING and
INFO severity describe *ordering hazards inherent to the configuration*
— legitimate objects of study for a tuning-space sweep — while an ERROR
(a tie-break race, a fuzzer divergence, a replay mismatch, an
oversubscribed spin deadlock) means the simulation itself cannot be
trusted.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.arch.machines import get_machine, machine_names
from repro.arch.topology import MachineTopology
from repro.lint.findings import Finding, Severity
from repro.lint.runner import dedupe_findings
from repro.runtime.icv import DEFAULT_CONFIG, EnvConfig
from repro.sanitize.fuzz import DEFAULT_SEEDS, FuzzOutcome, fuzz_pass
from repro.sanitize.hb import HappensBeforeTracker
from repro.sanitize.rules import sanitize_config
from repro.sanitize.scenarios import LOOP_SPECS, loop_record, reduction_record
from repro.sanitize.steal_audit import audit_work_stealing
from repro.workloads import WORKLOADS

__all__ = [
    "SanitizeReport",
    "sanitize_environment",
    "sanitize_manifests",
    "hb_pass",
    "run_sanitize",
]

ALL_SUITES = ("static", "hb", "fuzz")


@dataclass
class SanitizeReport:
    """Everything one sanitize run produced."""

    findings: list[Finding] = field(default_factory=list)
    fuzz_outcomes: list[FuzzOutcome] = field(default_factory=list)
    stats: dict = field(default_factory=dict)
    suites: tuple[str, ...] = ()

    def failures(self) -> list[Finding]:
        """The findings that fail the run: unwaived errors."""
        return [
            f for f in self.findings
            if f.severity is Severity.ERROR and not f.waived
        ]

    @property
    def passed(self) -> bool:
        """Whether the run is clean at the error gate."""
        return not self.failures()

    def extra_payload(self) -> dict:
        """Report fields beyond the findings themselves."""
        return {
            "suites": list(self.suites),
            "stats": self.stats,
            "fuzz": [o.to_dict() for o in self.fuzz_outcomes],
            "passed": self.passed,
        }


def sanitize_environment(
    env: Mapping[str, str] | EnvConfig,
    machine: MachineTopology | str,
    program=None,
) -> list[Finding]:
    """Static pass over one environment (parse errors propagate)."""
    if isinstance(machine, str):
        machine = get_machine(machine)
    config = env if isinstance(env, EnvConfig) else EnvConfig.from_env(env)
    return sanitize_config(config, machine, program)


def sanitize_manifests(
    machine: MachineTopology | str,
    workload_names: Sequence[str] | None = None,
    config: EnvConfig = DEFAULT_CONFIG,
) -> list[Finding]:
    """Static pass over the registered manifests on one machine."""
    if isinstance(machine, str):
        machine = get_machine(machine)
    names = (
        list(workload_names)
        if workload_names is not None
        else sorted(WORKLOADS)
    )
    findings: list[Finding] = []
    for name in names:
        workload = WORKLOADS[name.lower()]
        if not workload.runs_on(machine.name):
            continue
        for input_name in workload.inputs:
            program = workload.program(input_name)
            findings.extend(sanitize_config(config, machine, program))
    return dedupe_findings(findings)


def hb_pass() -> tuple[list[Finding], dict]:
    """Happens-before tracking over the instrumented scenario suite.

    Each scenario runs with a fresh tracker; the work-stealing audit
    rides along (it is an order *audit*, not an HB analysis, but shares
    the pass because both inspect one canonical run).
    """
    findings: list[Finding] = []
    per_scenario: dict[str, dict] = {}

    for spec in LOOP_SPECS:
        tracker = HappensBeforeTracker()
        loop_record(spec, observer=tracker)
        findings.extend(tracker.findings(context=spec.name))
        per_scenario[spec.name] = tracker.stats()

    tracker = HappensBeforeTracker()
    reduction_record(observer=tracker)
    findings.extend(tracker.findings(context="reduction-slots"))
    per_scenario["reduction-slots"] = tracker.stats()

    steal_findings, steal_stats = audit_work_stealing()
    findings.extend(steal_findings)
    per_scenario["work-stealing"] = steal_stats

    stats = {
        "n_scenarios": len(per_scenario),
        "n_accesses": sum(
            s.get("n_accesses", 0) for s in per_scenario.values()
        ),
        "scenarios": per_scenario,
    }
    return findings, stats


def run_sanitize(
    suites: Sequence[str] = ALL_SUITES,
    archs: Sequence[str] | None = None,
    workload_names: Sequence[str] | None = None,
    env: Mapping[str, str] | None = None,
    seeds: Sequence[int] = DEFAULT_SEEDS,
) -> SanitizeReport:
    """Run the selected passes and aggregate one report.

    ``env`` switches the static pass from manifest mode (every workload
    program under the default config) to single-environment mode.
    """
    unknown = [s for s in suites if s not in ALL_SUITES]
    if unknown:
        raise ValueError(
            f"unknown sanitize suite(s) {unknown}; have {list(ALL_SUITES)}"
        )
    report = SanitizeReport(suites=tuple(suites))
    machines = list(archs) if archs else machine_names()

    if "static" in suites:
        static: list[Finding] = []
        for name in machines:
            if env is not None:
                static.extend(sanitize_environment(env, name))
            else:
                static.extend(
                    sanitize_manifests(name, workload_names=workload_names)
                )
        static = dedupe_findings(static)
        report.findings.extend(static)
        report.stats["static"] = {
            "n_machines": len(machines),
            "n_findings": len(static),
        }

    if "hb" in suites:
        hb_findings, hb_stats = hb_pass()
        report.findings.extend(hb_findings)
        report.stats["hb"] = hb_stats

    if "fuzz" in suites:
        fz_findings, outcomes = fuzz_pass(seeds=seeds)
        report.findings.extend(fz_findings)
        report.fuzz_outcomes = outcomes
        report.stats["fuzz"] = {
            "n_scenarios": len(outcomes),
            "n_seeds": len(tuple(seeds)),
            "n_divergent": sum(1 for o in outcomes if not o.identical),
        }

    return report
