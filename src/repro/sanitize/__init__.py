"""Concurrency sanitizer for the simulated runtime.

The third analysis plane, alongside :mod:`repro.check` (dynamic
invariants) and :mod:`repro.lint` (config/AST rules) — the simulator
analog of TSan/Archer, specialized to the one hazard a discrete-event
simulation actually has: **same-timestamp handler order**.

- :mod:`repro.sanitize.hb` — vector-clock happens-before tracking over
  engine notifications; flags unordered same-timestamp accesses to
  shared simulator state (``RACE100``),
- :mod:`repro.sanitize.fuzz` — seeded perturbation of the engine's
  tie-break order with record-identity assertions (``RACE101``),
- :mod:`repro.sanitize.steal_audit` — replay-determinism and
  arbitration audit of the work-stealing path (``RACE102``/``RACE103``),
- :mod:`repro.sanitize.rules` — static RACE/DLK rules over
  ``Program x EnvConfig x MachineTopology`` (``RACE001+``/``DLK001+``),
- :mod:`repro.sanitize.runner` — orchestration for ``repro-omp
  sanitize`` and ``pytest -m sanitize``.

``docs/SANITIZER.md`` documents the passes, the rule catalog and the
perturbation/bless workflow.
"""

from repro.sanitize.fuzz import (
    DEFAULT_SEEDS,
    FuzzOutcome,
    fuzz_findings,
    fuzz_pass,
    fuzz_scenario,
)
from repro.sanitize.hb import HappensBeforeTracker, StateAccess, TieRace
from repro.sanitize.rules import SANITIZE_RULES, sanitize_config
from repro.sanitize.runner import (
    SanitizeReport,
    hb_pass,
    run_sanitize,
    sanitize_environment,
    sanitize_manifests,
)
from repro.sanitize.scenarios import Scenario, clean_scenarios, injected_scenarios
from repro.sanitize.steal_audit import StealOrderAuditor, audit_work_stealing

__all__ = [
    "DEFAULT_SEEDS",
    "FuzzOutcome",
    "HappensBeforeTracker",
    "SANITIZE_RULES",
    "SanitizeReport",
    "Scenario",
    "StateAccess",
    "StealOrderAuditor",
    "TieRace",
    "audit_work_stealing",
    "clean_scenarios",
    "fuzz_findings",
    "fuzz_pass",
    "fuzz_scenario",
    "hb_pass",
    "injected_scenarios",
    "run_sanitize",
    "sanitize_config",
    "sanitize_environment",
    "sanitize_manifests",
]
