"""Work-stealing order audit.

The work-stealing simulator's trajectories *legitimately* depend on its
documented ``(time, sequence)`` event order plus the victim-selection
seed (see :mod:`repro.desim.stealing`): which idle worker reaches a
contended deque first is simulated arbitration, not hidden
nondeterminism.  The sanitizer therefore does not perturb that heap —
it audits the contract instead:

- **replay determinism** — two runs of the same graph, speeds and seed
  must produce identical decision streams (``RACE102`` error if not),
- **arbitration visibility** — same-timestamp groups of scheduler
  decisions from distinct workers are counted and surfaced as one
  ``RACE103`` info finding, so reviewers see how much of a trajectory
  rests on the documented order rather than on task timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.desim.stealing import TaskGraph, WorkStealingSimulator
from repro.lint.findings import Finding, Severity

__all__ = ["StealOrderAuditor", "audit_work_stealing"]


@dataclass
class StealOrderAuditor:
    """Observer for :meth:`WorkStealingSimulator.run` decision hooks."""

    events: list[tuple] = field(default_factory=list)

    # Hook signatures match the observer contract documented on run().
    def on_pop(self, now: float, worker: int, task_id: int) -> None:
        """A worker popped a task from its own deque."""
        self.events.append((now, "pop", worker, worker, task_id))

    def on_steal(
        self, now: float, thief: int, victim: int, task_id: int
    ) -> None:
        """A thief stole a task from a victim's deque."""
        self.events.append((now, "steal", thief, victim, task_id))

    def on_failed_steal(self, now: float, worker: int) -> None:
        """An idle worker scanned every deque and found nothing."""
        self.events.append((now, "scan", worker, -1, -1))

    def digest(self) -> tuple:
        """The full decision stream (replay-comparison key)."""
        return tuple(self.events)

    def arbitrated_ties(self) -> int:
        """Same-timestamp groups whose outcome the event order arbitrated.

        A group counts when at least two distinct workers made decisions
        at one timestamp and at least one decision mutated a deque (pop
        or steal) — the situations where the documented ``(time, seq)``
        order, not task timing, decided who got the work.
        """
        groups: dict[float, list[tuple]] = {}
        for ev in self.events:
            groups.setdefault(ev[0], []).append(ev)
        ties = 0
        for group in groups.values():
            if len(group) < 2:
                continue
            workers = {ev[2] for ev in group}
            mutates = any(ev[1] in ("pop", "steal") for ev in group)
            if len(workers) > 1 and mutates:
                ties += 1
        return ties


def audit_work_stealing(
    n_workers: int = 4,
    depth: int = 4,
    branching: int = 3,
    seed: int = 0,
) -> tuple[list[Finding], dict]:
    """Replay-determinism + arbitration audit of one task-tree execution."""
    graph = TaskGraph.balanced_tree(
        depth=depth, branching=branching, leaf_work=1e-4, node_work=2e-5
    )

    def one_run() -> tuple[StealOrderAuditor, float]:
        sim = WorkStealingSimulator(n_workers, seed=seed)
        auditor = StealOrderAuditor()
        result = sim.run(graph, observer=auditor)
        return auditor, result.makespan

    first, makespan_a = one_run()
    second, makespan_b = one_run()

    findings: list[Finding] = []
    if first.digest() != second.digest() or makespan_a != makespan_b:
        findings.append(
            Finding(
                rule="RACE102",
                severity=Severity.ERROR,
                subject="work-stealing",
                message=(
                    "work-stealing replay diverged: two runs with "
                    f"identical graph/seed produced different decision "
                    f"streams ({len(first.events)} vs "
                    f"{len(second.events)} events) — the simulator leaks "
                    "state between runs"
                ),
                fixit="hunt for module/global state in the stealing path",
            )
        )
    ties = first.arbitrated_ties()
    if ties:
        findings.append(
            Finding(
                rule="RACE103",
                severity=Severity.INFO,
                subject="work-stealing",
                message=(
                    f"{ties} same-timestamp deque contention(s) arbitrated "
                    "by the documented (time, sequence) event order — "
                    "expected simulated behavior, surfaced for visibility"
                ),
            )
        )
    stats = {
        "n_decisions": len(first.events),
        "n_arbitrated_ties": ties,
        "makespan": makespan_a,
        "replay_identical": first.digest() == second.digest(),
    }
    return findings, stats
