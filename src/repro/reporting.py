"""Shared report rendering for the analysis-plane CLIs.

``repro-omp lint``, ``repro-omp sanitize`` and ``repro-omp check`` all
expose ``--format json|text`` and ``--report PATH``; this module is the
single serialization point behind all three — one payload builder, one
renderer, one file writer — so the JSON artifact shape stays consistent
across planes (findings use :func:`repro.lint.findings.findings_report`
fields, checks use the ``CheckResult.to_dict`` fields) instead of three
ad-hoc printers drifting apart.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from repro.lint.findings import Finding, findings_report, format_findings

__all__ = ["report_payload", "render_report", "write_report_file"]


def report_payload(
    findings: Sequence[Finding] | None = None,
    checks: Sequence | None = None,
    failure_report: object | None = None,
    **extra: object,
) -> dict:
    """One JSON-serializable payload for any mix of findings and checks.

    ``failure_report``, if given, is a sweep
    :class:`~repro.resilience.report.FailureReport` (anything with
    ``to_dict``/``format_text``).  ``extra`` keys (plane metadata:
    suites, stats, fuzz outcomes, prune stats) are merged at the top
    level.
    """
    payload: dict = {}
    if findings is not None:
        payload.update(findings_report(findings))
    if checks is not None:
        payload.update(
            {
                "n_checks": len(checks),
                "n_failed": sum(1 for r in checks if not r.passed),
                "total_duration_s": sum(r.duration_s for r in checks),
                "checks": [r.to_dict() for r in checks],
            }
        )
    if failure_report is not None:
        payload["failure_report"] = failure_report.to_dict()
    payload.update(extra)
    return payload


def render_report(
    fmt: str,
    findings: Sequence[Finding] | None = None,
    checks: Sequence | None = None,
    failure_report: object | None = None,
    **extra: object,
) -> str:
    """Render one report as ``text`` (human) or ``json`` (machine).

    Text mode concatenates the familiar per-plane formatters; JSON mode
    emits exactly what :func:`write_report_file` would write, so piping
    stdout and reading the artifact are interchangeable.
    """
    if fmt == "json":
        return json.dumps(
            report_payload(findings=findings, checks=checks,
                           failure_report=failure_report, **extra),
            indent=1,
        )
    if fmt != "text":
        raise ValueError(f"unknown report format {fmt!r} (text|json)")
    sections = []
    if checks is not None:
        from repro.check.runner import format_results

        sections.append(format_results(list(checks)))
    if findings is not None:
        sections.append(format_findings(list(findings)))
    if failure_report is not None:
        sections.append(failure_report.format_text())
    return "\n".join(sections)


def write_report_file(
    path: str | Path,
    findings: Sequence[Finding] | None = None,
    checks: Sequence | None = None,
    failure_report: object | None = None,
    **extra: object,
) -> None:
    """Write the JSON report artifact (the CI job upload)."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        render_report("json", findings=findings, checks=checks,
                      failure_report=failure_report, **extra)
        + "\n",
        encoding="utf-8",
    )
