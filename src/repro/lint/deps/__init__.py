"""Plane 5 — signature-soundness dependency analysis (KEY rules).

The sweep engine's two load-bearing optimisations rest on completeness
claims: the ICV-equivalence pruning is sound only if
``ResolvedICVs.execution_signature()`` folds in every field the cost
model reads, and the ``SweepCache`` is sound only if every
result-altering sweep input flows into the batch key.  This plane proves
both statically: a field-level dependency analysis over the flow call
graph computes the attributes the *model-evaluation cone* (everything
reachable from batch execution) reads from the tracked input classes —
including the guard conditions dominating each read, so the documented
dead-field normalizations are modeled rather than waived — and four KEY
rule passes compare that read-set against the declared key material.
Catalog: ``docs/LINTING.md`` (plane 5).
"""

from repro.lint.deps.cone import EvalCone, compute_cone, default_roots, tracked_classes
from repro.lint.deps.passes import run_deps_passes
from repro.lint.deps.runner import deps_lint, deps_lint_graph

__all__ = [
    "EvalCone",
    "compute_cone",
    "default_roots",
    "deps_lint",
    "deps_lint_graph",
    "run_deps_passes",
    "tracked_classes",
]
