"""Plane 5 orchestration: build the graph, run the passes, apply waivers.

``deps_lint`` is the plane entry point the CLI and tests call.  It
shares the waiver file with the other planes — KEY entries belong here,
FLOW entries to the flow plane, SIM entries to the self-lint — and each
plane reports its own unused entries as SIM000 so the file cannot rot
from any side.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint.deps.passes import run_deps_passes
from repro.lint.findings import Finding
from repro.lint.flow.callgraph import CallGraph, build_callgraph
from repro.lint.selflint import (
    DEFAULT_SRC_ROOT,
    DEFAULT_WAIVERS,
    apply_waivers,
    load_waivers,
    unused_waiver_findings,
)

__all__ = ["deps_lint", "deps_lint_graph"]


def deps_lint_graph(
    graph: CallGraph, roots: tuple[str, ...] | None = None
) -> list[Finding]:
    """Run the four KEY passes over an already-built call graph."""
    return run_deps_passes(graph, roots=roots)


def deps_lint(
    src_root: str | Path = DEFAULT_SRC_ROOT,
    waivers_path: str | Path = DEFAULT_WAIVERS,
    roots: tuple[str, ...] | None = None,
) -> list[Finding]:
    """Full plane: graph + cone + passes + KEY waivers + SIM000."""
    graph = build_callgraph(src_root)
    raw = deps_lint_graph(graph, roots=roots)
    waivers = [
        w for w in load_waivers(waivers_path) if w.rule.startswith("KEY")
    ]
    findings, unused = apply_waivers(raw, waivers)
    findings.extend(unused_waiver_findings(unused))
    return findings
