"""Declared key material, parsed from the analyzed tree's AST.

Everything the KEY passes compare the cone's read-set against — the
signature component names, the dead-field normalization table, the
attributes ``execution_signature()`` itself reads, the cache key's
identity tuple, ``EnvConfig.key()``'s reads — is recovered from the
*parsed source of the tree under analysis*, never from live imports.
That is what lets the fault-injection tests lint mutated fixture trees,
and it means the passes check the code as written, not as currently
imported.

Property/method *expansion* is the bridge between derived attributes and
fields: ``expansions["wait_policy"] == {"library", "blocktime_ms"}``
says reading the derived wait policy is reading those two fields.  The
passes use it to cover property reads (KEY001), to credit aliveness
through derived slots (KEY002), and to normalize guard conditions —
a read guarded by ``wait_policy`` is guarded by ``library``/
``blocktime_ms`` for KEY004's purposes.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.flow.callgraph import CallGraph, _dotted

__all__ = [
    "CacheDecl",
    "SignatureDecl",
    "cache_declarations",
    "class_expansions",
    "signature_declarations",
]


def _is_classvar(annotation: ast.AST | None) -> bool:
    if isinstance(annotation, ast.Subscript):
        annotation = annotation.value
    d = _dotted(annotation) if annotation is not None else None
    return d is not None and d.split(".")[-1] == "ClassVar"


def _self_reads(fn_node: ast.AST) -> frozenset[str]:
    """Every ``self.X`` attribute read in one method body."""
    out: set[str] = set()
    for node in ast.walk(fn_node):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            out.add(node.attr)
    return frozenset(out)


def _class_body_assign(
    cls_node: ast.ClassDef, name: str
) -> ast.AST | None:
    """The value expression assigned to ``name`` in the class body."""
    for stmt in cls_node.body:
        if (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and stmt.target.id == name
            and stmt.value is not None
        ):
            return stmt.value
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id == name
        ):
            return stmt.value
    return None


def _literal(value: ast.AST | None):
    if value is None:
        return None
    try:
        return ast.literal_eval(value)
    except (ValueError, TypeError, SyntaxError, MemoryError):
        return None


def class_expansions(
    graph: CallGraph, cls_qualname: str
) -> tuple[dict[str, frozenset[str]], frozenset[str]]:
    """``(attr -> terminal fields, declared fields)`` for one class.

    A *terminal field* is a class-body annotated field (non-ClassVar);
    methods and properties expand, to a fixpoint, into the fields their
    bodies read.  An attribute that is neither a field nor a method
    expands to itself.
    """
    record = graph.classes[cls_qualname]
    fields: set[str] = set()
    if record.node is not None:
        for stmt in record.node.body:
            if (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and not _is_classvar(stmt.annotation)
            ):
                fields.add(stmt.target.id)
    raw: dict[str, frozenset[str]] = {}
    for name, qual in record.methods.items():
        fn = graph.functions.get(qual)
        if fn is not None:
            raw[name] = _self_reads(fn.node)
    cache: dict[str, frozenset[str]] = {}

    def expand(attr: str, stack: frozenset[str]) -> frozenset[str]:
        if attr in fields or attr not in raw:
            return frozenset({attr})
        if attr in cache:
            return cache[attr]
        if attr in stack:
            return frozenset()
        out: set[str] = set()
        for inner in raw[attr]:
            out |= expand(inner, stack | {attr})
        result = frozenset(out)
        cache[attr] = result
        return result

    expansions = {name: expand(name, frozenset()) for name in raw}
    return expansions, frozenset(fields)


@dataclass
class SignatureDecl:
    """What ``ResolvedICVs`` declares about its execution signature."""

    cls: str | None = None
    #: ``SIGNATURE_COMPONENTS`` literal, None if absent/unparseable.
    components: tuple[str, ...] | None = None
    #: ``SIGNATURE_DEAD_FIELDS`` literal: field -> (guard, reason).
    dead_fields: dict[str, tuple[str | None, str]] | None = None
    #: Attributes ``execution_signature()``'s own body reads.
    self_reads: frozenset[str] = frozenset()
    #: Element count of the returned signature tuple.
    tuple_arity: int | None = None
    fields: frozenset[str] = frozenset()
    expansions: dict[str, frozenset[str]] = field(default_factory=dict)
    rel_path: str = ""
    line: int = 0
    found: bool = False

    def terminal(self, attr: str) -> frozenset[str]:
        return self.expansions.get(attr, frozenset({attr}))


def signature_declarations(
    graph: CallGraph, cls_qualname: str | None
) -> SignatureDecl:
    """Parse the signature declarations off the tracked ICV class."""
    decl = SignatureDecl(cls=cls_qualname)
    record = graph.classes.get(cls_qualname) if cls_qualname else None
    if record is None or record.node is None:
        return decl
    sig_qual = record.methods.get("execution_signature")
    sig_fn = graph.functions.get(sig_qual) if sig_qual else None
    if sig_fn is None:
        return decl
    decl.found = True
    decl.rel_path = sig_fn.rel_path
    decl.line = sig_fn.lineno
    decl.self_reads = _self_reads(sig_fn.node)
    for node in ast.walk(sig_fn.node):
        if isinstance(node, ast.Return) and isinstance(node.value, ast.Tuple):
            decl.tuple_arity = len(node.value.elts)
            break
    components = _literal(
        _class_body_assign(record.node, "SIGNATURE_COMPONENTS")
    )
    if isinstance(components, tuple) and all(
        isinstance(c, str) for c in components
    ):
        decl.components = components
    dead = _literal(_class_body_assign(record.node, "SIGNATURE_DEAD_FIELDS"))
    if isinstance(dead, dict):
        parsed: dict[str, tuple[str | None, str]] = {}
        for name, entry in dead.items():
            if (
                isinstance(name, str)
                and isinstance(entry, tuple)
                and len(entry) == 2
                and (entry[0] is None or isinstance(entry[0], str))
                and isinstance(entry[1], str)
            ):
                parsed[name] = (entry[0], entry[1])
        decl.dead_fields = parsed
    decl.expansions, decl.fields = class_expansions(graph, cls_qualname)
    return decl


@dataclass
class CacheDecl:
    """What ``core.cache`` declares about the batch key."""

    module: str | None = None
    #: ``CACHE_KEY_FIELDS`` literal.
    key_fields: tuple[str, ...] | None = None
    #: ``CACHE_KEY_EXCLUDED`` keys -> reason.
    excluded: dict[str, str] | None = None
    #: Normalized slot names of the identity tuple ``key_material``
    #: actually hashes, in order.
    elements: tuple[str, ...] | None = None
    #: Attributes ``EnvConfig.key()`` reads.
    env_key_reads: frozenset[str] = frozenset()
    #: Whether ``machine_fingerprint`` sweeps ``dataclasses.fields``.
    machine_fp_uses_fields: bool = False
    #: Whether ``grid_fingerprint`` digests per-config ``.key()`` calls.
    grid_fp_uses_key: bool = False
    rel_path: str = ""
    line: int = 0
    found: bool = False


def _identity_elements(
    fn_node: ast.AST,
) -> tuple[tuple[str, ...] | None, dict[int, str]]:
    """Normalized names of ``key_material``'s identity tuple, in order.

    Parameter positions give the fingerprint slots their names (the
    second and third parameters are the grid and machine fingerprints,
    whatever the code calls them); ``plan.X``/``batch.X`` attributes keep
    their dotted spelling; a bare ``CACHE_FORMAT_VERSION`` name becomes
    ``format_version``.
    """
    args = fn_node.args
    positional = [*args.posonlyargs, *args.args]
    if len(positional) < 4:
        return None, {}
    plan_name = positional[0].arg
    grid_name = positional[1].arg
    machine_name = positional[2].arg
    batch_name = positional[3].arg
    renames = {plan_name: "plan", batch_name: "batch"}
    tuple_node = None
    for node in ast.walk(fn_node):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "identity"
            and isinstance(node.value, ast.Tuple)
        ):
            tuple_node = node.value
            break
    if tuple_node is None:
        return None, {}
    out: list[str] = []
    for element in tuple_node.elts:
        if isinstance(element, ast.Name):
            if element.id == grid_name:
                out.append("grid_fingerprint")
            elif element.id == machine_name:
                out.append("machine_fingerprint")
            elif element.id == "CACHE_FORMAT_VERSION":
                out.append("format_version")
            else:
                out.append(element.id)
        elif (
            isinstance(element, ast.Attribute)
            and isinstance(element.value, ast.Name)
        ):
            base = renames.get(element.value.id, element.value.id)
            out.append(f"{base}.{element.attr}")
        else:
            d = _dotted(element)
            out.append(d if d is not None else "<expr>")
    return tuple(out), renames


def cache_declarations(
    graph: CallGraph, env_cls: str | None
) -> CacheDecl:
    """Parse the cache-key declarations off the ``core.cache`` module."""
    module = f"{graph.package}.core.cache"
    decl = CacheDecl(module=module)
    tree = graph.module_tree(module)
    if tree is None:
        return decl
    key_material = graph.functions.get(f"{module}.key_material")
    if key_material is None:
        return decl
    decl.found = True
    decl.rel_path = key_material.rel_path
    decl.line = key_material.lineno
    decl.elements, _ = _identity_elements(key_material.node)
    for stmt in tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
        ):
            name = stmt.targets[0].id
            if name == "CACHE_KEY_FIELDS":
                value = _literal(stmt.value)
                if isinstance(value, tuple):
                    decl.key_fields = value
            elif name == "CACHE_KEY_EXCLUDED":
                value = _literal(stmt.value)
                if isinstance(value, dict):
                    decl.excluded = value
    machine_fp = graph.functions.get(f"{module}.machine_fingerprint")
    if machine_fp is not None:
        for node in ast.walk(machine_fp.node):
            if isinstance(node, ast.Call):
                d = _dotted(node.func)
                if d is not None and d.split(".")[-1] == "fields":
                    decl.machine_fp_uses_fields = True
                    break
    grid_fp = graph.functions.get(f"{module}.grid_fingerprint")
    if grid_fp is not None:
        for node in ast.walk(grid_fp.node):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "key"
            ):
                decl.grid_fp_uses_key = True
                break
    env_record = graph.classes.get(env_cls) if env_cls else None
    if env_record is not None:
        key_fn = graph.functions.get(env_record.methods.get("key", ""))
        if key_fn is not None:
            decl.env_key_reads = _self_reads(key_fn.node)
    return decl
