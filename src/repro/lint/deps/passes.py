"""The KEY rule passes (plane 5; catalog in ``docs/LINTING.md``).

- **KEY001** — unsound pruning: the model-evaluation cone reads a
  ``ResolvedICVs`` attribute that ``execution_signature()`` does not
  fold in.  Two configurations differing only in that attribute would be
  pruned into one equivalence class and share a modeled runtime they do
  not actually share — the silent wrong-shared-results bug the pruning's
  6.4x rests on never having.  Error.
- **KEY002** — over-splitting: a declared signature component no
  reachable model code reads.  The signature then splits equivalence
  classes on a dead dimension, costing pruning without changing any
  result.  Warning naming the dead tuple slot; an arity mismatch
  between ``SIGNATURE_COMPONENTS`` and the returned tuple is an error
  (the declaration no longer describes the code).
- **KEY003** — cache-key completeness: an input that alters batch
  results — a ``SweepPlan`` field the cone reads, a ``BatchSpec`` field,
  the grid or machine fingerprint, an ``EnvConfig`` field feeding the
  model — does not flow into the ``SweepCache`` key material.  Plan
  fields may instead be declared in ``CACHE_KEY_EXCLUDED`` with a
  reason.  Error.
- **KEY004** — dead-field drift: a field ``SIGNATURE_DEAD_FIELDS``
  declares dead is read by the cone outside its declared guard (or at
  all, for guard-``None`` entries).  Guard matching is normalized
  through property expansion, so a read guarded by the derived
  ``wait_policy`` satisfies a ``library``/``blocktime_ms``-level guard
  and vice versa.  Error.

Missing declarations (the class, the method, a table) are warnings, not
silent passes — a stale analysis target would otherwise un-protect the
pipeline, the same convention FLOW001 uses for vanished roots.
"""

from __future__ import annotations

from repro.lint.deps.cone import (
    EvalCone,
    compute_cone,
    default_roots,
    tracked_classes,
)
from repro.lint.deps.declarations import (
    CacheDecl,
    SignatureDecl,
    cache_declarations,
    class_expansions,
    signature_declarations,
)
from repro.lint.findings import Finding, Severity
from repro.lint.flow.callgraph import CallGraph

__all__ = [
    "check_cache_key",
    "check_dead_fields",
    "check_signature_alive",
    "check_signature_complete",
    "run_deps_passes",
]


def _subject(qualname: str, package: str) -> str:
    prefix = package + "."
    return qualname[len(prefix):] if qualname.startswith(prefix) else qualname


def _missing(rule: str, what: str, fixit: str) -> Finding:
    return Finding(
        rule=rule,
        severity=Severity.WARNING,
        subject=what,
        message=(
            f"{what} not found in the tree: the declaration was renamed "
            f"or removed, so this soundness check no longer covers it"
        ),
        fixit=fixit,
        path="lint/deps/passes.py",
    )


# ----------------------------------------------------------------------
# KEY001 — signature completeness (unsound pruning)
# ----------------------------------------------------------------------
def check_signature_complete(
    graph: CallGraph, cone: EvalCone, sig: SignatureDecl
) -> list[Finding]:
    """Findings for cone-read ICV attributes the signature misses."""
    findings: list[Finding] = []
    if not sig.found or sig.cls is None:
        return [_missing(
            "KEY001", "ResolvedICVs.execution_signature",
            "restore the method or repoint the tracked class in "
            "lint/deps/cone.py",
        )]
    covered = set(sig.self_reads)
    covered_terminal: set[str] = set()
    for attr in covered:
        covered_terminal |= sig.terminal(attr)
    dead = set(sig.dead_fields or {})
    by_attr: dict[str, object] = {}
    for read in cone.reads_of(sig.cls):
        by_attr.setdefault(read.attr, read)
    simple = sig.cls.rsplit(".", 1)[-1]
    for attr in sorted(by_attr):
        if attr in covered or attr in dead:
            continue
        terminal = sig.terminal(attr)
        if terminal and terminal <= covered_terminal:
            continue
        read = by_attr[attr]
        findings.append(Finding(
            rule="KEY001",
            severity=Severity.ERROR,
            subject=f"{simple}.{attr}",
            message=(
                f"the model-evaluation cone reads {simple}.{attr} (in "
                f"{_subject(read.qualname, graph.package)}, "
                f"{read.rel_path}:{read.lineno}) but "
                f"execution_signature() does not fold it in: two "
                f"configurations differing only in {attr!r} would be "
                f"pruned into one class and share a runtime they do not "
                f"share (unsound pruning)"
            ),
            fixit=(
                f"add a {attr!r} slot to execution_signature() and "
                f"SIGNATURE_COMPONENTS, or declare it in "
                f"SIGNATURE_DEAD_FIELDS with the guard that makes it "
                f"irrelevant"
            ),
            path=read.rel_path,
            line=read.lineno,
        ))
    return findings


# ----------------------------------------------------------------------
# KEY002 — signature aliveness (over-splitting)
# ----------------------------------------------------------------------
def check_signature_alive(
    graph: CallGraph, cone: EvalCone, sig: SignatureDecl
) -> list[Finding]:
    """Findings for signature slots no reachable model code reads."""
    findings: list[Finding] = []
    if not sig.found or sig.cls is None:
        return findings  # KEY001 already reported the vanished method.
    if sig.components is None:
        return [_missing(
            "KEY002", "ResolvedICVs.SIGNATURE_COMPONENTS",
            "declare SIGNATURE_COMPONENTS naming each signature tuple "
            "slot, in order",
        )]
    simple = sig.cls.rsplit(".", 1)[-1]
    if (
        sig.tuple_arity is not None
        and len(sig.components) != sig.tuple_arity
    ):
        findings.append(Finding(
            rule="KEY002",
            severity=Severity.ERROR,
            subject=f"{simple}.SIGNATURE_COMPONENTS",
            message=(
                f"SIGNATURE_COMPONENTS names {len(sig.components)} "
                f"slots but execution_signature() returns "
                f"{sig.tuple_arity}: the declaration no longer "
                f"describes the tuple"
            ),
            fixit="update SIGNATURE_COMPONENTS to match the tuple",
            path=sig.rel_path,
            line=sig.line,
        ))
    read_names: set[str] = set()
    for attr in cone.read_attrs(sig.cls):
        if attr == "execution_signature":
            # The grouping code reads the signature itself; expanding it
            # would mark every component alive and blind this pass.
            continue
        read_names.add(attr)
        read_names |= sig.terminal(attr)
    for slot, component in enumerate(sig.components):
        alive = component in read_names or (
            sig.terminal(component) & read_names
        )
        if not alive:
            findings.append(Finding(
                rule="KEY002",
                severity=Severity.WARNING,
                subject=f"{simple}.{component}",
                message=(
                    f"signature slot {slot} ({component!r}) is read by "
                    f"no code reachable from the evaluation cone: the "
                    f"signature splits equivalence classes on a dead "
                    f"dimension (lost pruning, never wrong results)"
                ),
                fixit=(
                    f"drop the {component!r} slot from "
                    f"execution_signature() and SIGNATURE_COMPONENTS, "
                    f"or wire the field into the model"
                ),
                path=sig.rel_path,
                line=sig.line,
            ))
    return findings


# ----------------------------------------------------------------------
# KEY003 — cache-key completeness
# ----------------------------------------------------------------------
def check_cache_key(
    graph: CallGraph,
    cone: EvalCone,
    cache: CacheDecl,
    tracked: dict[str, str],
) -> list[Finding]:
    """Findings for result-altering inputs outside the batch key."""
    findings: list[Finding] = []
    if not cache.found:
        return [_missing(
            "KEY003", "core.cache.key_material",
            "restore key_material()/CACHE_KEY_FIELDS in core/cache.py",
        )]
    if (
        cache.key_fields is not None
        and cache.elements is not None
        and tuple(cache.key_fields) != tuple(cache.elements)
    ):
        findings.append(Finding(
            rule="KEY003",
            severity=Severity.ERROR,
            subject="cache.CACHE_KEY_FIELDS",
            message=(
                f"CACHE_KEY_FIELDS {list(cache.key_fields)} does not "
                f"match the identity tuple key_material() hashes "
                f"{list(cache.elements)}: the declared key no longer "
                f"describes the real one"
            ),
            fixit="keep CACHE_KEY_FIELDS and the identity tuple in sync",
            path=cache.rel_path,
            line=cache.line,
        ))
    elements = set(cache.elements or cache.key_fields or ())
    excluded = set(cache.excluded or ())

    def first_read(cls: str | None, attr: str):
        for read in cone.reads_of(cls):
            if read.attr == attr:
                return read
        return None

    for simple, prefix in (("SweepPlan", "plan"), ("BatchSpec", "batch")):
        cls = tracked.get(simple)
        for attr in sorted(cone.read_attrs(cls)):
            name = f"{prefix}.{attr}"
            if name in elements or name in excluded:
                continue
            read = first_read(cls, attr)
            findings.append(Finding(
                rule="KEY003",
                severity=Severity.ERROR,
                subject=f"cache.{name}",
                message=(
                    f"{name} alters batch results (read in "
                    f"{_subject(read.qualname, graph.package)}, "
                    f"{read.rel_path}:{read.lineno}) but does not flow "
                    f"into the SweepCache key material and is not "
                    f"declared in CACHE_KEY_EXCLUDED: two sweeps "
                    f"differing in it would share cache entries"
                ),
                fixit=(
                    f"add a {name!r} slot to key_material() and "
                    f"CACHE_KEY_FIELDS, or declare the exclusion with "
                    f"its reason in CACHE_KEY_EXCLUDED"
                ),
                path=read.rel_path,
                line=read.lineno,
            ))
    for required, why in (
        ("grid_fingerprint",
         "the configuration grid parameterizes every batch"),
        ("machine_fingerprint",
         "the machine model parameterizes every batch"),
    ):
        if required not in elements:
            findings.append(Finding(
                rule="KEY003",
                severity=Severity.ERROR,
                subject=f"cache.{required}",
                message=(
                    f"the {required} no longer flows into the SweepCache "
                    f"key material: {why}, so stale entries would hit"
                ),
                fixit=f"restore the {required} slot in key_material()",
                path=cache.rel_path,
                line=cache.line,
            ))
    if not cache.machine_fp_uses_fields:
        findings.append(Finding(
            rule="KEY003",
            severity=Severity.ERROR,
            subject="cache.machine_fingerprint",
            message=(
                "machine_fingerprint() no longer sweeps "
                "dataclasses.fields() of the machine model: a new or "
                "edited topology field would silently hit stale entries"
            ),
            fixit="digest every declared field of the machine dataclass",
            path=cache.rel_path,
            line=cache.line,
        ))
    if not cache.grid_fp_uses_key:
        findings.append(Finding(
            rule="KEY003",
            severity=Severity.ERROR,
            subject="cache.grid_fingerprint",
            message=(
                "grid_fingerprint() no longer digests per-configuration "
                "identity keys (.key() calls): grid edits would not "
                "change the fingerprint"
            ),
            fixit="digest each configuration's .key() in grid order",
            path=cache.rel_path,
            line=cache.line,
        ))
    env_cls = tracked.get("EnvConfig")
    if env_cls is not None and cache.env_key_reads:
        expansions, _fields = class_expansions(graph, env_cls)
        key_terminal: set[str] = set()
        for attr in cache.env_key_reads:
            key_terminal |= expansions.get(attr, frozenset({attr}))
        for attr in sorted(cone.read_attrs(env_cls)):
            terminal = expansions.get(attr, frozenset({attr}))
            if terminal <= key_terminal:
                continue
            read = first_read(env_cls, attr)
            findings.append(Finding(
                rule="KEY003",
                severity=Severity.ERROR,
                subject=f"EnvConfig.{attr}",
                message=(
                    f"EnvConfig.{attr} feeds the model (read in "
                    f"{_subject(read.qualname, graph.package)}, "
                    f"{read.rel_path}:{read.lineno}) but is missing "
                    f"from EnvConfig.key(), the identity the grid "
                    f"fingerprint digests: grids differing in it would "
                    f"share cache entries"
                ),
                fixit=f"fold {attr!r} into EnvConfig.key()",
                path=read.rel_path,
                line=read.lineno,
            ))
    return findings


# ----------------------------------------------------------------------
# KEY004 — dead-field normalization drift
# ----------------------------------------------------------------------
def check_dead_fields(
    graph: CallGraph, cone: EvalCone, sig: SignatureDecl
) -> list[Finding]:
    """Findings for declared-dead fields read outside their guard."""
    findings: list[Finding] = []
    if not sig.found or sig.cls is None:
        return findings  # KEY001 already reported the vanished method.
    if sig.dead_fields is None:
        return [_missing(
            "KEY004", "ResolvedICVs.SIGNATURE_DEAD_FIELDS",
            "declare SIGNATURE_DEAD_FIELDS mapping each normalized-away "
            "field to (guard attribute, reason)",
        )]
    simple = sig.cls.rsplit(".", 1)[-1]
    known = sig.fields | set(sig.expansions)
    for name, (guard, reason) in sorted(sig.dead_fields.items()):
        if name not in sig.fields:
            findings.append(Finding(
                rule="KEY004",
                severity=Severity.WARNING,
                subject=f"{simple}.{name}",
                message=(
                    f"SIGNATURE_DEAD_FIELDS declares {name!r} dead but "
                    f"{simple} has no such field: the table has drifted "
                    f"from the dataclass"
                ),
                fixit="remove or rename the stale table entry",
                path=sig.rel_path,
                line=sig.line,
            ))
            continue
        if guard is not None and guard not in known:
            findings.append(Finding(
                rule="KEY004",
                severity=Severity.WARNING,
                subject=f"{simple}.{name}",
                message=(
                    f"SIGNATURE_DEAD_FIELDS guards {name!r} on "
                    f"{guard!r}, which is not a field or derived "
                    f"attribute of {simple}"
                ),
                fixit="point the guard at a real attribute",
                path=sig.rel_path,
                line=sig.line,
            ))
            continue
        guard_norm: frozenset[str] = frozenset()
        if guard is not None:
            guard_norm = frozenset({guard}) | sig.terminal(guard)
        for read in cone.reads_of(sig.cls):
            if read.attr != name:
                continue
            if guard is None:
                findings.append(Finding(
                    rule="KEY004",
                    severity=Severity.ERROR,
                    subject=f"{simple}.{name}",
                    message=(
                        f"{simple}.{name} is declared dead "
                        f"({reason}) but the evaluation cone reads it in "
                        f"{_subject(read.qualname, graph.package)} "
                        f"({read.rel_path}:{read.lineno}): the "
                        f"normalization table has drifted from the code"
                    ),
                    fixit=(
                        f"give the field a signature slot, or remove "
                        f"the read"
                    ),
                    path=read.rel_path,
                    line=read.lineno,
                ))
                continue
            site_norm: set[str] = set()
            for guard_cls, guard_attr in read.guards:
                if guard_cls == sig.cls:
                    site_norm.add(guard_attr)
                    site_norm |= sig.terminal(guard_attr)
            if guard_norm & site_norm:
                continue
            guards_text = (
                ", ".join(sorted(a for _, a in read.guards)) or "none"
            )
            findings.append(Finding(
                rule="KEY004",
                severity=Severity.ERROR,
                subject=f"{simple}.{name}",
                message=(
                    f"{simple}.{name} is declared dead under "
                    f"{guard!r} ({reason}) but "
                    f"{_subject(read.qualname, graph.package)} reads it "
                    f"outside that guard "
                    f"({read.rel_path}:{read.lineno}; guards at the "
                    f"site: {guards_text}): the read can observe a "
                    f"value the signature normalized away"
                ),
                fixit=(
                    f"guard the read on {guard!r}, or give the field "
                    f"an unconditional signature slot"
                ),
                path=read.rel_path,
                line=read.lineno,
            ))
    return findings


def run_deps_passes(
    graph: CallGraph, roots: tuple[str, ...] | None = None
) -> list[Finding]:
    """All four KEY passes over one call graph."""
    if roots is None:
        roots = default_roots(graph)
    tracked = tracked_classes(graph)
    cone = compute_cone(graph, roots, frozenset(tracked.values()))
    findings: list[Finding] = []
    for missing in cone.missing_roots:
        findings.append(Finding(
            rule="KEY001",
            severity=Severity.WARNING,
            subject=_subject(missing, graph.package),
            message=(
                f"evaluation-cone root {missing!r} not found in the "
                f"tree: the function was renamed or removed, so the "
                f"signature-soundness guard no longer covers it"
            ),
            fixit="update default_roots in lint/deps/cone.py",
            path="lint/deps/cone.py",
        ))
    sig = signature_declarations(graph, tracked.get("ResolvedICVs"))
    cache = cache_declarations(graph, tracked.get("EnvConfig"))
    findings.extend(check_signature_complete(graph, cone, sig))
    findings.extend(check_signature_alive(graph, cone, sig))
    findings.extend(check_cache_key(graph, cone, cache, tracked))
    findings.extend(check_dead_fields(graph, cone, sig))
    return findings
