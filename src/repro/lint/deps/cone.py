"""The model-evaluation cone: reachable code and its tracked reads.

The cone is the transitive call closure rooted at sweep batch execution
(``core.sweep._execute_batch``) — every function whose behaviour can
influence one batch's records.  For each member the guard-aware
attribute-read extraction (:func:`repro.lint.flow.summaries.
direct_attribute_reads`) collects reads of the *tracked classes*: the
model inputs whose identity the signature and cache key must cover.

Reads a tracked class performs on **itself** are exempted —
``EnvConfig.key()`` reading its own fields is the identity mechanism the
passes check *against*, not a model dependency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lint.flow.callgraph import CallGraph
from repro.lint.flow.summaries import AttrRead, direct_attribute_reads

__all__ = [
    "TRACKED_CLASS_NAMES",
    "EvalCone",
    "compute_cone",
    "default_roots",
    "find_class",
    "tracked_classes",
]

#: Simple names of the model-input classes whose reads the plane tracks.
#: ``ResolvedICVs``/``EnvConfig`` back the signature rules (KEY001/2/4);
#: ``SweepPlan``/``BatchSpec``/``MachineTopology``/``Program`` back the
#: cache-key rule (KEY003).
TRACKED_CLASS_NAMES = (
    "ResolvedICVs",
    "EnvConfig",
    "MachineTopology",
    "Program",
    "SweepPlan",
    "BatchSpec",
)


def default_roots(graph: CallGraph) -> tuple[str, ...]:
    """The cone roots: one per batch-execution entry point."""
    return (f"{graph.package}.core.sweep._execute_batch",)


def find_class(graph: CallGraph, name: str) -> str | None:
    """The qualname of the (unique) project class with simple name ``name``."""
    matches = sorted(
        q for q in graph.classes if q.rsplit(".", 1)[-1] == name
    )
    return matches[0] if matches else None


def tracked_classes(graph: CallGraph) -> dict[str, str]:
    """Simple name -> qualname for every tracked class found in the tree."""
    out: dict[str, str] = {}
    for name in TRACKED_CLASS_NAMES:
        qual = find_class(graph, name)
        if qual is not None:
            out[name] = qual
    return out


@dataclass
class EvalCone:
    """Reachable functions from the roots, and their tracked reads."""

    roots: tuple[str, ...]
    missing_roots: tuple[str, ...]
    members: frozenset[str]
    #: Every tracked-class read in the cone, own-class reads exempted,
    #: ordered by (function, line).
    reads: tuple[AttrRead, ...]

    def reads_of(self, cls_qualname: str | None) -> list[AttrRead]:
        return [r for r in self.reads if r.cls == cls_qualname]

    def read_attrs(self, cls_qualname: str | None) -> frozenset[str]:
        return frozenset(
            r.attr for r in self.reads if r.cls == cls_qualname
        )


def compute_cone(
    graph: CallGraph,
    roots: tuple[str, ...] | None = None,
    tracked: frozenset[str] | None = None,
) -> EvalCone:
    """BFS the call closure from ``roots`` and collect tracked reads."""
    if roots is None:
        roots = default_roots(graph)
    if tracked is None:
        tracked = frozenset(tracked_classes(graph).values())
    else:
        tracked = frozenset(tracked)
    present = [r for r in roots if r in graph.functions]
    missing = tuple(r for r in roots if r not in graph.functions)
    seen: set[str] = set(present)
    queue = list(present)
    head = 0
    while head < len(queue):
        current = queue[head]
        head += 1
        for site in graph.calls.get(current, ()):
            if site.callee is not None and site.callee not in seen:
                seen.add(site.callee)
                queue.append(site.callee)
    reads: list[AttrRead] = []
    for member in sorted(seen):
        record = graph.functions[member]
        for read in direct_attribute_reads(graph, member, tracked):
            if record.cls == read.cls:
                continue
            reads.append(read)
    return EvalCone(tuple(roots), missing, frozenset(seen), tuple(reads))
