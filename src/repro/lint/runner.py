"""Lint orchestration: what ``repro-omp lint`` and ``pytest -m lint`` run.

Three entry points, one per plane:

- :func:`lint_environment` — one user-supplied environment against one
  machine (and optionally one program),
- :func:`lint_manifests` — every registered benchmark manifest on one
  machine: program-spec rules over each input's :class:`Program`, plus
  program-aware config rules under a given (default) configuration,
- :func:`lint_repository` — the self-lint over ``src/repro`` with
  waivers applied.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from pathlib import Path

from repro.arch.machines import get_machine
from repro.arch.topology import MachineTopology
from repro.lint.config_rules import lint_config
from repro.lint.findings import Finding
from repro.lint.program_rules import lint_program
from repro.lint.selflint import DEFAULT_SRC_ROOT, DEFAULT_WAIVERS, self_lint
from repro.runtime.icv import DEFAULT_CONFIG, EnvConfig
from repro.workloads import WORKLOADS

__all__ = [
    "dedupe_findings",
    "lint_environment",
    "lint_manifests",
    "lint_repository",
]


def dedupe_findings(findings: Sequence[Finding]) -> list[Finding]:
    """Drop exact repeats (first occurrence wins, order preserved).

    Manifest linting visits one program per input size; a defect in the
    shared builder shows up once per input with identical coordinates.
    """
    seen: set[Finding] = set()
    out: list[Finding] = []
    for f in findings:
        if f not in seen:
            seen.add(f)
            out.append(f)
    return out


def lint_environment(
    env: Mapping[str, str] | EnvConfig,
    machine: MachineTopology | str,
    program=None,
) -> list[Finding]:
    """Plane 1 over one environment (parse errors propagate to the caller)."""
    if isinstance(machine, str):
        machine = get_machine(machine)
    config = env if isinstance(env, EnvConfig) else EnvConfig.from_env(env)
    return lint_config(config, machine, program)


def lint_manifests(
    machine: MachineTopology | str,
    workload_names: Sequence[str] | None = None,
    config: EnvConfig = DEFAULT_CONFIG,
) -> list[Finding]:
    """Plane 1 over the benchmark manifests shipped with the repo.

    For every selected workload that runs on ``machine`` and every defined
    input size: program-spec rules over the built :class:`Program`, then
    the config rules (program-aware ones included) under ``config``.
    """
    if isinstance(machine, str):
        machine = get_machine(machine)
    names = (
        list(workload_names)
        if workload_names is not None
        else sorted(WORKLOADS)
    )
    findings: list[Finding] = []
    for name in names:
        workload = WORKLOADS[name.lower()]
        if not workload.runs_on(machine.name):
            continue
        for input_name in workload.inputs:
            program = workload.program(input_name)
            findings.extend(lint_program(program))
            findings.extend(lint_config(config, machine, program))
    return dedupe_findings(findings)


def lint_repository(
    src_root: str | Path = DEFAULT_SRC_ROOT,
    waivers_path: str | Path = DEFAULT_WAIVERS,
) -> list[Finding]:
    """Plane 3: the simulator linting its own sources."""
    return self_lint(src_root=src_root, waivers_path=waivers_path)
