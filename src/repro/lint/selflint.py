"""Plane 3: the simulator linting itself (stdlib-``ast``, no new deps).

A reproduction's value rests on determinism: the same inputs must give
bit-identical records on every run, interpreter, and machine.  These
rules mechanically enforce the determinism contract on ``src/repro``:

- **SIM001** — no wall-clock reads in the simulator core (``desim/``,
  ``runtime/``) or the record frame layer (``frame/``): simulated time
  must come from the event loop, never the host clock, and frame
  payloads must never absorb host timestamps.
- **SIM002** — no unseeded randomness in model code (``desim/``,
  ``runtime/``, ``arch/``, ``resilience/``): module-global ``random.*`` /
  legacy ``numpy.random.*`` state, or ``default_rng()`` without a seed.
  The resilience layer is in scope because retry jitter and chaos-fault
  placement feed the deterministic failure reports.
- **SIM003** — no iteration over set expressions anywhere in the package:
  set order is hash-randomized across processes, so any record or report
  derived from it would be irreproducible.
- **SIM004** — model-layer dataclasses (``runtime/``, ``arch/``,
  ``workloads/``, ``desim/``, ``resilience/``) must be ``frozen=True``:
  shared mutable model state is how cross-run contamination starts.
  Resilience bookkeeping that is mutable by design carries a reasoned
  waiver instead of a scope carve-out.
- **SIM005** — no float ``==``/``!=`` against float literals in
  ``check/``: verification must use explicit exact-vs-tolerant helpers.

Intentional exceptions live in ``lint/waivers.toml`` next to this module;
each waiver names the rule, a path suffix, an optional symbol, and a
reason.  Unused waivers are themselves reported (SIM000) so the file
cannot rot.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigError
from repro.lint.findings import Finding, Severity

try:  # Python 3.11+
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - 3.10 fallback below
    tomllib = None

__all__ = [
    "SELF_RULES",
    "Waiver",
    "load_waivers",
    "apply_waivers",
    "unused_waiver_findings",
    "self_lint_source",
    "self_lint_tree",
    "self_lint",
    "DEFAULT_SRC_ROOT",
    "DEFAULT_WAIVERS",
]

#: The package root the self-lint walks by default (src/repro).
DEFAULT_SRC_ROOT = Path(__file__).resolve().parents[1]
#: The waivers file shipped with the package.
DEFAULT_WAIVERS = Path(__file__).resolve().parent / "waivers.toml"

#: rule id -> path-prefix scopes (relative to the linted root, "" = all).
SELF_RULES: dict[str, tuple[str, ...]] = {
    "SIM001": ("desim/", "runtime/", "frame/", "serve/"),
    "SIM002": ("desim/", "runtime/", "arch/", "resilience/", "serve/"),
    "SIM003": ("",),
    "SIM004": ("runtime/", "arch/", "workloads/", "desim/", "resilience/"),
    "SIM005": ("check/",),
}

_WALL_CLOCK_ATTRS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
    }
)
_DATETIME_NOW = frozenset({"now", "utcnow", "today"})
_RANDOM_GLOBALS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "sample",
        "shuffle",
        "uniform",
        "gauss",
        "normalvariate",
        "lognormvariate",
        "betavariate",
        "expovariate",
        "getrandbits",
        "seed",
    }
)
_NP_RANDOM_LEGACY = frozenset(
    {
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "choice",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "lognormal",
        "exponential",
        "poisson",
        "seed",
    }
)


def _in_scope(rule: str, rel_path: str) -> bool:
    return any(rel_path.startswith(p) for p in SELF_RULES[rule])


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _SelfLintVisitor(ast.NodeVisitor):
    """One-file determinism pass."""

    def __init__(self, rel_path: str):
        self.rel_path = rel_path
        self.findings: list[Finding] = []
        #: Local alias -> canonical module ("np" -> "numpy").
        self.module_aliases: dict[str, str] = {}
        #: Names imported from `time` ("from time import perf_counter").
        self.time_imports: set[str] = set()
        self.scope: list[str] = []

    # -- bookkeeping ---------------------------------------------------
    def _symbol(self) -> str:
        return ".".join(self.scope) if self.scope else "<module>"

    def _emit(
        self, rule: str, line: int, message: str, fixit: str,
        severity: Severity = Severity.ERROR,
    ) -> None:
        if not _in_scope(rule, self.rel_path):
            return
        self.findings.append(
            Finding(
                rule=rule,
                severity=severity,
                subject=self._symbol(),
                message=message,
                fixit=fixit,
                path=self.rel_path,
                line=line,
            )
        )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.module_aliases[alias.asname or alias.name] = alias.name
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            for alias in node.names:
                self.time_imports.add(alias.asname or alias.name)
        self.generic_visit(node)

    def _canonical(self, dotted: str) -> str:
        """Rewrite a leading module alias to its canonical name."""
        head, _, rest = dotted.partition(".")
        head = self.module_aliases.get(head, head)
        return f"{head}.{rest}" if rest else head

    # -- scope tracking ------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.scope.append(node.name)
        self.generic_visit(node)
        self.scope.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.scope.append(node.name)
        self.generic_visit(node)
        self.scope.pop()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._check_dataclass(node)
        self.scope.append(node.name)
        self.generic_visit(node)
        self.scope.pop()

    # -- SIM004: frozen dataclasses ------------------------------------
    def _check_dataclass(self, node: ast.ClassDef) -> None:
        for deco in node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            name = _dotted(target)
            if name is None or self._canonical(name) not in (
                "dataclass",
                "dataclasses.dataclass",
            ):
                continue
            frozen = False
            if isinstance(deco, ast.Call):
                for kw in deco.keywords:
                    if kw.arg == "frozen" and isinstance(kw.value, ast.Constant):
                        frozen = bool(kw.value.value)
            if not frozen:
                # Report under the class's own symbol for waiver matching.
                self.scope.append(node.name)
                self._emit(
                    "SIM004",
                    node.lineno,
                    f"model-layer dataclass {node.name!r} is not frozen: "
                    "mutable model state breaks run-to-run isolation",
                    "declare @dataclass(frozen=True) or move out of the "
                    "model layer",
                )
                self.scope.pop()

    # -- SIM001/SIM002: calls ------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        name = _dotted(node.func)
        if name is not None:
            canonical = self._canonical(name)
            self._check_wall_clock(node, canonical)
            self._check_randomness(node, canonical)
        self.generic_visit(node)

    def _check_wall_clock(self, node: ast.Call, name: str) -> None:
        is_clock = (
            (name.startswith("time.") and name[5:] in _WALL_CLOCK_ATTRS)
            or name in self.time_imports
            or (
                name.startswith(("datetime.", "datetime.datetime."))
                and name.rsplit(".", 1)[-1] in _DATETIME_NOW
            )
        )
        if is_clock:
            self._emit(
                "SIM001",
                node.lineno,
                f"wall-clock read {name}() in the simulator core: simulated "
                "time must come from the event loop, not the host clock",
                "thread the simulation clock (or a seed) in explicitly",
            )

    def _check_randomness(self, node: ast.Call, name: str) -> None:
        if name.startswith("random.") and name[7:] in _RANDOM_GLOBALS:
            self._emit(
                "SIM002",
                node.lineno,
                f"{name}() draws from the process-global random state: "
                "unseeded randomness makes records irreproducible",
                "use numpy.random.default_rng(seed) (or random.Random(seed)) "
                "with an explicit seed",
            )
            return
        if name.startswith("numpy.random."):
            tail = name[len("numpy.random."):]
            if tail == "default_rng" and not node.args and not node.keywords:
                self._emit(
                    "SIM002",
                    node.lineno,
                    "default_rng() without a seed pulls OS entropy: records "
                    "become irreproducible",
                    "pass an explicit seed: default_rng(seed)",
                )
            elif tail in _NP_RANDOM_LEGACY:
                self._emit(
                    "SIM002",
                    node.lineno,
                    f"legacy {name}() uses numpy's global random state",
                    "use numpy.random.default_rng(seed) with an explicit seed",
                )

    # -- SIM003: set iteration ----------------------------------------
    def _check_iter(self, iter_node: ast.AST) -> None:
        is_set_expr = isinstance(iter_node, (ast.Set, ast.SetComp)) or (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Name)
            and iter_node.func.id in ("set", "frozenset")
        )
        if is_set_expr:
            self._emit(
                "SIM003",
                iter_node.lineno,
                "iterating a set expression: set order is hash-randomized "
                "across processes, so anything derived from this order is "
                "irreproducible",
                "iterate sorted(...) over the set instead",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _visit_comp(self, node) -> None:
        for gen in node.generators:
            self._check_iter(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp

    # -- SIM005: float equality ---------------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        has_eq = any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops)
        if has_eq:
            operands = [node.left, *node.comparators]
            if any(
                isinstance(o, ast.Constant) and isinstance(o.value, float)
                for o in operands
            ):
                self._emit(
                    "SIM005",
                    node.lineno,
                    "float ==/!= against a float literal in verification "
                    "code: use an explicit exact-comparison helper or a "
                    "tolerance",
                    "compare via math.isclose(...) or an intentional "
                    "bit-exact helper",
                    severity=Severity.WARNING,
                )
        self.generic_visit(node)


def self_lint_source(source: str, rel_path: str) -> list[Finding]:
    """Lint one module's source; ``rel_path`` decides rule scopes."""
    tree = ast.parse(source, filename=rel_path)
    visitor = _SelfLintVisitor(rel_path)
    visitor.visit(tree)
    return visitor.findings


def self_lint_tree(src_root: str | Path = DEFAULT_SRC_ROOT) -> list[Finding]:
    """Lint every ``*.py`` under ``src_root`` (deterministic file order)."""
    root = Path(src_root)
    findings: list[Finding] = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        findings.extend(
            self_lint_source(path.read_text(encoding="utf-8"), rel)
        )
    return findings


# ----------------------------------------------------------------------
# Waivers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Waiver:
    """One intentional exception: rule + path suffix (+ optional symbol).

    ``line`` is the ``[[waiver]]`` header's line in ``waivers.toml`` —
    carried so a stale-waiver finding (SIM000) points at the exact entry
    to delete rather than at the file as a whole.
    """

    rule: str
    path: str
    reason: str
    symbol: str = ""
    line: int = 0

    def matches(self, finding: Finding) -> bool:
        """Whether this waiver covers ``finding``."""
        if finding.rule != self.rule:
            return False
        if not finding.path.endswith(self.path):
            return False
        if self.symbol and self.symbol not in finding.subject:
            return False
        return True

    def describe(self) -> str:
        """Short identity string (used in SIM000 unused-waiver findings)."""
        sym = f"::{self.symbol}" if self.symbol else ""
        return f"{self.rule} @ {self.path}{sym}"


def _parse_toml_minimal(text: str) -> dict:
    """Tiny TOML subset parser (``[[waiver]]`` + ``key = "string"``).

    Python 3.10 lacks ``tomllib`` and new dependencies are off the table,
    so this covers exactly the grammar ``waivers.toml`` uses.
    """
    data: dict = {"waiver": []}
    current: dict | None = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line == "[[waiver]]":
            current = {}
            data["waiver"].append(current)
            continue
        if "=" in line and current is not None:
            key, _, value = line.partition("=")
            value = value.strip()
            if not (value.startswith('"') and value.endswith('"')):
                raise ConfigError(
                    f"waivers.toml:{lineno}: only string values supported"
                )
            current[key.strip()] = value[1:-1]
            continue
        raise ConfigError(f"waivers.toml:{lineno}: unparseable line {raw!r}")
    return data


def load_waivers(path: str | Path = DEFAULT_WAIVERS) -> list[Waiver]:
    """Load the waivers file; a missing file means no waivers."""
    p = Path(path)
    if not p.exists():
        return []
    text = p.read_text(encoding="utf-8")
    if tomllib is not None:
        data = tomllib.loads(text)
    else:  # pragma: no cover - exercised only on Python 3.10
        data = _parse_toml_minimal(text)
    # Neither parser reports entry positions, but entries appear in
    # document order, so the Nth [[waiver]] header line is the Nth entry.
    header_lines = [
        lineno
        for lineno, raw in enumerate(text.splitlines(), start=1)
        if raw.strip() == "[[waiver]]"
    ]
    waivers = []
    for i, entry in enumerate(data.get("waiver", [])):
        try:
            waivers.append(
                Waiver(
                    rule=entry["rule"],
                    path=entry["path"],
                    reason=entry["reason"],
                    symbol=entry.get("symbol", ""),
                    line=header_lines[i] if i < len(header_lines) else 0,
                )
            )
        except KeyError as exc:
            raise ConfigError(
                f"waiver entry {entry!r} missing key {exc}"
            ) from exc
    return waivers


def apply_waivers(
    findings: Iterable[Finding], waivers: Sequence[Waiver]
) -> tuple[list[Finding], list[Waiver]]:
    """Mark covered findings as waived; also return the *unused* waivers."""
    used: set[int] = set()
    out: list[Finding] = []
    for finding in findings:
        waived = False
        for i, waiver in enumerate(waivers):
            if waiver.matches(finding):
                used.add(i)
                waived = True
        out.append(finding.waive() if waived else finding)
    unused = [w for i, w in enumerate(waivers) if i not in used]
    return out, unused


def unused_waiver_findings(unused: Sequence[Waiver]) -> list[Finding]:
    """SIM000 findings for waivers that matched nothing (shared by the
    self-lint and flow planes — each plane rots independently)."""
    return [
        Finding(
            rule="SIM000",
            severity=Severity.WARNING,
            subject=waiver.describe(),
            message=(
                f"unused waiver {waiver.describe()} ({waiver.reason!r}): "
                "the violation it covered is gone — delete the entry"
            ),
            fixit="remove the stale entry from lint/waivers.toml",
            path="lint/waivers.toml",
            line=waiver.line,
        )
        for waiver in unused
    ]


def self_lint(
    src_root: str | Path = DEFAULT_SRC_ROOT,
    waivers_path: str | Path = DEFAULT_WAIVERS,
) -> list[Finding]:
    """Full pipeline: lint the tree, apply waivers, flag unused waivers.

    FLOW and KEY waivers in the shared file belong to the flow and
    dependency planes and are excluded here so each plane only
    rot-checks its own entries.
    """
    waivers = [
        w for w in load_waivers(waivers_path)
        if not w.rule.startswith(("FLOW", "KEY"))
    ]
    findings, unused = apply_waivers(self_lint_tree(src_root), waivers)
    findings.extend(unused_waiver_findings(unused))
    return findings
