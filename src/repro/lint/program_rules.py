"""Plane 1b: lint rules over Program specifications.

These catch *program-spec defects*: phase parameters that are legal (the
constructors in ``repro.runtime.program`` accept them) but dead or
self-contradictory — an imbalance on a uniform loop, a bandwidth demand
with no memory fraction, a fixed chunk without a fixed schedule.  Such
specs silently model something other than what the author described, so
most rules are warnings.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.lint.findings import Finding, Severity
from repro.runtime.program import (
    LoadPattern,
    LoopRegion,
    Program,
    SerialPhase,
    TaskRegion,
)

__all__ = ["PROGRAM_RULES", "lint_program"]

ProgramRule = Callable[[Program], Iterable[Finding]]

PROGRAM_RULES: list[ProgramRule] = []


def rule(func: ProgramRule) -> ProgramRule:
    """Register a program-lint rule."""
    PROGRAM_RULES.append(func)
    return func


def _subject(program: Program, phase) -> str:
    return f"{program.name}/{phase.name}"


@rule
def _prg001_dead_imbalance(program):
    """PRG001: imbalance > 0 on a UNIFORM loop — the uniform profile
    ignores the imbalance parameter entirely."""
    for p in program.phases:
        if (
            isinstance(p, LoopRegion)
            and p.pattern is LoadPattern.UNIFORM
            and p.imbalance > 0
        ):
            yield Finding(
                rule="PRG001",
                severity=Severity.WARNING,
                subject=_subject(program, p),
                message=(
                    f"imbalance={p.imbalance} is dead on uniform loop "
                    f"{p.name!r}: the uniform cost profile never reads it"
                ),
                fixit="set pattern to linear/random, or drop the imbalance",
            )


@rule
def _prg002_trivial_reduction_loop(program):
    """PRG002: reductions declared on a single-iteration loop — the
    combine is a no-op and the loop cannot workshare."""
    for p in program.phases:
        if isinstance(p, LoopRegion) and p.n_iters == 1 and p.n_reductions > 0:
            yield Finding(
                rule="PRG002",
                severity=Severity.WARNING,
                subject=_subject(program, p),
                message=(
                    f"loop {p.name!r} declares {p.n_reductions} reduction(s) "
                    "over a single iteration: nothing is combined and only "
                    "one thread ever works"
                ),
                fixit="model the phase as serial work, or fix n_iters",
            )


@rule
def _prg003_dead_random_access(program):
    """PRG003: random_access=True with mem_intensity=0 — the latency
    model only applies to the memory fraction, which is empty."""
    for p in program.phases:
        if isinstance(p, (LoopRegion, TaskRegion)):
            if p.random_access and p.mem_intensity == 0:
                yield Finding(
                    rule="PRG003",
                    severity=Severity.WARNING,
                    subject=_subject(program, p),
                    message=(
                        f"random_access on {p.name!r} is dead: "
                        "mem_intensity=0 means no memory fraction exists for "
                        "the latency model to act on"
                    ),
                    fixit="set mem_intensity > 0 or drop random_access",
                )


@rule
def _prg004_dead_bandwidth(program):
    """PRG004: a bandwidth demand with no memory fraction."""
    for p in program.phases:
        if isinstance(p, (LoopRegion, TaskRegion)):
            if p.bw_per_thread_gbps > 0 and p.mem_intensity == 0:
                yield Finding(
                    rule="PRG004",
                    severity=Severity.WARNING,
                    subject=_subject(program, p),
                    message=(
                        f"bw_per_thread_gbps={p.bw_per_thread_gbps} on "
                        f"{p.name!r} is dead: mem_intensity=0 exposes no "
                        "time to the bandwidth model"
                    ),
                    fixit="set mem_intensity > 0 or drop the bandwidth demand",
                )


@rule
def _prg005_empty_serial_phase(program):
    """PRG005: a zero-work serial phase — contributes nothing."""
    for p in program.phases:
        if isinstance(p, SerialPhase) and p.work == 0:
            yield Finding(
                rule="PRG005",
                severity=Severity.INFO,
                subject=_subject(program, p),
                message=f"serial phase {p.name!r} has zero work (a no-op)",
                fixit="remove the phase",
            )


@rule
def _prg006_underfilled_loop(program):
    """PRG006: fewer iterations than any study machine has cores — full
    teams cannot all receive work (72 cores is the smallest machine)."""
    for p in program.phases:
        if isinstance(p, LoopRegion) and 1 < p.n_iters < 48:
            yield Finding(
                rule="PRG006",
                severity=Severity.INFO,
                subject=_subject(program, p),
                message=(
                    f"loop {p.name!r} has only {p.n_iters} iterations: "
                    "full-machine teams leave most threads idle at the "
                    "worksharing barrier"
                ),
                fixit="verify the trip count; consider collapsing loops",
            )


@rule
def _prg007_dead_fixed_chunk(program):
    """PRG007: fixed_chunk without fixed_schedule — the chunk of a
    schedule() clause that does not exist."""
    for p in program.phases:
        if (
            isinstance(p, LoopRegion)
            and p.fixed_chunk is not None
            and p.fixed_schedule is None
        ):
            yield Finding(
                rule="PRG007",
                severity=Severity.ERROR,
                subject=_subject(program, p),
                message=(
                    f"loop {p.name!r} sets fixed_chunk={p.fixed_chunk} "
                    "without a fixed_schedule: no schedule() clause exists "
                    "to carry the chunk, so it is silently ignored"
                ),
                fixit="set fixed_schedule, or drop fixed_chunk",
            )


def lint_program(program: Program) -> list[Finding]:
    """Run every program rule over ``program``."""
    findings: list[Finding] = []
    for check in PROGRAM_RULES:
        findings.extend(check(program))
    return findings
