"""Finding model shared by all three lint planes.

Every rule — config, program, or self-lint — reports
:class:`Finding` objects: a stable rule id, a severity, the subject the
finding is about (a variable, a phase, a source symbol), a message, and
where available a *fix-it* and the ICV derivation rule that makes the
finding decidable.  ``docs/LINTING.md`` catalogs every rule id.
"""

from __future__ import annotations

import enum
import json
import os
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field, replace
from pathlib import Path

__all__ = [
    "Severity",
    "Finding",
    "sort_findings",
    "unwaived",
    "format_findings",
    "findings_report",
    "write_findings_report",
]


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` — the configuration/program/source is wrong (domain
    violation, provably dead construct that silently changes semantics).
    ``WARNING`` — legal but almost certainly not what the author meant
    (dead parameter, shadowed default, oversubscription).
    ``INFO`` — redundancy worth knowing about (duplicate grid point,
    no-op phase); never fails a lint run.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Ordering key: errors first."""
        return {"error": 0, "warning": 1, "info": 2}[self.value]

    @property
    def fails(self) -> bool:
        """Whether an unwaived finding of this severity fails the run."""
        return self is not Severity.INFO


@dataclass(frozen=True)
class Finding:
    """One lint finding.

    Attributes
    ----------
    rule:
        Stable rule id (``ENV...``, ``PRG...``, ``SIM...``).
    severity:
        See :class:`Severity`.
    subject:
        What the finding is about — an env variable, a ``workload.input``
        phase, a source symbol.  Waivers match on this.
    message:
        One-line description of the defect.
    fixit:
        Actionable remediation, empty if none applies.
    icv_rule:
        The ICV derivation rule (paper Sec. III) that resolves the
        finding statically, empty for self-lint rules.
    path, line:
        Source location for self-lint findings (repo-relative path).
    waived:
        Set by the waiver pass; waived findings are reported but never
        fail a run.
    """

    rule: str
    severity: Severity
    subject: str
    message: str
    fixit: str = ""
    icv_rule: str = ""
    path: str = ""
    line: int = 0
    waived: bool = False

    def waive(self) -> "Finding":
        """Copy marked as waived."""
        return replace(self, waived=True)

    def location(self) -> str:
        """``path:line`` for self-lint findings, the subject otherwise."""
        if self.path:
            return f"{self.path}:{self.line}" if self.line else self.path
        return self.subject

    def to_dict(self) -> dict:
        """JSON-serializable form for the findings-report artifact."""
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "subject": self.subject,
            "message": self.message,
            "fixit": self.fixit,
            "icv_rule": self.icv_rule,
            "path": self.path,
            "line": self.line,
            "waived": self.waived,
        }


def sort_findings(findings: Iterable[Finding]) -> list[Finding]:
    """Deterministic report order: severity, rule, location, subject."""
    return sorted(
        findings,
        key=lambda f: (f.severity.rank, f.rule, f.path, f.line, f.subject),
    )


def unwaived(findings: Iterable[Finding]) -> list[Finding]:
    """The findings that fail a lint run (unwaived errors/warnings)."""
    return [f for f in findings if not f.waived and f.severity.fails]


def format_findings(findings: Sequence[Finding]) -> str:
    """Human-readable report, one line per finding plus a verdict."""
    lines = []
    for f in sort_findings(findings):
        mark = "waived " if f.waived else ""
        lines.append(
            f"  {f.severity.value.upper():7s} {f.rule}  [{mark}{f.location()}] "
            f"{f.message}"
        )
        if f.fixit and not f.waived:
            lines.append(f"          fix: {f.fixit}")
    n_fail = len(unwaived(findings))
    n_waived = sum(1 for f in findings if f.waived)
    verdict = (
        f"{len(findings)} finding(s): {n_fail} unwaived failure(s), "
        f"{n_waived} waived"
        if findings
        else "clean: no findings"
    )
    lines.append(verdict)
    return "\n".join(lines)


def findings_report(findings: Sequence[Finding], **extra: object) -> dict:
    """JSON report payload (the CI lint-job artifact)."""
    ordered = sort_findings(findings)
    payload: dict = {
        "n_findings": len(ordered),
        "n_unwaived_failures": len(unwaived(ordered)),
        "n_waived": sum(1 for f in ordered if f.waived),
        "findings": [f.to_dict() for f in ordered],
    }
    payload.update(extra)
    return payload


def write_findings_report(
    findings: Sequence[Finding], path: str | os.PathLike, **extra: object
) -> None:
    """Write the JSON findings report to ``path``.

    Delegates to :mod:`repro.reporting`, the shared serialization point
    for all three analysis-plane CLIs.
    """
    from repro.reporting import write_report_file

    write_report_file(path, findings=findings, **extra)


# Re-exported for dataclasses users of this module.
_ = field
