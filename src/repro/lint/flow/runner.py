"""Plane 4 orchestration: build the graph, run the passes, apply waivers.

``flow_lint`` is the plane entry point the CLI and tests call.  It
shares the waiver file with the other planes — FLOW entries belong
here, SIM entries to the self-lint, KEY entries to the dependency
plane — and each plane reports its own unused entries as SIM000 so the
file cannot rot from any side.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint.findings import Finding
from repro.lint.flow.callgraph import CallGraph, build_callgraph
from repro.lint.flow.passes import (
    DEFAULT_RESULT_ROOTS,
    check_frame_protocol,
    check_resource_safety,
    check_transitive_nondeterminism,
)
from repro.lint.flow.summaries import SummaryTable, compute_summaries
from repro.lint.selflint import (
    DEFAULT_SRC_ROOT,
    DEFAULT_WAIVERS,
    apply_waivers,
    load_waivers,
    unused_waiver_findings,
)

__all__ = ["flow_lint", "flow_lint_graph"]


def flow_lint_graph(
    graph: CallGraph,
    summaries: SummaryTable | None = None,
    roots: tuple[str, ...] = DEFAULT_RESULT_ROOTS,
    resource_scopes: tuple[str, ...] = ("resilience/",),
) -> list[Finding]:
    """Run the three FLOW passes over an already-built call graph."""
    if summaries is None:
        summaries = compute_summaries(graph)
    findings: list[Finding] = []
    findings.extend(check_transitive_nondeterminism(graph, summaries, roots))
    findings.extend(check_resource_safety(graph, resource_scopes))
    findings.extend(check_frame_protocol(graph))
    return findings


def flow_lint(
    src_root: str | Path = DEFAULT_SRC_ROOT,
    waivers_path: str | Path = DEFAULT_WAIVERS,
    roots: tuple[str, ...] = DEFAULT_RESULT_ROOTS,
    resource_scopes: tuple[str, ...] = ("resilience/",),
) -> list[Finding]:
    """Full plane: graph + summaries + passes + FLOW waivers + SIM000."""
    graph = build_callgraph(src_root)
    raw = flow_lint_graph(graph, roots=roots, resource_scopes=resource_scopes)
    waivers = [
        w for w in load_waivers(waivers_path) if w.rule.startswith("FLOW")
    ]
    findings, unused = apply_waivers(raw, waivers)
    findings.extend(unused_waiver_findings(unused))
    return findings
