"""Project-wide call graph over ``src/repro`` (stdlib ``ast`` only).

The per-file self-lint (``repro.lint.selflint``) matches call sites
locally, so an effect laundered through one helper function — a wall
clock read wrapped in ``def now()``, an unseeded draw behind
``def jitter()`` — is invisible to it.  This module builds the structure
the flow plane needs to see through that: every function and method in
the package, and the statically-resolvable edges between them.

Resolution handles:

- module functions through ``import``/``from-import`` chains, including
  aliases (``from repro.resilience.transport import send_frame as sf``)
  and relative imports (``from .transport import send_frame``),
- methods through ``self.``/``cls.`` inside a class body, walking the
  statically-known project-class MRO,
- methods through *local type inference*: a variable assigned from a
  project-class constructor (``cache = SweepCache(...)``) or annotated
  with a project class (``def f(cache: SweepCache)``) resolves
  ``cache.put(...)``,
- constructor calls (``RecordBlock(schema)`` edges to ``__init__`` and,
  for dataclasses, ``__post_init__``),
- nested functions by name within their enclosing definition.

Everything else — ``self.fn(...)`` callbacks, values from containers,
``functools.partial`` — stays an *unresolved* call site.  Unresolved
calls whose dotted spelling canonicalizes to a known external module
(``time.monotonic``, ``np.random.default_rng``) keep that canonical
name, which is exactly what the effect summaries match on; the rest
contribute no edge and no effect, a deliberately optimistic choice the
rule catalog documents (``docs/LINTING.md``, plane 4).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "CallSite",
    "FunctionRecord",
    "ClassRecord",
    "CallGraph",
    "build_callgraph",
]


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body.

    ``callee`` is the resolved project-function qualname (None if the
    target is not a project function); ``external`` is the canonical
    dotted spelling for unresolved calls whose head was importable
    (``time.monotonic``), None when nothing canonical is known.
    ``node`` keeps the AST call for argument-sensitive effect checks
    (``default_rng()`` with vs. without a seed).
    """

    callee: str | None
    external: str | None
    lineno: int
    node: ast.Call = field(compare=False, repr=False, default=None)


@dataclass
class FunctionRecord:
    """One function or method definition in the package."""

    qualname: str
    module: str
    rel_path: str
    lineno: int
    node: ast.AST
    cls: str | None = None


@dataclass
class ClassRecord:
    """One class definition: its methods and statically-known bases."""

    qualname: str
    module: str
    bases: tuple[str, ...] = ()
    methods: dict[str, str] = field(default_factory=dict)
    is_dataclass: bool = False


class _ModuleIndex:
    """Per-module symbol and import tables (pass 1)."""

    def __init__(self, module: str, rel_path: str, tree: ast.Module,
                 is_package: bool = False):
        self.module = module
        self.rel_path = rel_path
        self.tree = tree
        self.is_package = is_package
        #: local name -> canonical dotted prefix ("np" -> "numpy",
        #: "send_frame" -> "repro.resilience.transport.send_frame").
        self.aliases: dict[str, str] = {}

    def canonical(self, dotted: str) -> str:
        head, _, rest = dotted.partition(".")
        head = self.aliases.get(head, head)
        return f"{head}.{rest}" if rest else head


def _module_name(rel_path: str, package: str) -> str:
    parts = rel_path[: -len(".py")].split("/")
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join([package, *parts]) if parts else package


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class CallGraph:
    """Functions, classes, and resolved call edges for one source tree."""

    def __init__(self, src_root: Path, package: str):
        self.src_root = src_root
        self.package = package
        self.functions: dict[str, FunctionRecord] = {}
        self.classes: dict[str, ClassRecord] = {}
        #: caller qualname -> call sites in source order.
        self.calls: dict[str, list[CallSite]] = {}
        self._modules: dict[str, _ModuleIndex] = {}
        self._callers: dict[str, list[tuple[str, int]]] | None = None

    # -- queries ---------------------------------------------------------
    def callers(self) -> dict[str, list[tuple[str, int]]]:
        """Reverse adjacency: callee -> [(caller, call lineno), ...]."""
        if self._callers is None:
            rev: dict[str, list[tuple[str, int]]] = {}
            for caller, sites in self.calls.items():
                for site in sites:
                    if site.callee is not None:
                        rev.setdefault(site.callee, []).append(
                            (caller, site.lineno)
                        )
            self._callers = rev
        return self._callers

    def resolve_method(self, cls_qualname: str, name: str) -> str | None:
        """Look ``name`` up in the class, then its project-class MRO."""
        seen: set[str] = set()
        stack = [cls_qualname]
        while stack:
            cls = stack.pop(0)
            if cls in seen:
                continue
            seen.add(cls)
            record = self.classes.get(cls)
            if record is None:
                continue
            if name in record.methods:
                return record.methods[name]
            stack.extend(record.bases)
        return None

    def module_of(self, qualname: str) -> _ModuleIndex | None:
        record = self.functions.get(qualname)
        return self._modules.get(record.module) if record else None


# ----------------------------------------------------------------------
# Pass 1: symbols and imports
# ----------------------------------------------------------------------
def _index_module(graph: CallGraph, index: _ModuleIndex) -> None:
    for node in ast.walk(index.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.partition(".")[0]
                target = alias.name if alias.asname else local
                index.aliases[local] = target
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                parents = index.module.split(".")
                # Level 1 = the containing package: the module's parent
                # for plain modules, the module itself for __init__.
                drop = node.level - 1 if index.is_package else node.level
                parents = parents[: len(parents) - drop]
                base = ".".join(parents + ([base] if base else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                index.aliases[alias.asname or alias.name] = (
                    f"{base}.{alias.name}" if base else alias.name
                )

    def register(node: ast.AST, scope: list[str], cls: str | None) -> None:
        in_class_body = isinstance(node, ast.ClassDef)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = ".".join([index.module, *scope, child.name])
                graph.functions[qual] = FunctionRecord(
                    qual, index.module, index.rel_path, child.lineno,
                    child, cls,
                )
                if cls is not None and in_class_body:
                    graph.classes[cls].methods.setdefault(child.name, qual)
                register(child, scope + [child.name], cls)
            elif isinstance(child, ast.ClassDef):
                qual = ".".join([index.module, *scope, child.name])
                bases = tuple(
                    index.canonical(d)
                    for d in (_dotted(b) for b in child.bases)
                    if d is not None
                )
                is_dc = any(
                    (_dotted(d.func if isinstance(d, ast.Call) else d)
                     or "").split(".")[-1] == "dataclass"
                    for d in child.decorator_list
                )
                graph.classes[qual] = ClassRecord(
                    qual, index.module, bases, is_dataclass=is_dc,
                )
                register(child, scope + [child.name], qual)

    register(index.tree, [], None)


# ----------------------------------------------------------------------
# Pass 2: call-site resolution
# ----------------------------------------------------------------------
class _Resolver:
    """Resolves dotted call targets inside one function body."""

    def __init__(self, graph: CallGraph, index: _ModuleIndex,
                 record: FunctionRecord):
        self.graph = graph
        self.index = index
        self.record = record
        #: local variable -> project-class qualname (flow-insensitive).
        self.var_types: dict[str, str] = {}
        #: locally-defined nested function name -> qualname.
        self.local_defs: dict[str, str] = {}

    def _class_of(self, dotted: str) -> str | None:
        """The project class ``dotted`` names, if any."""
        full = self.index.canonical(dotted)
        if full in self.graph.classes:
            return full
        local = f"{self.index.module}.{dotted}"
        if local in self.graph.classes:
            return local
        return None

    def infer_types(self) -> None:
        node = self.record.node
        for child in ast.walk(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if child is not node:
                    self.local_defs[child.name] = (
                        f"{self.record.qualname}.{child.name}"
                    )
        args = getattr(node, "args", None)
        if args is not None:
            for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
                d = _dotted(arg.annotation) if arg.annotation else None
                cls = self._class_of(d) if d else None
                if cls is not None:
                    self.var_types[arg.arg] = cls
        for child in ast.walk(node):
            target = None
            value = None
            if isinstance(child, ast.Assign) and len(child.targets) == 1:
                target, value = child.targets[0], child.value
            elif isinstance(child, ast.AnnAssign):
                target, value = child.target, child.value
                d = _dotted(child.annotation)
                cls = self._class_of(d) if d else None
                if cls is not None and isinstance(target, ast.Name):
                    self.var_types[target.id] = cls
            if (
                isinstance(target, ast.Name)
                and isinstance(value, ast.Call)
            ):
                d = _dotted(value.func)
                cls = self._class_of(d) if d else None
                if cls is not None:
                    self.var_types[target.id] = cls

    def _constructor_targets(self, cls: str) -> list[str]:
        out = []
        for dunder in ("__init__", "__post_init__"):
            target = self.graph.resolve_method(cls, dunder)
            if target is not None:
                out.append(target)
        return out

    def resolve(self, call: ast.Call) -> list[CallSite]:
        dotted = _dotted(call.func)
        if dotted is None:
            return [CallSite(None, None, call.lineno, call)]
        parts = dotted.split(".")
        head = parts[0]
        cls = self.record.cls

        # self.method() / cls.method() inside a class body.
        if head in ("self", "cls") and cls is not None and len(parts) == 2:
            target = self.graph.resolve_method(cls, parts[1])
            return [CallSite(target, None, call.lineno, call)]

        # var.method() through inferred local types.
        if head in self.var_types and len(parts) == 2:
            target = self.graph.resolve_method(
                self.var_types[head], parts[1]
            )
            return [CallSite(target, None, call.lineno, call)]

        if len(parts) == 1:
            # Nested function in this definition chain.
            if head in self.local_defs:
                return [CallSite(self.local_defs[head], None,
                                 call.lineno, call)]
            # Module-level function in this module.
            local = f"{self.index.module}.{head}"
            if local in self.graph.functions:
                return [CallSite(local, None, call.lineno, call)]
            # Class constructor (local or imported).
            ctor_cls = self._class_of(head)
            if ctor_cls is not None:
                targets = self._constructor_targets(ctor_cls)
                if targets:
                    return [CallSite(t, None, call.lineno, call)
                            for t in targets]
                return [CallSite(None, None, call.lineno, call)]
            # Imported function, else an external (builtins included).
            full = self.index.canonical(head)
            if full in self.graph.functions:
                return [CallSite(full, None, call.lineno, call)]
            return [CallSite(None, full, call.lineno, call)]

        full = self.index.canonical(dotted)
        if full in self.graph.functions:
            return [CallSite(full, None, call.lineno, call)]
        # Class-qualified method or constructor attribute.
        prefix, _, method = full.rpartition(".")
        if prefix in self.graph.classes:
            target = self.graph.resolve_method(prefix, method)
            return [CallSite(target, None, call.lineno, call)]
        ctor_cls = self._class_of(dotted)
        if ctor_cls is not None:
            targets = self._constructor_targets(ctor_cls)
            if targets:
                return [CallSite(t, None, call.lineno, call)
                        for t in targets]
        return [CallSite(None, full, call.lineno, call)]


def _extract_calls(graph: CallGraph, index: _ModuleIndex,
                   record: FunctionRecord) -> list[CallSite]:
    resolver = _Resolver(graph, index, record)
    resolver.infer_types()
    sites: list[CallSite] = []
    # Nested functions are separate graph nodes with their own call
    # lists; an inner call must not be double-counted on the outer
    # function (the edge outer -> inner carries the effects across).
    nested_calls = {
        id(inner)
        for child in ast.walk(record.node)
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        and child is not record.node
        for inner in ast.walk(child)
        if isinstance(inner, ast.Call)
    }
    for node in ast.walk(record.node):
        if isinstance(node, ast.Call) and id(node) not in nested_calls:
            sites.extend(resolver.resolve(node))
    return sites


def build_callgraph(
    src_root: str | Path, package: str | None = None
) -> CallGraph:
    """Parse every ``*.py`` under ``src_root`` and resolve call edges.

    ``package`` is the dotted prefix modules are registered under; it
    defaults to the root directory's name (``repro`` for the shipped
    tree), so qualnames look like ``repro.core.cache.SweepCache.put``.
    """
    root = Path(src_root)
    graph = CallGraph(root, package or root.name)
    indexes: list[_ModuleIndex] = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=rel)
        index = _ModuleIndex(
            _module_name(rel, graph.package), rel, tree,
            is_package=rel.endswith("__init__.py"),
        )
        graph._modules[index.module] = index
        indexes.append(index)
    for index in indexes:
        _index_module(graph, index)
    for index in indexes:
        for record in list(graph.functions.values()):
            if record.module == index.module:
                graph.calls[record.qualname] = _extract_calls(
                    graph, index, record
                )
    return graph
