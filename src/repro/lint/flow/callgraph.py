"""Project-wide call graph over ``src/repro`` (stdlib ``ast`` only).

The per-file self-lint (``repro.lint.selflint``) matches call sites
locally, so an effect laundered through one helper function — a wall
clock read wrapped in ``def now()``, an unseeded draw behind
``def jitter()`` — is invisible to it.  This module builds the structure
the flow plane needs to see through that: every function and method in
the package, and the statically-resolvable edges between them.

Resolution handles:

- module functions through ``import``/``from-import`` chains, including
  aliases (``from repro.resilience.transport import send_frame as sf``)
  and relative imports (``from .transport import send_frame``),
- methods through ``self.``/``cls.`` inside a class body, walking the
  statically-known project-class MRO,
- methods through *local type inference*: a variable assigned from a
  project-class constructor (``cache = SweepCache(...)``), annotated
  with a project class (``def f(cache: SweepCache)``), or assigned from
  a project function whose return annotation names a project class
  (``machine = get_machine(arch)``) resolves ``cache.put(...)``,
- methods through *instance-attribute types*: ``self.engine.price(...)``
  resolves when ``engine`` has a statically-known class — from a
  dataclass field annotation, an annotated ``self.x: T = ...`` in
  ``__init__``, an assignment from a class-annotated parameter, or an
  assignment from a project-class constructor,
- constructor calls (``RecordBlock(schema)`` edges to ``__init__`` and,
  for dataclasses, ``__post_init__``),
- nested functions by name within their enclosing definition.

:class:`TypedScope` exposes the same inference as a reusable expression
typer — given any AST expression inside a function, the project class it
evaluates to, if statically known.  The dependency plane
(``repro.lint.deps``) builds its attribute-read extraction on it.

Everything else — ``self.fn(...)`` callbacks, values from containers,
``functools.partial`` — stays an *unresolved* call site.  Unresolved
calls whose dotted spelling canonicalizes to a known external module
(``time.monotonic``, ``np.random.default_rng``) keep that canonical
name, which is exactly what the effect summaries match on; the rest
contribute no edge and no effect, a deliberately optimistic choice the
rule catalog documents (``docs/LINTING.md``, plane 4).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "CallSite",
    "FunctionRecord",
    "ClassRecord",
    "CallGraph",
    "TypedScope",
    "build_callgraph",
]


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body.

    ``callee`` is the resolved project-function qualname (None if the
    target is not a project function); ``external`` is the canonical
    dotted spelling for unresolved calls whose head was importable
    (``time.monotonic``), None when nothing canonical is known.
    ``node`` keeps the AST call for argument-sensitive effect checks
    (``default_rng()`` with vs. without a seed).
    """

    callee: str | None
    external: str | None
    lineno: int
    node: ast.Call = field(compare=False, repr=False, default=None)


@dataclass
class FunctionRecord:
    """One function or method definition in the package.

    ``returns`` keeps the raw dotted spelling of the return annotation
    (string annotations included) so callers can be typed through
    project-function calls; it is resolved lazily by
    :meth:`CallGraph.return_class_of`.
    """

    qualname: str
    module: str
    rel_path: str
    lineno: int
    node: ast.AST
    cls: str | None = None
    returns: str | None = None


@dataclass
class ClassRecord:
    """One class definition: its methods and statically-known bases.

    ``attr_types`` maps instance-attribute names to project-class
    qualnames where one is statically known — from class-body field
    annotations (dataclass fields) or constructor ``self.x`` assignments
    (annotated, from a class-annotated parameter, or from a project-class
    constructor call).
    """

    qualname: str
    module: str
    bases: tuple[str, ...] = ()
    methods: dict[str, str] = field(default_factory=dict)
    is_dataclass: bool = False
    node: ast.ClassDef | None = field(default=None, repr=False)
    attr_types: dict[str, str] = field(default_factory=dict)


class _ModuleIndex:
    """Per-module symbol and import tables (pass 1)."""

    def __init__(self, module: str, rel_path: str, tree: ast.Module,
                 is_package: bool = False):
        self.module = module
        self.rel_path = rel_path
        self.tree = tree
        self.is_package = is_package
        #: local name -> canonical dotted prefix ("np" -> "numpy",
        #: "send_frame" -> "repro.resilience.transport.send_frame").
        self.aliases: dict[str, str] = {}

    def canonical(self, dotted: str) -> str:
        head, _, rest = dotted.partition(".")
        head = self.aliases.get(head, head)
        return f"{head}.{rest}" if rest else head


def _module_name(rel_path: str, package: str) -> str:
    parts = rel_path[: -len(".py")].split("/")
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join([package, *parts]) if parts else package


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _annotation_dotted(node: ast.AST | None) -> str | None:
    """Dotted spelling of an annotation, unwrapping string forms."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip()
        if all(p.isidentifier() for p in text.split(".")):
            return text
        return None
    return _dotted(node)


class CallGraph:
    """Functions, classes, and resolved call edges for one source tree."""

    def __init__(self, src_root: Path, package: str):
        self.src_root = src_root
        self.package = package
        self.functions: dict[str, FunctionRecord] = {}
        self.classes: dict[str, ClassRecord] = {}
        #: caller qualname -> call sites in source order.
        self.calls: dict[str, list[CallSite]] = {}
        self._modules: dict[str, _ModuleIndex] = {}
        self._callers: dict[str, list[tuple[str, int]]] | None = None

    # -- queries ---------------------------------------------------------
    def callers(self) -> dict[str, list[tuple[str, int]]]:
        """Reverse adjacency: callee -> [(caller, call lineno), ...]."""
        if self._callers is None:
            rev: dict[str, list[tuple[str, int]]] = {}
            for caller, sites in self.calls.items():
                for site in sites:
                    if site.callee is not None:
                        rev.setdefault(site.callee, []).append(
                            (caller, site.lineno)
                        )
            self._callers = rev
        return self._callers

    def resolve_method(self, cls_qualname: str, name: str) -> str | None:
        """Look ``name`` up in the class, then its project-class MRO."""
        seen: set[str] = set()
        stack = [cls_qualname]
        while stack:
            cls = stack.pop(0)
            if cls in seen:
                continue
            seen.add(cls)
            record = self.classes.get(cls)
            if record is None:
                continue
            if name in record.methods:
                return record.methods[name]
            stack.extend(record.bases)
        return None

    def module_of(self, qualname: str) -> _ModuleIndex | None:
        record = self.functions.get(qualname)
        return self._modules.get(record.module) if record else None

    def module_tree(self, module: str) -> ast.Module | None:
        """The parsed AST of one module, by dotted name."""
        index = self._modules.get(module)
        return index.tree if index else None

    def return_class_of(self, qualname: str) -> str | None:
        """The project class ``qualname``'s return annotation names."""
        record = self.functions.get(qualname)
        if record is None or record.returns is None:
            return None
        index = self._modules.get(record.module)
        if index is None:
            return None
        return _class_lookup(self, index, record.returns)


def _class_lookup(
    graph: CallGraph, index: _ModuleIndex, dotted: str
) -> str | None:
    """The project class ``dotted`` names in ``index``'s namespace."""
    full = index.canonical(dotted)
    if full in graph.classes:
        return full
    local = f"{index.module}.{dotted}"
    if local in graph.classes:
        return local
    return None


# ----------------------------------------------------------------------
# Pass 1: symbols and imports
# ----------------------------------------------------------------------
def _index_module(graph: CallGraph, index: _ModuleIndex) -> None:
    for node in ast.walk(index.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.partition(".")[0]
                target = alias.name if alias.asname else local
                index.aliases[local] = target
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                parents = index.module.split(".")
                # Level 1 = the containing package: the module's parent
                # for plain modules, the module itself for __init__.
                drop = node.level - 1 if index.is_package else node.level
                parents = parents[: len(parents) - drop]
                base = ".".join(parents + ([base] if base else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                index.aliases[alias.asname or alias.name] = (
                    f"{base}.{alias.name}" if base else alias.name
                )

    def register(node: ast.AST, scope: list[str], cls: str | None) -> None:
        in_class_body = isinstance(node, ast.ClassDef)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = ".".join([index.module, *scope, child.name])
                graph.functions[qual] = FunctionRecord(
                    qual, index.module, index.rel_path, child.lineno,
                    child, cls,
                    returns=_annotation_dotted(child.returns),
                )
                if cls is not None and in_class_body:
                    graph.classes[cls].methods.setdefault(child.name, qual)
                register(child, scope + [child.name], cls)
            elif isinstance(child, ast.ClassDef):
                qual = ".".join([index.module, *scope, child.name])
                bases = tuple(
                    index.canonical(d)
                    for d in (_dotted(b) for b in child.bases)
                    if d is not None
                )
                is_dc = any(
                    (_dotted(d.func if isinstance(d, ast.Call) else d)
                     or "").split(".")[-1] == "dataclass"
                    for d in child.decorator_list
                )
                graph.classes[qual] = ClassRecord(
                    qual, index.module, bases, is_dataclass=is_dc,
                    node=child,
                )
                register(child, scope + [child.name], qual)

    register(index.tree, [], None)


# ----------------------------------------------------------------------
# Pass 1b: instance-attribute types
# ----------------------------------------------------------------------
def _infer_class_attr_types(graph: CallGraph) -> None:
    """Populate ``ClassRecord.attr_types`` for every indexed class.

    Runs after all modules are indexed (so cross-module class lookups
    resolve) and before call extraction (so ``self.attr.method()``
    dispatches through it).
    """
    for cls in graph.classes.values():
        index = graph._modules.get(cls.module)
        if index is None or cls.node is None:
            continue
        # Class-body annotated fields (dataclass fields, plain decls).
        # Subscripted annotations (ClassVar[...], tuple[...]) have no
        # dotted spelling and are naturally skipped.
        for stmt in cls.node.body:
            if (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
            ):
                d = _annotation_dotted(stmt.annotation)
                typed = _class_lookup(graph, index, d) if d else None
                if typed is not None:
                    cls.attr_types.setdefault(stmt.target.id, typed)
        # self.x assignments in the constructors.
        for ctor_name in ("__init__", "__post_init__"):
            record = graph.functions.get(cls.methods.get(ctor_name, ""))
            if record is None:
                continue
            params: dict[str, str] = {}
            args = record.node.args
            for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
                d = _annotation_dotted(arg.annotation)
                typed = _class_lookup(graph, index, d) if d else None
                if typed is not None:
                    params[arg.arg] = typed
            for stmt in ast.walk(record.node):
                target = value = annotation = None
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target, value = stmt.targets[0], stmt.value
                elif isinstance(stmt, ast.AnnAssign):
                    target = stmt.target
                    value = stmt.value
                    annotation = stmt.annotation
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                typed = None
                if annotation is not None:
                    d = _annotation_dotted(annotation)
                    typed = _class_lookup(graph, index, d) if d else None
                if typed is None and isinstance(value, ast.Name):
                    typed = params.get(value.id)
                if typed is None and isinstance(value, ast.Call):
                    d = _dotted(value.func)
                    typed = _class_lookup(graph, index, d) if d else None
                if typed is not None:
                    cls.attr_types.setdefault(target.attr, typed)


# ----------------------------------------------------------------------
# Pass 2: call-site resolution
# ----------------------------------------------------------------------
class _Resolver:
    """Resolves dotted call targets inside one function body."""

    def __init__(self, graph: CallGraph, index: _ModuleIndex,
                 record: FunctionRecord):
        self.graph = graph
        self.index = index
        self.record = record
        #: local variable -> project-class qualname (flow-insensitive).
        self.var_types: dict[str, str] = {}
        #: locally-defined nested function name -> qualname.
        self.local_defs: dict[str, str] = {}

    def _class_of(self, dotted: str) -> str | None:
        """The project class ``dotted`` names, if any."""
        return _class_lookup(self.graph, self.index, dotted)

    def _function_target(self, dotted: str) -> str | None:
        """The project function a dotted call spelling resolves to."""
        parts = dotted.split(".")
        if (
            parts[0] in ("self", "cls")
            and self.record.cls is not None
            and len(parts) == 2
        ):
            return self.graph.resolve_method(self.record.cls, parts[1])
        full = self.index.canonical(dotted)
        if full in self.graph.functions:
            return full
        local = f"{self.index.module}.{dotted}"
        if local in self.graph.functions:
            return local
        return None

    def infer_types(self) -> None:
        node = self.record.node
        for child in ast.walk(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if child is not node:
                    self.local_defs[child.name] = (
                        f"{self.record.qualname}.{child.name}"
                    )
        args = getattr(node, "args", None)
        if args is not None:
            for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
                d = _dotted(arg.annotation) if arg.annotation else None
                cls = self._class_of(d) if d else None
                if cls is not None:
                    self.var_types[arg.arg] = cls
        for child in ast.walk(node):
            target = None
            value = None
            if isinstance(child, ast.Assign) and len(child.targets) == 1:
                target, value = child.targets[0], child.value
            elif isinstance(child, ast.AnnAssign):
                target, value = child.target, child.value
                d = _dotted(child.annotation)
                cls = self._class_of(d) if d else None
                if cls is not None and isinstance(target, ast.Name):
                    self.var_types[target.id] = cls
            if (
                isinstance(target, ast.Name)
                and isinstance(value, ast.Call)
            ):
                d = _dotted(value.func)
                cls = self._class_of(d) if d else None
                if cls is None and d is not None:
                    # Project-function call with a class-valued return
                    # annotation (machine = get_machine(arch)).
                    callee = self._function_target(d)
                    if callee is not None:
                        cls = self.graph.return_class_of(callee)
                if cls is not None:
                    self.var_types[target.id] = cls

    def _constructor_targets(self, cls: str) -> list[str]:
        out = []
        for dunder in ("__init__", "__post_init__"):
            target = self.graph.resolve_method(cls, dunder)
            if target is not None:
                out.append(target)
        return out

    def resolve(self, call: ast.Call) -> list[CallSite]:
        dotted = _dotted(call.func)
        if dotted is None:
            return [CallSite(None, None, call.lineno, call)]
        parts = dotted.split(".")
        head = parts[0]
        cls = self.record.cls

        # self.method() / cls.method() inside a class body.
        if head in ("self", "cls") and cls is not None and len(parts) == 2:
            target = self.graph.resolve_method(cls, parts[1])
            return [CallSite(target, None, call.lineno, call)]

        # var.method() through inferred local types.
        if head in self.var_types and len(parts) == 2:
            target = self.graph.resolve_method(
                self.var_types[head], parts[1]
            )
            return [CallSite(target, None, call.lineno, call)]

        # self.attr.method() / var.attr.method() through instance-
        # attribute types (self.engine.loop_region_seconds(...)).
        if len(parts) == 3:
            base = None
            if head in ("self", "cls") and cls is not None:
                base = cls
            elif head in self.var_types:
                base = self.var_types[head]
            if base is not None:
                record = self.graph.classes.get(base)
                attr_cls = (
                    record.attr_types.get(parts[1]) if record else None
                )
                if attr_cls is not None:
                    target = self.graph.resolve_method(attr_cls, parts[2])
                    return [CallSite(target, None, call.lineno, call)]
                return [CallSite(None, None, call.lineno, call)]

        if len(parts) == 1:
            # Nested function in this definition chain.
            if head in self.local_defs:
                return [CallSite(self.local_defs[head], None,
                                 call.lineno, call)]
            # Module-level function in this module.
            local = f"{self.index.module}.{head}"
            if local in self.graph.functions:
                return [CallSite(local, None, call.lineno, call)]
            # Class constructor (local or imported).
            ctor_cls = self._class_of(head)
            if ctor_cls is not None:
                targets = self._constructor_targets(ctor_cls)
                if targets:
                    return [CallSite(t, None, call.lineno, call)
                            for t in targets]
                return [CallSite(None, None, call.lineno, call)]
            # Imported function, else an external (builtins included).
            full = self.index.canonical(head)
            if full in self.graph.functions:
                return [CallSite(full, None, call.lineno, call)]
            return [CallSite(None, full, call.lineno, call)]

        full = self.index.canonical(dotted)
        if full in self.graph.functions:
            return [CallSite(full, None, call.lineno, call)]
        # Class-qualified method or constructor attribute.
        prefix, _, method = full.rpartition(".")
        if prefix in self.graph.classes:
            target = self.graph.resolve_method(prefix, method)
            return [CallSite(target, None, call.lineno, call)]
        ctor_cls = self._class_of(dotted)
        if ctor_cls is not None:
            targets = self._constructor_targets(ctor_cls)
            if targets:
                return [CallSite(t, None, call.lineno, call)
                        for t in targets]
        return [CallSite(None, full, call.lineno, call)]


class TypedScope:
    """Expression typer for one function body.

    Wraps the resolver's flow-insensitive local type inference and
    extends it recursively over expressions: ``type_of`` answers "what
    project class does this AST expression evaluate to, if statically
    known" for names, attribute chains (through
    ``ClassRecord.attr_types``), and calls (constructors, project
    functions with class-valued return annotations, and chained method
    calls such as ``get_workload(app).program(size)``).
    """

    def __init__(self, graph: CallGraph, qualname: str):
        self.graph = graph
        self.record = graph.functions[qualname]
        self.index = graph.module_of(qualname)
        self.var_types: dict[str, str] = {}
        if self.index is None:
            return
        resolver = _Resolver(graph, self.index, self.record)
        resolver.infer_types()
        self.var_types = dict(resolver.var_types)
        # Extra passes pick up chained-call assignments the resolver's
        # single dotted-name pass cannot type.
        for _ in range(2):
            changed = False
            for node in ast.walk(self.record.node):
                if (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and node.targets[0].id not in self.var_types
                ):
                    typed = self.type_of(node.value)
                    if typed is not None:
                        self.var_types[node.targets[0].id] = typed
                        changed = True
            if not changed:
                break

    def type_of(self, node: ast.AST) -> str | None:
        if isinstance(node, ast.Name):
            if node.id in ("self", "cls"):
                return self.record.cls
            return self.var_types.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.type_of(node.value)
            if base is not None:
                record = self.graph.classes.get(base)
                if record is not None:
                    return record.attr_types.get(node.attr)
            return None
        if isinstance(node, ast.Call):
            return self._call_type(node)
        return None

    def _call_type(self, call: ast.Call) -> str | None:
        func = call.func
        if isinstance(func, ast.Attribute):
            base = self.type_of(func.value)
            if base is not None:
                target = self.graph.resolve_method(base, func.attr)
                if target is not None:
                    return self.graph.return_class_of(target)
                return None
        dotted = _dotted(func)
        if dotted is None or self.index is None:
            return None
        cls = _class_lookup(self.graph, self.index, dotted)
        if cls is not None:
            return cls
        full = self.index.canonical(dotted)
        if full in self.graph.functions:
            return self.graph.return_class_of(full)
        local = f"{self.index.module}.{dotted}"
        if local in self.graph.functions:
            return self.graph.return_class_of(local)
        return None


def _extract_calls(graph: CallGraph, index: _ModuleIndex,
                   record: FunctionRecord) -> list[CallSite]:
    resolver = _Resolver(graph, index, record)
    resolver.infer_types()
    sites: list[CallSite] = []
    # Nested functions are separate graph nodes with their own call
    # lists; an inner call must not be double-counted on the outer
    # function (the edge outer -> inner carries the effects across).
    nested_calls = {
        id(inner)
        for child in ast.walk(record.node)
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        and child is not record.node
        for inner in ast.walk(child)
        if isinstance(inner, ast.Call)
    }
    for node in ast.walk(record.node):
        if isinstance(node, ast.Call) and id(node) not in nested_calls:
            sites.extend(resolver.resolve(node))
    return sites


def build_callgraph(
    src_root: str | Path, package: str | None = None
) -> CallGraph:
    """Parse every ``*.py`` under ``src_root`` and resolve call edges.

    ``package`` is the dotted prefix modules are registered under; it
    defaults to the root directory's name (``repro`` for the shipped
    tree), so qualnames look like ``repro.core.cache.SweepCache.put``.
    """
    root = Path(src_root)
    graph = CallGraph(root, package or root.name)
    indexes: list[_ModuleIndex] = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=rel)
        index = _ModuleIndex(
            _module_name(rel, graph.package), rel, tree,
            is_package=rel.endswith("__init__.py"),
        )
        graph._modules[index.module] = index
        indexes.append(index)
    for index in indexes:
        _index_module(graph, index)
    _infer_class_attr_types(graph)
    for index in indexes:
        for record in list(graph.functions.values()):
            if record.module == index.module:
                graph.calls[record.qualname] = _extract_calls(
                    graph, index, record
                )
    return graph
