"""Per-function effect summaries and their transitive fixpoint.

Every function in the call graph gets a *direct* summary — the effects
its own body performs — and a *transitive* one: the union of its direct
effects and everything reachable through resolved call edges.  The
propagation runs one breadth-first wave per effect kind, starting from
the functions with a direct site, so each transitive entry also records
the shortest *witness*: either the direct site, or the first call edge
on a shortest path to one.  :meth:`SummaryTable.witness_chain` replays
those pointers into the human-readable ``a -> b -> c -> time.monotonic``
trail the FLOW001 findings print.

Tracked effect kinds:

- ``wall-clock`` — host-time reads (``time.time``/``monotonic``/
  ``perf_counter`` family, ``datetime.now``/``utcnow``/``today``),
- ``unseeded-rng`` — process-global ``random.*`` draws, legacy
  ``numpy.random.*`` state, ``default_rng()`` or ``random.Random()``
  with no seed argument,
- ``env-read`` — ``os.environ`` access or ``os.getenv``,
- ``raises`` — an explicit ``raise`` statement (exception-path
  reachability; the resource pass and reports consume it).

The matching reuses the canonical dotted spellings the call graph
computes, so ``from time import monotonic as mono; mono()`` and
``np.random.default_rng()`` are both seen through their aliases.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.lint.flow.callgraph import CallGraph, TypedScope, _dotted
from repro.lint.selflint import (
    _DATETIME_NOW,
    _NP_RANDOM_LEGACY,
    _RANDOM_GLOBALS,
    _WALL_CLOCK_ATTRS,
)

__all__ = [
    "EFFECT_KINDS",
    "AttrRead",
    "EffectSite",
    "SummaryTable",
    "compute_summaries",
    "direct_attribute_reads",
]

#: Every effect kind a summary can carry.
EFFECT_KINDS = ("wall-clock", "unseeded-rng", "env-read", "raises")

_ENV_READ_CALLS = frozenset({"os.getenv", "os.environ.get"})


@dataclass(frozen=True)
class EffectSite:
    """One direct effect occurrence: what fired, and where."""

    kind: str
    what: str
    rel_path: str
    lineno: int


def _call_effect(canonical: str, node: ast.Call) -> tuple[str, str] | None:
    """(kind, what) if calling ``canonical`` is a direct effect."""
    if canonical.startswith("time.") and canonical[5:] in _WALL_CLOCK_ATTRS:
        return "wall-clock", canonical
    if canonical in _WALL_CLOCK_ATTRS:
        # `from time import monotonic` canonicalizes to "time.monotonic";
        # this arm only catches a stray bare spelling.
        return "wall-clock", f"time.{canonical}"
    if (
        canonical.startswith(("datetime.", "datetime.datetime."))
        and canonical.rsplit(".", 1)[-1] in _DATETIME_NOW
    ):
        return "wall-clock", canonical
    if canonical.startswith("random.") and canonical[7:] in _RANDOM_GLOBALS:
        return "unseeded-rng", canonical
    if canonical == "random.Random" and not node.args and not node.keywords:
        return "unseeded-rng", "random.Random()"
    if canonical.startswith("numpy.random."):
        tail = canonical[len("numpy.random."):]
        if tail == "default_rng" and not node.args and not node.keywords:
            return "unseeded-rng", "numpy.random.default_rng()"
        if tail in _NP_RANDOM_LEGACY:
            return "unseeded-rng", canonical
    if canonical in _ENV_READ_CALLS:
        return "env-read", canonical
    return None


def direct_effects(graph: CallGraph, qualname: str) -> list[EffectSite]:
    """The effects ``qualname``'s own body performs (no propagation)."""
    record = graph.functions[qualname]
    index = graph.module_of(qualname)
    sites: list[EffectSite] = []
    for site in graph.calls.get(qualname, ()):
        if site.external is None:
            continue
        hit = _call_effect(site.external, site.node)
        if hit is not None:
            sites.append(
                EffectSite(hit[0], hit[1], record.rel_path, site.lineno)
            )
    # Non-call effects: os.environ subscripts / membership / iteration,
    # and explicit raise statements.  Nested defs are separate nodes.
    nested = {
        id(inner)
        for child in ast.walk(record.node)
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        and child is not record.node
        for inner in ast.walk(child)
    }
    for node in ast.walk(record.node):
        if id(node) in nested:
            continue
        if isinstance(node, ast.Attribute):
            dotted = _dotted(node)
            if dotted is not None and index is not None:
                if index.canonical(dotted) == "os.environ":
                    sites.append(EffectSite(
                        "env-read", "os.environ",
                        record.rel_path, node.lineno,
                    ))
        elif isinstance(node, ast.Raise):
            sites.append(EffectSite(
                "raises", "raise", record.rel_path, node.lineno,
            ))
    sites.sort(key=lambda s: (s.lineno, s.kind, s.what))
    return sites


@dataclass(frozen=True)
class AttrRead:
    """One attribute read from a tracked project class.

    ``guards`` lists the ``(class, attr)`` pairs that appear in the
    conditions dominating the read site — an ``if`` test the read sits
    under, the test of a preceding early-exit ``if`` (a body ending in
    ``return``/``raise``/``continue``/``break``), a ternary or boolean
    short-circuit condition, or a comprehension filter.  A read with
    ``("repro...ResolvedICVs", "wait_policy")`` in its guards is what the
    dependency plane calls *guarded by the wait policy*.
    """

    cls: str
    attr: str
    qualname: str
    rel_path: str
    lineno: int
    guards: tuple[tuple[str, str], ...] = ()


_TERMINATORS = (ast.Return, ast.Raise, ast.Continue, ast.Break)


def direct_attribute_reads(
    graph: CallGraph, qualname: str, tracked: frozenset[str]
) -> list[AttrRead]:
    """Attribute reads of tracked classes in ``qualname``'s own body.

    A read is attributed to a class through the same local type
    inference the call graph uses (:class:`TypedScope`), so
    ``icvs.blocktime_ms``, ``self.icvs.blocktime_ms``, and
    ``executor.icvs.blocktime_ms`` all register against
    ``ResolvedICVs``.  Guard conditions are tracked through direct
    attribute tests, local aliases (``bind = icvs.bind; if bind is ...``),
    early-exit prefixes, ternaries, short-circuit ``and``/``or``, and
    comprehension filters; see :class:`AttrRead`.  Nested function
    definitions are separate graph nodes and are skipped here.
    """
    record = graph.functions.get(qualname)
    if record is None:
        return []
    scope = TypedScope(graph, qualname)
    reads: list[AttrRead] = []

    nested_ids = {
        id(inner)
        for child in ast.walk(record.node)
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        and child is not record.node
        for inner in ast.walk(child)
    }

    # Local aliases of tracked attributes: the assignment itself records
    # the read; later *tests* of the alias contribute the guard.
    aliases: dict[str, tuple[str, str]] = {}
    for stmt in ast.walk(record.node):
        if id(stmt) in nested_ids:
            continue
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.Attribute)
        ):
            base = scope.type_of(stmt.value.value)
            if base in tracked:
                aliases[stmt.targets[0].id] = (base, stmt.value.attr)

    def test_attrs(expr: ast.AST) -> frozenset[tuple[str, str]]:
        out: set[tuple[str, str]] = set()
        for node in ast.walk(expr):
            if isinstance(node, ast.Attribute):
                base = scope.type_of(node.value)
                if base in tracked:
                    out.add((base, node.attr))
            elif isinstance(node, ast.Name) and node.id in aliases:
                out.add(aliases[node.id])
        return frozenset(out)

    def record_expr(expr, guards: frozenset) -> None:
        if expr is None:
            return
        if isinstance(expr, ast.IfExp):
            record_expr(expr.test, guards)
            inner = guards | test_attrs(expr.test)
            record_expr(expr.body, inner)
            record_expr(expr.orelse, inner)
            return
        if isinstance(expr, ast.BoolOp):
            acc = guards
            for value in expr.values:
                record_expr(value, acc)
                acc = acc | test_attrs(value)
            return
        if isinstance(
            expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            inner = guards
            for comp in expr.generators:
                record_expr(comp.iter, inner)
                for cond in comp.ifs:
                    record_expr(cond, inner)
                    inner = inner | test_attrs(cond)
            if isinstance(expr, ast.DictComp):
                record_expr(expr.key, inner)
                record_expr(expr.value, inner)
            else:
                record_expr(expr.elt, inner)
            return
        if isinstance(expr, ast.Attribute):
            base = scope.type_of(expr.value)
            if base in tracked and isinstance(expr.ctx, ast.Load):
                reads.append(AttrRead(
                    base, expr.attr, qualname, record.rel_path,
                    expr.lineno, tuple(sorted(guards)),
                ))
            record_expr(expr.value, guards)
            return
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                record_expr(child, guards)
            elif isinstance(child, ast.keyword):
                record_expr(child.value, guards)

    def terminates(stmts: list) -> bool:
        return bool(stmts) and isinstance(stmts[-1], _TERMINATORS)

    def visit_block(stmts: list, guards: frozenset) -> None:
        ambient = guards
        for stmt in stmts:
            visit_stmt(stmt, ambient)
            # An early-exit prefix guards everything after it: code
            # past `if icvs.wait_policy is ACTIVE: return ...` only
            # runs conditionally on the wait policy.
            if isinstance(stmt, ast.If) and (
                terminates(stmt.body)
                or (stmt.orelse and terminates(stmt.orelse))
            ):
                ambient = ambient | test_attrs(stmt.test)

    def visit_stmt(stmt, guards: frozenset) -> None:
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return
        if isinstance(stmt, ast.If):
            record_expr(stmt.test, guards)
            inner = guards | test_attrs(stmt.test)
            visit_block(stmt.body, inner)
            visit_block(stmt.orelse, inner)
            return
        if isinstance(stmt, ast.While):
            record_expr(stmt.test, guards)
            visit_block(stmt.body, guards | test_attrs(stmt.test))
            visit_block(stmt.orelse, guards)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            record_expr(stmt.iter, guards)
            visit_block(stmt.body, guards)
            visit_block(stmt.orelse, guards)
            return
        if isinstance(stmt, ast.Try):
            visit_block(stmt.body, guards)
            for handler in stmt.handlers:
                visit_block(handler.body, guards)
            visit_block(stmt.orelse, guards)
            visit_block(stmt.finalbody, guards)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                record_expr(item.context_expr, guards)
            visit_block(stmt.body, guards)
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                record_expr(child, guards)

    visit_block(record.node.body, frozenset())
    reads.sort(key=lambda r: (r.lineno, r.cls, r.attr))
    return reads


class SummaryTable:
    """Direct and transitive effect summaries for one call graph."""

    def __init__(self, graph: CallGraph):
        self.graph = graph
        self.direct: dict[str, list[EffectSite]] = {}
        #: qualname -> kind -> witness: ("site", EffectSite) for a direct
        #: occurrence, ("call", callee, call lineno) for one hop toward it.
        self._via: dict[str, dict[str, tuple]] = {}

    def effects(self, qualname: str) -> frozenset[str]:
        """The transitive effect kinds of ``qualname``."""
        return frozenset(self._via.get(qualname, ()))

    def witness_chain(self, qualname: str, kind: str) -> list[str]:
        """Shortest call trail from ``qualname`` to a direct ``kind`` site.

        Each entry is ``qualname (path:line)``; the last entry names the
        offending external call itself.
        """
        trail: list[str] = []
        current = qualname
        seen: set[str] = set()
        while current not in seen:
            seen.add(current)
            via = self._via.get(current, {}).get(kind)
            if via is None:
                break
            if via[0] == "site":
                site = via[1]
                trail.append(
                    f"{current} -> {site.what} "
                    f"({site.rel_path}:{site.lineno})"
                )
                break
            _, callee, lineno = via
            record = self.graph.functions[current]
            trail.append(f"{current} ({record.rel_path}:{lineno})")
            current = callee
        return trail


def compute_summaries(graph: CallGraph) -> SummaryTable:
    """Direct effects for every function, propagated to a fixpoint."""
    table = SummaryTable(graph)
    for qualname in graph.functions:
        table.direct[qualname] = direct_effects(graph, qualname)
    callers = graph.callers()
    for kind in EFFECT_KINDS:
        queue: list[str] = []
        for qualname, sites in table.direct.items():
            first = next((s for s in sites if s.kind == kind), None)
            if first is not None:
                table._via.setdefault(qualname, {})[kind] = ("site", first)
                queue.append(qualname)
        # Breadth-first wave backwards over call edges: the first time a
        # caller is reached, the edge used lies on a shortest path.
        head = 0
        while head < len(queue):
            current = queue[head]
            head += 1
            for caller, lineno in callers.get(current, ()):
                via = table._via.setdefault(caller, {})
                if kind not in via:
                    via[kind] = ("call", current, lineno)
                    queue.append(caller)
    return table
