"""The FLOW rule passes (plane 4; catalog in ``docs/LINTING.md``).

- **FLOW001** — transitive nondeterminism: a result-bearing root (sweep
  worker pack, ``RecordBlock`` construction, ``SweepCache.put``/``get``,
  report rendering) whose transitive closure reaches a wall-clock read
  or an unseeded RNG.  This supersedes the per-call-site blind spot of
  SIM001/SIM002: the effect may be laundered through any number of
  helper functions and still surfaces here, with the witness call chain
  in the message.  A root that no longer exists in the tree is itself a
  warning — a silently stale root list would un-protect the pipeline.
- **FLOW002** — resource safety in ``resilience/``: a socket, node
  process, selector, or spool file acquired on a path where an
  exception can escape before release.  Acquisitions are safe when used
  as a context manager, released under ``finally``, released with no
  raising statement in between, or *escaping* (passed to another call,
  returned, yielded, stored into an object) — escape transfers
  ownership, which a local pass must not second-guess.
- **FLOW003** — frame-protocol consistency: every payload kind sent
  through the :mod:`repro.resilience.transport` framing has a matching
  receiver dispatch arm (a ``message[0]`` comparison) somewhere in the
  modules that read frames, and vice versa, so protocol drift between
  node and coordinator is caught before a chaos run finds it.  Senders
  must use literal ``("kind", ...)`` tuples; a computed payload defeats
  the analysis and is reported as its own finding.
"""

from __future__ import annotations

import ast

from repro.lint.findings import Finding, Severity
from repro.lint.flow.callgraph import CallGraph, _dotted
from repro.lint.flow.summaries import SummaryTable

__all__ = [
    "DEFAULT_RESULT_ROOTS",
    "check_transitive_nondeterminism",
    "check_resource_safety",
    "check_frame_protocol",
]

#: The result-bearing roots FLOW001 guards: every function whose output
#: lands in records, the cache, or a rendered report.
DEFAULT_RESULT_ROOTS = (
    "repro.core.sweep._execute_batch",
    "repro.core.sweep._worker_run_batch",
    "repro.core.sweep._supervised_run_batch",
    "repro.core.sweep.sweep_records_to_block",
    "repro.core.sweep.sweep_block_to_records",
    "repro.core.cache.SweepCache.put",
    "repro.core.cache.SweepCache.get",
    "repro.frame.columns.RecordBlock.append",
    "repro.frame.columns.RecordBlock.extend",
    "repro.frame.columns.RecordBlock.from_records",
    "repro.frame.columns.RecordBlock.to_payload",
    "repro.frame.columns.RecordBlock.from_payload",
    "repro.reporting.report_payload",
    "repro.reporting.render_report",
    "repro.serve.render.record_payload",
    "repro.serve.render.records_payload",
    "repro.serve.render.sweep_summary_payload",
    "repro.serve.render.job_payload",
    "repro.serve.render.recommend_payload",
)

_NONDETERMINISM = ("wall-clock", "unseeded-rng")


def _subject(qualname: str, package: str) -> str:
    prefix = package + "."
    return qualname[len(prefix):] if qualname.startswith(prefix) else qualname


# ----------------------------------------------------------------------
# FLOW001 — transitive nondeterminism
# ----------------------------------------------------------------------
def check_transitive_nondeterminism(
    graph: CallGraph,
    summaries: SummaryTable,
    roots: tuple[str, ...] = DEFAULT_RESULT_ROOTS,
) -> list[Finding]:
    """Findings for result-bearing roots reaching nondeterminism."""
    findings: list[Finding] = []
    for root in roots:
        record = graph.functions.get(root)
        if record is None:
            findings.append(Finding(
                rule="FLOW001",
                severity=Severity.WARNING,
                subject=_subject(root, graph.package),
                message=(
                    f"result-bearing root {root!r} not found in the tree: "
                    "the function was renamed or removed, so the "
                    "nondeterminism guard no longer covers it"
                ),
                fixit="update DEFAULT_RESULT_ROOTS in lint/flow/passes.py",
                path="lint/flow/passes.py",
            ))
            continue
        effects = summaries.effects(root)
        for kind in _NONDETERMINISM:
            if kind not in effects:
                continue
            chain = summaries.witness_chain(root, kind)
            findings.append(Finding(
                rule="FLOW001",
                severity=Severity.ERROR,
                subject=_subject(root, graph.package),
                message=(
                    f"result-bearing path transitively reaches a "
                    f"{kind.replace('-', ' ')}: "
                    + " -> ".join(chain)
                ),
                fixit=(
                    "thread the simulation clock or an explicit seed "
                    "through the chain instead of reading host state"
                ),
                path=record.rel_path,
                line=record.lineno,
            ))
    return findings


# ----------------------------------------------------------------------
# FLOW002 — resource safety
# ----------------------------------------------------------------------
#: Canonical call spellings that acquire a releasable resource.
_ACQUIRERS = {
    "socket.socket": "socket",
    "socket.socketpair": "socket",
    "socket.create_connection": "socket",
    "selectors.DefaultSelector": "selector",
    "multiprocessing.Process": "node process",
    "subprocess.Popen": "process",
    "open": "file",
    "tempfile.mkstemp": "spool file",
    "tempfile.NamedTemporaryFile": "spool file",
    "tempfile.TemporaryDirectory": "spool dir",
}
#: Method names whose call on the resource counts as release.
_RELEASERS = frozenset(
    {"close", "terminate", "kill", "join", "shutdown", "unregister",
     "cleanup", "release"}
)
#: External calls that release (``os.close(fd)``) rather than escape.
_RELEASE_CALLS = frozenset({"os.close", "os.closerange"})


def _pos(node: ast.AST) -> tuple[int, int]:
    return (node.lineno, node.col_offset)


class _ResourceScan:
    """Per-function lexical scan for one acquired name."""

    def __init__(self, fn_node: ast.AST, canon, name: str,
                 acq_pos: tuple[int, int]):
        self.fn = fn_node
        self.canon = canon
        self.name = name
        self.acq_pos = acq_pos

    def _mentions(self, node: ast.AST) -> bool:
        return any(
            isinstance(n, ast.Name) and n.id == self.name
            for n in ast.walk(node)
        )

    def escapes(self) -> bool:
        for node in ast.walk(self.fn):
            if isinstance(node, ast.Call):
                c = self.canon(node)
                if c in _RELEASE_CALLS:
                    continue
                for arg in (*node.args, *[k.value for k in node.keywords]):
                    if self._mentions(arg):
                        return True
            elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                if node.value is not None and self._mentions(node.value):
                    return True
            elif isinstance(node, ast.Raise):
                if node.exc is not None and self._mentions(node.exc):
                    return True
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                stores_away = any(
                    isinstance(t, (ast.Attribute, ast.Subscript))
                    for t in targets
                )
                value = node.value
                if stores_away and value is not None \
                        and self._mentions(value):
                    return True
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.Lambda)):
                # Closure capture: ownership is no longer lexically local.
                if node is not self.fn and self._mentions(node):
                    return True
        return False

    def _is_release(self, node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        if (
            isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == self.name
            and node.func.attr in _RELEASERS
        ):
            return True
        c = self.canon(node)
        return c in _RELEASE_CALLS and self._mentions(node)

    def release_pos(self) -> tuple[int, int] | None:
        positions = [
            _pos(node) for node in ast.walk(self.fn)
            if self._is_release(node) and _pos(node) > self.acq_pos
        ]
        return min(positions) if positions else None

    def finally_guarded(self) -> bool:
        for node in ast.walk(self.fn):
            if not isinstance(node, (ast.Try, *(
                    (ast.TryStar,) if hasattr(ast, "TryStar") else ()))):
                continue
            if not node.finalbody or not node.body:
                continue
            # The acquisition may sit inside the try body or (the safer
            # idiom) immediately before it; either way the finally
            # covers every raise after the resource exists.  A try that
            # already finished before the acquisition guards nothing.
            last = node.body[-1]
            end = (getattr(last, "end_lineno", last.lineno) or last.lineno,
                   10 ** 9)
            if self.acq_pos > end:
                continue
            for final_stmt in node.finalbody:
                if any(self._is_release(n)
                       for n in ast.walk(final_stmt)):
                    return True
        return False

    def raising_between(
        self, until: tuple[int, int] | None
    ) -> tuple[int, str] | None:
        """First may-raise node strictly between acquisition and release."""
        for node in ast.walk(self.fn):
            if not isinstance(node, (ast.Call, ast.Raise)):
                continue
            pos = _pos(node)
            if pos <= self.acq_pos:
                continue
            if until is not None and pos >= until:
                continue
            if self._is_release(node):
                continue
            what = "raise"
            if isinstance(node, ast.Call):
                what = (_dotted(node.func) or "a call") + "()"
            return node.lineno, what
        return None


def check_resource_safety(
    graph: CallGraph,
    scopes: tuple[str, ...] = ("resilience/",),
) -> list[Finding]:
    """FLOW002 findings over every function in the scoped modules."""
    findings: list[Finding] = []
    for qualname in sorted(graph.functions):
        record = graph.functions[qualname]
        if not any(record.rel_path.startswith(s) for s in scopes):
            continue
        index = graph.module_of(qualname)
        if index is None:
            continue

        def canon(call: ast.Call) -> str | None:
            d = _dotted(call.func)
            return index.canonical(d) if d else None

        nested = {
            id(inner)
            for child in ast.walk(record.node)
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
            and child is not record.node
            for inner in ast.walk(child)
        }
        with_guarded = {
            id(item.context_expr)
            for node in ast.walk(record.node)
            for item in getattr(node, "items", ())
        }

        def emit(lineno: int, label: str, detail: str, fixit: str) -> None:
            findings.append(Finding(
                rule="FLOW002",
                severity=Severity.ERROR,
                subject=_subject(qualname, graph.package),
                message=f"{label} {detail}",
                fixit=fixit,
                path=record.rel_path,
                line=lineno,
            ))

        for node in ast.walk(record.node):
            if id(node) in nested:
                continue
            call = None
            names: list[str] = []
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.value, ast.Call):
                call = node.value
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    names = [target.id]
                elif isinstance(target, (ast.Tuple, ast.List)):
                    names = [e.id for e in target.elts
                             if isinstance(e, ast.Name)]
                else:
                    continue  # stored into an object: escapes immediately
            elif isinstance(node, ast.Expr) \
                    and isinstance(node.value, ast.Call):
                call = node.value
            if call is None or id(call) in with_guarded:
                continue
            label = _ACQUIRERS.get(canon(call) or "")
            if label is None:
                continue
            if canon(call) == "tempfile.mkstemp":
                names = names[:1]  # (fd, path): only the fd is a resource
            if not names:
                emit(
                    call.lineno, label,
                    "acquired and immediately discarded: nothing can "
                    "ever release it",
                    "bind the resource and release it, or use a context "
                    "manager",
                )
                continue
            for name in names:
                scan = _ResourceScan(record.node, canon, name, _pos(call))
                if scan.escapes() or scan.finally_guarded():
                    continue
                release = scan.release_pos()
                if release is None:
                    emit(
                        call.lineno, label,
                        f"{name!r} is never released on any path out of "
                        "this function",
                        f"close {name!r} in a finally block or use a "
                        "context manager",
                    )
                    continue
                hazard = scan.raising_between(release)
                if hazard is not None:
                    line, what = hazard
                    emit(
                        call.lineno, label,
                        f"{name!r} leaks if {what} at line {line} raises "
                        "before the release at line "
                        f"{release[0]} (no finally/context-manager guard)",
                        f"release {name!r} in a finally block covering "
                        "the raising statement",
                    )
    return findings


# ----------------------------------------------------------------------
# FLOW003 — frame-protocol consistency
# ----------------------------------------------------------------------
_SEND_SUFFIXES = (".transport.send_frame", ".transport.send_truncated_frame")
_RECV_SUFFIX = ".transport.recv_frame"


def _message_arg(call: ast.Call) -> ast.AST | None:
    if len(call.args) >= 2:
        return call.args[1]
    for kw in call.keywords:
        if kw.arg == "message":
            return kw.value
    return None


def check_frame_protocol(graph: CallGraph) -> list[Finding]:
    """FLOW003: match sent frame kinds against receiver dispatch arms."""
    findings: list[Finding] = []
    sent: dict[str, list[tuple[str, int, str]]] = {}
    recv_modules: set[str] = set()

    for qualname, sites in sorted(graph.calls.items()):
        record = graph.functions[qualname]
        for site in sites:
            if site.callee is None:
                continue
            if site.callee.endswith(_RECV_SUFFIX):
                recv_modules.add(record.module)
            if not site.callee.endswith(_SEND_SUFFIXES):
                continue
            message = _message_arg(site.node)
            kind = None
            if (
                isinstance(message, ast.Tuple)
                and message.elts
                and isinstance(message.elts[0], ast.Constant)
                and isinstance(message.elts[0].value, str)
            ):
                kind = message.elts[0].value
            if kind is None:
                findings.append(Finding(
                    rule="FLOW003",
                    severity=Severity.ERROR,
                    subject=_subject(qualname, graph.package),
                    message=(
                        "frame payload kind is not statically decidable "
                        "(not a literal ('kind', ...) tuple): the "
                        "protocol-consistency check cannot cover this "
                        "send"
                    ),
                    fixit="send a literal tuple whose first element is "
                          "the kind string",
                    path=record.rel_path,
                    line=site.lineno,
                ))
                continue
            sent.setdefault(kind, []).append(
                (record.rel_path, site.lineno, qualname)
            )

    # Dispatch arms: message[0] comparisons (directly, or through a
    # local name assigned from a [0] subscript) in frame-reading modules.
    dispatched: dict[str, list[tuple[str, int, str]]] = {}
    for qualname in sorted(graph.functions):
        record = graph.functions[qualname]
        if record.module not in recv_modules:
            continue
        tag_names: set[str] = set()
        for node in ast.walk(record.node):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and _is_tag_subscript(node.value)
            ):
                tag_names.add(node.targets[0].id)
        for node in ast.walk(record.node):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq))
                       for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            is_tag = any(
                _is_tag_subscript(o)
                or (isinstance(o, ast.Name) and o.id in tag_names)
                for o in operands
            )
            if not is_tag:
                continue
            for o in operands:
                if isinstance(o, ast.Constant) and isinstance(o.value, str):
                    dispatched.setdefault(o.value, []).append(
                        (record.rel_path, node.lineno, qualname)
                    )

    if not sent and not recv_modules:
        return findings

    for kind in sorted(set(sent) - set(dispatched)):
        path, line, qualname = min(sent[kind])
        findings.append(Finding(
            rule="FLOW003",
            severity=Severity.ERROR,
            subject=f"frame-kind:{kind}",
            message=(
                f"frame kind {kind!r} is sent (by "
                f"{_subject(qualname, graph.package)}) but no receiver "
                "dispatch arm matches it: the peer will drop or "
                "misinterpret the message"
            ),
            fixit=f"add a message[0] == {kind!r} arm to the receiver",
            path=path,
            line=line,
        ))
    for kind in sorted(set(dispatched) - set(sent)):
        path, line, qualname = min(dispatched[kind])
        findings.append(Finding(
            rule="FLOW003",
            severity=Severity.ERROR,
            subject=f"frame-kind:{kind}",
            message=(
                f"receiver dispatch arm for frame kind {kind!r} (in "
                f"{_subject(qualname, graph.package)}) but nothing ever "
                "sends it: dead protocol arm or a renamed kind"
            ),
            fixit="remove the dead arm or fix the sender's kind string",
            path=path,
            line=line,
        ))
    return findings


def _is_tag_subscript(node: ast.AST | None) -> bool:
    """``<expr>[0]`` — the frame-kind position of a message tuple."""
    return (
        isinstance(node, ast.Subscript)
        and isinstance(node.slice, ast.Constant)
        and node.slice.value == 0
    )
