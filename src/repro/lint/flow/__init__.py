"""Interprocedural effect-analysis lint plane (FLOW001–FLOW003).

Layout:

- :mod:`repro.lint.flow.callgraph` — project-wide call graph: module
  and import resolution, alias canonicalization, static method dispatch;
- :mod:`repro.lint.flow.summaries` — per-function effect summaries and
  the transitive fixpoint with shortest-witness chains;
- :mod:`repro.lint.flow.passes` — the FLOW001/FLOW002/FLOW003 rules;
- :mod:`repro.lint.flow.runner` — plane orchestration and waivers.
"""

from repro.lint.flow.callgraph import (
    CallGraph,
    CallSite,
    ClassRecord,
    FunctionRecord,
    build_callgraph,
)
from repro.lint.flow.passes import (
    DEFAULT_RESULT_ROOTS,
    check_frame_protocol,
    check_resource_safety,
    check_transitive_nondeterminism,
)
from repro.lint.flow.runner import flow_lint, flow_lint_graph
from repro.lint.flow.summaries import (
    EFFECT_KINDS,
    EffectSite,
    SummaryTable,
    compute_summaries,
)

__all__ = [
    "CallGraph",
    "CallSite",
    "ClassRecord",
    "FunctionRecord",
    "build_callgraph",
    "EFFECT_KINDS",
    "EffectSite",
    "SummaryTable",
    "compute_summaries",
    "DEFAULT_RESULT_ROOTS",
    "check_frame_protocol",
    "check_resource_safety",
    "check_transitive_nondeterminism",
    "flow_lint",
    "flow_lint_graph",
]
