"""Plane 1a: lint rules over EnvConfig x MachineTopology (x Program).

Each rule is a function ``(config, icvs, machine, program) -> findings``
registered via :func:`rule`.  Rules reason with the *resolved* ICVs —
the same derivation the executor uses — so a finding like "KMP_BLOCKTIME
is dead under KMP_LIBRARY=turnaround" is decided by the actual wait-policy
derivation (paper Sec. III), not a re-implementation of it.

Rule ids are stable; ``docs/LINTING.md`` is the catalog.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Iterable, Iterator

from repro.arch.topology import MachineTopology
from repro.lint.findings import Finding, Severity
from repro.runtime.affinity import compute_placement
from repro.runtime.icv import (
    UNSET,
    BindPolicy,
    EnvConfig,
    LibraryMode,
    ResolvedICVs,
    WaitPolicy,
    resolve_icvs,
)
from repro.runtime.program import LoopRegion, Program

__all__ = ["CONFIG_RULES", "lint_config"]

ConfigRule = Callable[
    [EnvConfig, ResolvedICVs, MachineTopology, "Program | None"],
    Iterable[Finding],
]

CONFIG_RULES: list[ConfigRule] = []


def rule(func: ConfigRule) -> ConfigRule:
    """Register a config-lint rule (module import order = report order)."""
    CONFIG_RULES.append(func)
    return func


_WAIT_RULE = (
    "OMP_WAIT_POLICY = ACTIVE if KMP_LIBRARY=turnaround or "
    "KMP_BLOCKTIME=infinite else PASSIVE (Sec. III-4/5)"
)
_BIND_RULE = (
    "OMP_PROC_BIND default = spread when OMP_PLACES is set, "
    "false otherwise (Sec. III-2)"
)


@rule
def _env001_dead_blocktime(config, icvs, machine, program):
    """ENV001: KMP_BLOCKTIME set but KMP_LIBRARY=turnaround keeps waiters
    spinning forever — the blocktime value is never consulted."""
    if config.blocktime != UNSET and icvs.library is LibraryMode.TURNAROUND:
        yield Finding(
            rule="ENV001",
            severity=Severity.WARNING,
            subject="KMP_BLOCKTIME",
            message=(
                f"KMP_BLOCKTIME={config.blocktime} is dead: "
                "KMP_LIBRARY=turnaround derives an ACTIVE wait policy, so "
                "workers never sleep and the blocktime is never read"
            ),
            fixit=(
                "drop KMP_BLOCKTIME, or use KMP_LIBRARY=throughput if the "
                "sleep threshold should take effect"
            ),
            icv_rule=_WAIT_RULE,
        )


@rule
def _env002_shadowed_bind_default(config, icvs, machine, program):
    """ENV002: OMP_PLACES set without OMP_PROC_BIND silently switches the
    bind default from false to spread — threads get pinned."""
    if config.places != UNSET and config.proc_bind == UNSET:
        yield Finding(
            rule="ENV002",
            severity=Severity.WARNING,
            subject="OMP_PROC_BIND",
            message=(
                f"OMP_PLACES={config.places} shifts the unset OMP_PROC_BIND "
                "default from 'false' to 'spread': threads are bound even "
                "though no binding was requested"
            ),
            fixit=(
                "set OMP_PROC_BIND explicitly (spread to keep the derived "
                "behaviour, false to stay unbound)"
            ),
            icv_rule=_BIND_RULE,
        )


@rule
def _env003_dead_places(config, icvs, machine, program):
    """ENV003: OMP_PLACES set but OMP_PROC_BIND=false — unbound teams never
    consult the place list."""
    if config.places != UNSET and not icvs.threads_bound:
        yield Finding(
            rule="ENV003",
            severity=Severity.WARNING,
            subject="OMP_PLACES",
            message=(
                f"OMP_PLACES={config.places} is dead: "
                "OMP_PROC_BIND=false leaves threads unbound, so the place "
                "partition is never consulted"
            ),
            fixit="drop OMP_PLACES, or pick a binding policy other than false",
            icv_rule="unbound teams ignore places (Sec. III-1/2)",
        )


@rule
def _env004_oversubscription(config, icvs, machine, program):
    """ENV004: more threads requested than the machine has cores."""
    if config.num_threads is not None and config.num_threads > machine.n_cores:
        yield Finding(
            rule="ENV004",
            severity=Severity.ERROR,
            subject="OMP_NUM_THREADS",
            message=(
                f"OMP_NUM_THREADS={config.num_threads} oversubscribes "
                f"{machine.name} ({machine.n_cores} cores): every core "
                "timeshares team threads"
            ),
            fixit=f"use OMP_NUM_THREADS <= {machine.n_cores}",
            icv_rule="default nthreads = n_cores; explicit requests honoured",
        )


@rule
def _env005_bound_oversubscription(config, icvs, machine, program):
    """ENV005: the placement piles several threads onto one core even
    though the machine has enough cores (e.g. proc_bind=master)."""
    if config.num_threads is not None and config.num_threads > machine.n_cores:
        return  # ENV004 already covers machine-level oversubscription.
    placement = compute_placement(icvs, machine)
    if placement.bound and placement.max_oversubscription > 1:
        yield Finding(
            rule="ENV005",
            severity=Severity.WARNING,
            subject="OMP_PROC_BIND",
            message=(
                f"binding policy '{icvs.bind.value}' with places "
                f"'{icvs.places.value}' piles up to "
                f"{placement.max_oversubscription} threads per core while "
                f"{machine.name} has idle cores (the paper's worst trend, "
                "Sec. V-4)"
            ),
            fixit="use proc_bind=spread or close to use all places",
            icv_rule="master binds the whole team to the master thread's place",
        )


@rule
def _env006_align_below_line(config, icvs, machine, program):
    """ENV006: KMP_ALIGN_ALLOC below the cache line invites false sharing
    on this architecture."""
    if (
        config.align_alloc is not None
        and config.align_alloc < machine.cache_line_bytes
    ):
        yield Finding(
            rule="ENV006",
            severity=Severity.WARNING,
            subject="KMP_ALIGN_ALLOC",
            message=(
                f"KMP_ALIGN_ALLOC={config.align_alloc} is below the "
                f"{machine.cache_line_bytes}-byte cache line of "
                f"{machine.name}: adjacent allocations can share a line "
                "(false sharing; the paper's A64FX Sec. V-6 case)"
            ),
            fixit=f"use KMP_ALIGN_ALLOC >= {machine.cache_line_bytes}",
            icv_rule="align default = architecture cache line (Sec. III-7)",
        )


@rule
def _env007_redundant_defaults(config, icvs, machine, program):
    """ENV007: a variable explicitly set to the value derivation would have
    produced anyway — harmless, but noise in experiment manifests."""
    redundant: list[tuple[str, str]] = []
    if config.library == LibraryMode.THROUGHPUT.value:
        redundant.append(("KMP_LIBRARY", "throughput is the default"))
    if config.blocktime != UNSET and config.blocktime == "200":
        redundant.append(("KMP_BLOCKTIME", "200 ms is the default"))
    if config.schedule == "static":
        redundant.append(("OMP_SCHEDULE", "static is the default"))
    if config.proc_bind == BindPolicy.FALSE.value and config.places == UNSET:
        redundant.append(
            ("OMP_PROC_BIND", "false is the default when OMP_PLACES is unset")
        )
    if config.align_alloc == machine.cache_line_bytes:
        redundant.append(
            (
                "KMP_ALIGN_ALLOC",
                f"{machine.cache_line_bytes} is {machine.name}'s cache line "
                "(the default)",
            )
        )
    if config.num_threads == machine.n_cores:
        redundant.append(
            (
                "OMP_NUM_THREADS",
                f"{machine.n_cores} is the default team size on {machine.name}",
            )
        )
    if config.force_reduction != UNSET:
        heuristic = resolve_icvs(
            dataclasses.replace(config, force_reduction=UNSET), machine
        ).reduction
        if config.force_reduction == heuristic.value:
            redundant.append(
                (
                    "KMP_FORCE_REDUCTION",
                    f"the heuristic already selects '{heuristic.value}' at "
                    f"{icvs.nthreads} threads",
                )
            )
    for var, why in redundant:
        yield Finding(
            rule="ENV007",
            severity=Severity.INFO,
            subject=var,
            message=f"{var} is explicitly set to its derived default ({why})",
            fixit=f"drop {var}; derivation produces the same ICV",
            icv_rule="Sec. III default derivation",
        )


@rule
def _env008_serial_threads(config, icvs, machine, program):
    """ENV008: KMP_LIBRARY=serial forces one thread; an explicit
    OMP_NUM_THREADS is silently ignored."""
    if (
        config.library == LibraryMode.SERIAL.value
        and config.num_threads is not None
        and config.num_threads > 1
    ):
        yield Finding(
            rule="ENV008",
            severity=Severity.WARNING,
            subject="OMP_NUM_THREADS",
            message=(
                f"OMP_NUM_THREADS={config.num_threads} is dead: "
                "KMP_LIBRARY=serial forces the whole application serial "
                "(team size 1)"
            ),
            fixit="drop OMP_NUM_THREADS or use a parallel library mode",
            icv_rule="serial mode forces nthreads=1 (Sec. III-4)",
        )


@rule
def _env009_dead_schedule(config, icvs, machine, program):
    """ENV009 (program-aware): OMP_SCHEDULE set but no loop in the program
    follows the environment — every loop carries a schedule() clause, or
    the program has no worksharing loops at all."""
    if program is None or config.schedule == UNSET:
        return
    loops = [p for p in program.parallel_regions if isinstance(p, LoopRegion)]
    if not loops:
        yield Finding(
            rule="ENV009",
            severity=Severity.WARNING,
            subject="OMP_SCHEDULE",
            message=(
                f"OMP_SCHEDULE={config.schedule} is dead for "
                f"{program.name!r}: the program has no worksharing loops"
            ),
            fixit="drop OMP_SCHEDULE for this benchmark",
            icv_rule="OMP_SCHEDULE applies to schedule(runtime) loops only",
        )
    elif all(loop.fixed_schedule is not None for loop in loops):
        yield Finding(
            rule="ENV009",
            severity=Severity.WARNING,
            subject="OMP_SCHEDULE",
            message=(
                f"OMP_SCHEDULE={config.schedule} is dead for "
                f"{program.name!r}: every worksharing loop hard-codes a "
                "schedule() clause"
            ),
            fixit="drop OMP_SCHEDULE for this benchmark",
            icv_rule="a compiled-in schedule() clause overrides OMP_SCHEDULE",
        )


@rule
def _env010_dead_force_reduction(config, icvs, machine, program):
    """ENV010 (program-aware): KMP_FORCE_REDUCTION set but the program
    performs no reductions."""
    if program is None or config.force_reduction == UNSET:
        return
    n_red = sum(
        p.n_reductions
        for p in program.parallel_regions
        if isinstance(p, LoopRegion)
    )
    if n_red == 0:
        yield Finding(
            rule="ENV010",
            severity=Severity.WARNING,
            subject="KMP_FORCE_REDUCTION",
            message=(
                f"KMP_FORCE_REDUCTION={config.force_reduction} is dead for "
                f"{program.name!r}: no region performs a reduction"
            ),
            fixit="drop KMP_FORCE_REDUCTION for this benchmark",
            icv_rule="reduction method applies at reduction combine only",
        )


def lint_config(
    config: EnvConfig,
    machine: MachineTopology,
    program: Program | None = None,
) -> list[Finding]:
    """Run every config rule; findings in registration order.

    ``program`` enables the program-aware rules (ENV009/ENV010); without
    it only configuration-intrinsic rules fire.
    """
    icvs = resolve_icvs(config, machine)
    findings: list[Finding] = []
    for check in CONFIG_RULES:
        findings.extend(check(config, icvs, machine, program))
    return findings


def _iter_rules() -> Iterator[str]:  # pragma: no cover - introspection aid
    for check in CONFIG_RULES:
        yield check.__doc__ or check.__name__
