"""repro.lint — static analysis of configurations, programs, and the
simulator itself.

Three planes (see ``docs/LINTING.md`` for the rule catalog):

1. **Configuration & program lint** (``config_rules``, ``program_rules``):
   dead parameters, shadowed defaults, oversubscription, per-arch domain
   hazards, program-spec defects — decided against the actual ICV
   derivation rules of paper Sec. III.
2. **Equivalence pruning** (``equivalence``): resolved-ICV equivalence
   classes over configuration grids; the sweep engine simulates one
   representative per class and fans results out, record-identically.
3. **Self-lint** (``selflint``): an AST pass enforcing the determinism
   contract on ``src/repro`` (no wall clocks or unseeded randomness in
   the simulator core, no set-order-dependent iteration, frozen model
   dataclasses, no float equality in verification code), with an
   explicit waivers file.
"""

from repro.lint.config_rules import CONFIG_RULES, lint_config
from repro.lint.equivalence import (
    EquivalenceClass,
    PruneStats,
    equivalence_classes,
    grid_prune_stats,
    icv_signature,
)
from repro.lint.findings import (
    Finding,
    Severity,
    findings_report,
    format_findings,
    sort_findings,
    unwaived,
    write_findings_report,
)
from repro.lint.program_rules import PROGRAM_RULES, lint_program
from repro.lint.runner import (
    dedupe_findings,
    lint_environment,
    lint_manifests,
    lint_repository,
)
from repro.lint.selflint import (
    SELF_RULES,
    Waiver,
    apply_waivers,
    load_waivers,
    self_lint,
    self_lint_source,
    self_lint_tree,
)

__all__ = [
    "Finding",
    "Severity",
    "sort_findings",
    "unwaived",
    "format_findings",
    "findings_report",
    "write_findings_report",
    "CONFIG_RULES",
    "lint_config",
    "PROGRAM_RULES",
    "lint_program",
    "icv_signature",
    "EquivalenceClass",
    "equivalence_classes",
    "PruneStats",
    "grid_prune_stats",
    "SELF_RULES",
    "Waiver",
    "load_waivers",
    "apply_waivers",
    "self_lint_source",
    "self_lint_tree",
    "self_lint",
    "dedupe_findings",
    "lint_environment",
    "lint_manifests",
    "lint_repository",
]
