"""repro.lint — static analysis of configurations, programs, and the
simulator itself.

Five planes (see ``docs/LINTING.md`` for the rule catalog):

1. **Configuration & program lint** (``config_rules``, ``program_rules``):
   dead parameters, shadowed defaults, oversubscription, per-arch domain
   hazards, program-spec defects — decided against the actual ICV
   derivation rules of paper Sec. III.
2. **Equivalence pruning** (``equivalence``): resolved-ICV equivalence
   classes over configuration grids; the sweep engine simulates one
   representative per class and fans results out, record-identically.
3. **Self-lint** (``selflint``): an AST pass enforcing the determinism
   contract on ``src/repro`` (no wall clocks or unseeded randomness in
   the simulator core, no set-order-dependent iteration, frozen model
   dataclasses, no float equality in verification code), with an
   explicit waivers file.
4. **Flow lint** (``flow``): interprocedural effect analysis — a
   project-wide call graph with per-function effect summaries propagated
   to a fixpoint, catching transitive nondeterminism on result-bearing
   paths (FLOW001), leaked sockets/processes/spool files on exception
   paths (FLOW002), and frame-protocol drift between sender and receiver
   (FLOW003).
5. **Dependency lint** (``deps``): field-level dependency analysis over
   the flow call graph — the attributes the model-evaluation cone reads,
   guard conditions included, compared against the declared key
   material: signature completeness (KEY001), signature aliveness
   (KEY002), cache-key completeness (KEY003), and dead-field
   normalization drift (KEY004).
"""

from repro.lint.config_rules import CONFIG_RULES, lint_config
from repro.lint.equivalence import (
    EquivalenceClass,
    PruneStats,
    equivalence_classes,
    grid_prune_stats,
    icv_signature,
)
from repro.lint.findings import (
    Finding,
    Severity,
    findings_report,
    format_findings,
    sort_findings,
    unwaived,
    write_findings_report,
)
from repro.lint.program_rules import PROGRAM_RULES, lint_program
from repro.lint.runner import (
    dedupe_findings,
    lint_environment,
    lint_manifests,
    lint_repository,
)
from repro.lint.deps import deps_lint
from repro.lint.flow import (
    DEFAULT_RESULT_ROOTS,
    build_callgraph,
    compute_summaries,
    flow_lint,
)
from repro.lint.selflint import (
    SELF_RULES,
    Waiver,
    apply_waivers,
    load_waivers,
    self_lint,
    self_lint_source,
    self_lint_tree,
    unused_waiver_findings,
)

__all__ = [
    "Finding",
    "Severity",
    "sort_findings",
    "unwaived",
    "format_findings",
    "findings_report",
    "write_findings_report",
    "CONFIG_RULES",
    "lint_config",
    "PROGRAM_RULES",
    "lint_program",
    "icv_signature",
    "EquivalenceClass",
    "equivalence_classes",
    "PruneStats",
    "grid_prune_stats",
    "SELF_RULES",
    "Waiver",
    "load_waivers",
    "apply_waivers",
    "self_lint_source",
    "self_lint_tree",
    "self_lint",
    "unused_waiver_findings",
    "DEFAULT_RESULT_ROOTS",
    "build_callgraph",
    "compute_summaries",
    "deps_lint",
    "flow_lint",
    "dedupe_findings",
    "lint_environment",
    "lint_manifests",
    "lint_repository",
]
