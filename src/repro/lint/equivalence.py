"""Plane 2: resolved-ICV equivalence classes over configuration grids.

Many grid points differ as environment spellings but resolve to the same
execution: ``OMP_PROC_BIND=true`` vs ``spread``, ``KMP_LIBRARY=turnaround``
vs any ``KMP_BLOCKTIME`` under it, ``KMP_FORCE_REDUCTION=tree`` vs unset
at a >4-thread team.  :meth:`ResolvedICVs.execution_signature` canonicalizes
all of this; two configs with equal signatures produce bit-identical
*modeled* runtimes (the model is a function of the resolved ICVs alone),
while each spelling keeps its own measurement-noise stream.

The sweep engine (``repro.core.sweep``) groups each batch by signature,
evaluates the model once per class, and applies per-member noise to the
shared true runtime; this module provides the analysis
surface on the same grouping: class enumeration for reports, and
:func:`grid_prune_stats` for ``repro-omp lint --stats``.  The
``equivalence-pruning-parity`` differential check
(``repro.check.differential``) verifies record-identity end to end.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.arch.topology import MachineTopology
from repro.core.envspace import EnvSpace
from repro.core.sweep import equivalence_groups
from repro.runtime.icv import EnvConfig, resolve_icvs

__all__ = [
    "icv_signature",
    "EquivalenceClass",
    "equivalence_classes",
    "PruneStats",
    "grid_prune_stats",
]


def icv_signature(
    config: EnvConfig, machine: MachineTopology, nthreads: int | None = None
) -> tuple:
    """The execution signature of one configuration on one machine."""
    if nthreads is not None:
        config = config.with_threads(nthreads)
    return resolve_icvs(config, machine).execution_signature()


@dataclass(frozen=True)
class EquivalenceClass:
    """One behaviour class of a configuration grid.

    ``representative`` is the first member in grid order — the config the
    pruned sweep actually simulates.  ``members`` holds grid indices so
    callers can map back into their own config list.
    """

    signature: tuple
    representative: EnvConfig
    members: tuple[int, ...]

    @property
    def size(self) -> int:
        """Number of grid points in the class."""
        return len(self.members)


def equivalence_classes(
    configs: Sequence[EnvConfig],
    machine: MachineTopology,
    nthreads: int | None = None,
) -> list[EquivalenceClass]:
    """Partition ``configs`` into behaviour classes, grid order preserved.

    Classes appear in order of their first member; within a class, member
    indices ascend.  This mirrors exactly the grouping the pruned sweep
    uses (:func:`repro.core.sweep.equivalence_groups`).
    """
    groups = equivalence_groups(configs, machine, nthreads=nthreads)
    return [
        EquivalenceClass(
            signature=sig,
            representative=configs[members[0]],
            members=tuple(members),
        )
        for sig, members in groups.items()
    ]


@dataclass(frozen=True)
class PruneStats:
    """Pruning effectiveness of one grid at one thread count."""

    arch: str
    scale: str
    nthreads: int
    n_configs: int
    n_classes: int
    largest_class: int

    @property
    def n_pruned(self) -> int:
        """Configs whose records are fanned out instead of simulated."""
        return self.n_configs - self.n_classes

    @property
    def reduction(self) -> float:
        """Simulation-count reduction factor (>= 1.0)."""
        return self.n_configs / self.n_classes if self.n_classes else 1.0

    def describe(self) -> str:
        """One report line."""
        return (
            f"{self.arch:>8s} {self.scale:>9s} grid @ {self.nthreads:>3d} "
            f"threads: {self.n_configs:>5d} configs -> {self.n_classes:>5d} "
            f"classes ({self.reduction:.2f}x, largest class "
            f"{self.largest_class})"
        )


def grid_prune_stats(
    machine: MachineTopology,
    scale: str = "full",
    nthreads: Sequence[int] | None = None,
    space: EnvSpace | None = None,
    seed: int = 0,
) -> list[PruneStats]:
    """Pruning statistics for one arch grid at each thread count.

    With ``nthreads=None`` the grid is analyzed at the machine's full core
    count (the setting where the reduction-heuristic merges are strongest).
    """
    space = space if space is not None else EnvSpace()
    configs = space.grid(machine, scale=scale, seed=seed)
    counts = tuple(nthreads) if nthreads is not None else (machine.n_cores,)
    out = []
    for n in counts:
        classes = equivalence_classes(configs, machine, nthreads=n)
        out.append(
            PruneStats(
                arch=machine.name,
                scale=scale,
                nthreads=n,
                n_configs=len(configs),
                n_classes=len(classes),
                largest_class=max(c.size for c in classes),
            )
        )
    return out
