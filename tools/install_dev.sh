#!/usr/bin/env bash
# Offline development install.
#
# This environment has setuptools but neither network access nor the
# `wheel` distribution, which modern editable installs require.  This
# script installs the vendored wheel shim into site-packages and performs
# the editable install without build isolation.
set -euo pipefail
cd "$(dirname "$0")/.."

SITE_PACKAGES=$(python -c "import site; print(site.getsitepackages()[0])")

if ! python -c "import wheel.wheelfile" >/dev/null 2>&1; then
    echo "installing vendored wheel shim into ${SITE_PACKAGES}"
    cp -r vendor/wheel "${SITE_PACKAGES}/"
    cp -r vendor/wheel-0.0.0.dist-info "${SITE_PACKAGES}/"
fi

# pip quirk: both the env var and the config boolean are inverted —
# 0/false DISABLE build isolation.  The explicit flag is authoritative.
mkdir -p ~/.config/pip
grep -q no-build-isolation ~/.config/pip/pip.conf 2>/dev/null ||     printf '[global]\nno-build-isolation = false\n' >> ~/.config/pip/pip.conf
pip install -e ".[test]" --no-build-isolation
