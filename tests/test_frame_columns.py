"""Unit tests for the typed columnar block layer (repro.frame.columns)."""

import json
import pickle

import numpy as np
import pytest

from repro.errors import ColumnError, FrameError
from repro.frame.columns import (
    NONE_CODE,
    ColumnBlock,
    RecordBlock,
    StringTable,
    infer_schema,
)
from repro.frame.table import Table


@pytest.fixture
def schema():
    return {"app": "str", "threads": "i8", "runtimes": ("f8", 2)}


@pytest.fixture
def block(schema):
    b = RecordBlock(schema)
    b.append({"app": "cg", "threads": 8, "runtimes": (1.0, 2.0)})
    b.append({"app": "ep", "threads": 16, "runtimes": (3.0, 4.0)})
    b.append({"app": "cg", "threads": 32, "runtimes": (5.0, 6.0)})
    return b


class TestStringTable:
    def test_interns_first_add_order(self):
        t = StringTable()
        assert t.add("b") == 0
        assert t.add("a") == 1
        assert t.add("b") == 0  # existing code, no new entry
        assert len(t) == 2
        assert t.to_list() == ["b", "a"]
        assert t[0] == "b" and t[1] == "a"
        assert "a" in t and "z" not in t

    def test_non_string_rejected(self):
        with pytest.raises(FrameError, match="cannot intern"):
            StringTable().add(3)

    def test_lookup_array_gathers(self):
        t = StringTable(["x", "y"])
        arr = t.lookup_array()
        assert arr.dtype == object
        assert arr[np.asarray([1, 0, 1])].tolist() == ["y", "x", "y"]


class TestColumnBlock:
    def test_str_column_needs_table(self):
        with pytest.raises(FrameError, match="string table"):
            ColumnBlock("app", "str")

    def test_unknown_kind_rejected(self):
        with pytest.raises(FrameError, match="unknown column kind"):
            ColumnBlock("x", "f4")

    def test_width_must_be_positive(self):
        with pytest.raises(FrameError, match="width"):
            ColumnBlock("x", "f8", width=0)

    def test_none_encodes_to_sentinel(self):
        col = ColumnBlock("app", "str", strings=StringTable())
        col.append(None)
        col.append("cg")
        assert col.data[0] == NONE_CODE
        assert col.cell(0) is None and col.cell(1) == "cg"

    def test_vector_cell_roundtrip(self):
        col = ColumnBlock("rt", "f8", width=3)
        col.append((1.0, 2.0, 3.0))
        assert len(col) == 1
        assert col.cell(0) == (1.0, 2.0, 3.0)

    def test_wrong_vector_length_rejected(self):
        col = ColumnBlock("rt", "f8", width=2)
        with pytest.raises(FrameError, match="width"):
            col.append((1.0, 2.0, 3.0))

    def test_to_numpy_zero_copy_numeric(self):
        col = ColumnBlock("n", "i8")
        col.append(7)
        col.append(9)
        arr = col.to_numpy()
        assert arr.dtype == np.int64 and arr.tolist() == [7, 9]
        assert arr.base is not None  # a frombuffer view, not a copy

    def test_to_numpy_width_reshapes(self):
        col = ColumnBlock("rt", "f8", width=2)
        col.append((1.0, 2.0))
        col.append((3.0, 4.0))
        assert col.to_numpy().shape == (2, 2)

    def test_extend_block_kind_mismatch(self):
        a, b = ColumnBlock("x", "i8"), ColumnBlock("x", "f8")
        with pytest.raises(FrameError, match="cannot extend"):
            a.extend_block(b)


class TestInferSchema:
    def test_kinds(self):
        rec = {"s": "a", "none": None, "i": 3, "f": 1.5, "v": (1.0, 2.0)}
        assert infer_schema(rec) == {
            "s": ("str", 1), "none": ("str", 1), "i": ("i8", 1),
            "f": ("f8", 1), "v": ("f8", 2),
        }

    def test_bool_rejected(self):
        with pytest.raises(FrameError, match="bool"):
            infer_schema({"b": True})

    def test_unsupported_cell_rejected(self):
        with pytest.raises(FrameError, match="cannot infer"):
            infer_schema({"x": object()})


class TestRecordBlock:
    def test_roundtrip(self, block):
        assert len(block) == 3
        assert block.record(1) == {
            "app": "ep", "threads": 16, "runtimes": (3.0, 4.0)
        }
        assert block.to_records()[0]["app"] == "cg"

    def test_shared_string_table_interns_once(self, block):
        assert len(block.strings) == 2  # "cg", "ep"

    def test_empty_schema_rejected(self):
        with pytest.raises(FrameError, match="at least one column"):
            RecordBlock({})

    def test_append_missing_field_rejected(self, block):
        with pytest.raises(FrameError, match="fields"):
            block.append({"app": "cg"})
        with pytest.raises(FrameError, match="missing column"):
            block.append({"app": "cg", "threads": 1, "bogus": 2.0})

    def test_from_records_infers_schema(self):
        b = RecordBlock.from_records(
            [{"app": "cg", "x": 1.5}, {"app": None, "x": 2.5}]
        )
        assert b.schema == {"app": ("str", 1), "x": ("f8", 1)}
        assert b.record(1) == {"app": None, "x": 2.5}

    def test_from_records_empty_needs_schema(self):
        with pytest.raises(FrameError, match="zero records"):
            RecordBlock.from_records([])

    def test_extend_remaps_string_codes(self, schema):
        a = RecordBlock(schema)
        a.append({"app": "cg", "threads": 1, "runtimes": (1.0, 1.0)})
        b = RecordBlock(schema)  # independent table: different codes
        b.append({"app": "ep", "threads": 2, "runtimes": (2.0, 2.0)})
        b.append({"app": "cg", "threads": 3, "runtimes": (3.0, 3.0)})
        b.append({"app": None, "threads": 4, "runtimes": (4.0, 4.0)})
        a.extend(b)
        assert len(a) == 4
        assert [r["app"] for r in a.to_records()] == [
            "cg", "ep", "cg", None
        ]

    def test_extend_same_table_skips_remap(self, schema):
        a = RecordBlock(schema)
        a.append({"app": "cg", "threads": 1, "runtimes": (1.0, 1.0)})
        b = RecordBlock(schema)
        b.strings = a.strings  # same producer: shared table object
        b.columns = {
            n: ColumnBlock(n, c.kind, strings=a.strings, width=c.width)
            for n, c in a.columns.items()
        }
        b.append({"app": "ep", "threads": 2, "runtimes": (2.0, 2.0)})
        a.extend(b)
        assert a.to_records()[1]["app"] == "ep"

    def test_extend_schema_mismatch_rejected(self, block):
        other = RecordBlock({"app": "str"})
        with pytest.raises(FrameError, match="schema mismatch"):
            block.extend(other)

    def test_nbytes_counts_buffers_and_strings(self, block):
        # 3 rows x (1 str code + 1 int + 2 floats) x 8 bytes + "cg" + "ep"
        assert block.nbytes() == 3 * 4 * 8 + 4

    def test_pickle_roundtrip_is_compact(self, block):
        clone = pickle.loads(pickle.dumps(block))
        assert clone.to_records() == block.to_records()


class TestPayload:
    def test_json_roundtrip_bit_identical(self, block):
        payload = json.loads(json.dumps(block.to_payload()))
        clone = RecordBlock.from_payload(payload)
        assert clone.to_records() == block.to_records()
        assert clone.schema == block.schema

    def test_missing_field_rejected(self, block):
        payload = block.to_payload()
        del payload["strings"]
        with pytest.raises(FrameError, match="columnar payload"):
            RecordBlock.from_payload(payload)

    def test_row_count_mismatch_rejected(self, block):
        payload = block.to_payload()
        payload["n"] = 99
        with pytest.raises(FrameError, match="rows"):
            RecordBlock.from_payload(payload)

    def test_out_of_range_string_code_rejected(self, block):
        payload = block.to_payload()
        app = next(c for c in payload["columns"] if c["name"] == "app")
        app["data"][0] = 57
        with pytest.raises(FrameError, match="out-of-range"):
            RecordBlock.from_payload(payload)

    def test_duplicate_interned_string_rejected(self, block):
        payload = block.to_payload()
        payload["strings"] = ["cg", "cg"]
        with pytest.raises(FrameError, match="duplicate"):
            RecordBlock.from_payload(payload)

    def test_non_numeric_cell_rejected(self, block):
        payload = block.to_payload()
        payload["columns"][1]["data"][0] = "not-a-number"
        with pytest.raises(FrameError, match="columnar payload"):
            RecordBlock.from_payload(payload)


class TestTableFromBlock:
    def test_columns_and_dtypes(self, block):
        t = Table.from_block(block)
        assert t.column_names == [
            "app", "threads", "runtimes_0", "runtimes_1"
        ]
        assert t.column("app").dtype == object
        assert t.column("threads").dtype == np.int64
        assert t.column("runtimes_1").tolist() == [2.0, 4.0, 6.0]

    def test_vector_names_override(self, block):
        t = Table.from_block(
            block, vector_names={"runtimes": ["rt_a", "rt_b"]}
        )
        assert t.column_names == ["app", "threads", "rt_a", "rt_b"]

    def test_vector_names_apply_to_width_one(self):
        b = RecordBlock({"runtimes": ("f8", 1)})
        b.append({"runtimes": 1.5})  # width-1 cells are scalars
        t = Table.from_block(b, vector_names={"runtimes": ["runtime_0"]})
        assert t.column_names == ["runtime_0"]
        assert t.column("runtime_0").tolist() == [1.5]

    def test_wrong_vector_name_count_rejected(self, block):
        with pytest.raises(ColumnError, match="width"):
            Table.from_block(block, vector_names={"runtimes": ["only-one"]})

    def test_none_string_cells_survive(self):
        b = RecordBlock({"app": "str", "x": "f8"})
        b.append({"app": None, "x": 1.0})
        t = Table.from_block(b)
        assert t.column("app")[0] is None

    def test_matches_from_records(self, block):
        via_block = Table.from_block(block)
        exploded = []
        for rec in block.to_records():
            row = {"app": rec["app"], "threads": rec["threads"]}
            for i, v in enumerate(rec["runtimes"]):
                row[f"runtimes_{i}"] = v
            exploded.append(row)
        assert via_block == Table.from_records(exploded)
