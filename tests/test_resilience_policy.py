"""Tests for the deterministic retry/backoff policy."""

import pytest

from repro.errors import ConfigError
from repro.resilience import RetryPolicy


class TestValidation:
    @pytest.mark.parametrize("bad", [
        dict(max_retries=-1),
        dict(base_delay_s=-0.1),
        dict(backoff_factor=0.5),
        dict(max_delay_s=0.01, base_delay_s=0.05),
        dict(jitter=1.5),
        dict(jitter=-0.1),
    ])
    def test_bad_parameters_rejected(self, bad):
        with pytest.raises(ConfigError):
            RetryPolicy(**bad)

    def test_attempt_must_be_positive(self):
        with pytest.raises(ConfigError):
            RetryPolicy().delay_s(0, 0)


class TestBackoffShape:
    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(max_retries=4, base_delay_s=0.1,
                             backoff_factor=2.0, max_delay_s=100.0,
                             jitter=0.0)
        assert policy.schedule(0) == pytest.approx((0.1, 0.2, 0.4, 0.8))

    def test_cap_at_max_delay(self):
        policy = RetryPolicy(max_retries=6, base_delay_s=1.0,
                             backoff_factor=10.0, max_delay_s=2.0,
                             jitter=0.0)
        assert all(d <= 2.0 for d in policy.schedule(0))
        assert policy.delay_s(0, 6) == 2.0

    def test_zero_base_delay_stays_zero(self):
        policy = RetryPolicy(base_delay_s=0.0, max_delay_s=0.0)
        assert policy.delay_s(3, 1) == 0.0

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(max_retries=3, base_delay_s=0.1,
                             backoff_factor=2.0, max_delay_s=10.0,
                             jitter=0.25)
        for batch in range(20):
            for attempt in (1, 2, 3):
                base = min(0.1 * 2.0 ** (attempt - 1), 10.0)
                delay = policy.delay_s(batch, attempt)
                assert base * 0.75 <= delay <= base * 1.25


class TestDeterminism:
    def test_same_inputs_same_delay(self):
        a = RetryPolicy(seed=7)
        b = RetryPolicy(seed=7)
        for batch in range(10):
            assert a.schedule(batch) == b.schedule(batch)

    def test_delay_varies_across_batches_and_seeds(self):
        policy = RetryPolicy(seed=0)
        delays = {policy.delay_s(batch, 1) for batch in range(16)}
        assert len(delays) > 1, "jitter must decorrelate batches"
        assert (RetryPolicy(seed=0).delay_s(0, 1)
                != RetryPolicy(seed=1).delay_s(0, 1))

    def test_no_global_rng_consumed(self):
        """The jitter stream must not touch ``random``'s module state."""
        import random

        random.seed(1234)
        before = random.getstate()
        RetryPolicy(seed=3).schedule(5)
        assert random.getstate() == before
