"""Shared fixtures: small sweeps reused across analysis tests."""

from __future__ import annotations

import pytest

from repro.core.dataset import enrich_with_speedup, records_to_table
from repro.core.labeling import label_optimal
from repro.core.sweep import SweepPlan, run_sweep


@pytest.fixture(scope="session")
def milan_small_sweep():
    """A small-scale Milan sweep over three contrasting workloads."""
    plan = SweepPlan(
        arch="milan",
        workload_names=("xsbench", "cg", "nqueens"),
        scale="small",
        repetitions=3,
    )
    return run_sweep(plan)


@pytest.fixture(scope="session")
def milan_dataset(milan_small_sweep):
    """Enriched + labeled dataset table for the Milan small sweep."""
    table = records_to_table(milan_small_sweep.records)
    return label_optimal(enrich_with_speedup(table))


@pytest.fixture(scope="session")
def tri_arch_dataset():
    """Small sweep over all three machines, two workloads each."""
    from repro.frame.ops import concat_tables

    tables = []
    for arch in ("a64fx", "skylake", "milan"):
        plan = SweepPlan(
            arch=arch,
            workload_names=("alignment", "xsbench"),
            scale="small",
            repetitions=3,
        )
        result = run_sweep(plan)
        tables.append(records_to_table(result.records))
    return label_optimal(enrich_with_speedup(concat_tables(tables)))
