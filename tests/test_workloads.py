"""Tests for the 15 benchmark workload models and the registry."""

import pytest

from repro.arch.machines import A64FX, MILAN, SKYLAKE
from repro.errors import UnknownInput, UnknownWorkload, WorkloadError
from repro.runtime.program import LoopRegion, TaskRegion
from repro.workloads import (
    get_workload,
    synthetic_loop_workload,
    synthetic_task_workload,
    workload_names,
    workloads_for_arch,
)
from repro.workloads.base import Workload
from repro.workloads.generator import random_program

ALL_APPS = {
    "bt", "cg", "ep", "ft", "lu", "mg",
    "alignment", "health", "nqueens", "sort", "strassen",
    "xsbench", "rsbench", "su3bench", "lulesh",
}


class TestRegistry:
    def test_all_fifteen_registered(self):
        assert set(workload_names()) == ALL_APPS

    def test_unknown_rejected(self):
        with pytest.raises(UnknownWorkload):
            get_workload("hpl")

    def test_lookup_case_insensitive(self):
        assert get_workload("NQueens").name == "nqueens"

    def test_paper_dataset_app_counts(self):
        """Table II: 15 apps on A64FX, 13 on Milan, 12 on Skylake."""
        assert len(workloads_for_arch("a64fx")) == 15
        assert len(workloads_for_arch("milan")) == 13
        assert len(workloads_for_arch("skylake")) == 12

    def test_sort_strassen_a64fx_only(self):
        for name in ("sort", "strassen"):
            w = get_workload(name)
            assert w.runs_on("a64fx")
            assert not w.runs_on("milan")
            assert not w.runs_on("skylake")

    def test_suites(self):
        assert get_workload("cg").suite == "npb"
        assert get_workload("health").suite == "bots"
        assert get_workload("xsbench").suite == "proxy"


class TestExperimentalDesign:
    """Sec. IV-B: inputs OR threads varied, never both."""

    def test_npb_varies_input_at_full_threads(self):
        w = get_workload("bt")
        assert w.varies == "input_size"
        settings = w.settings(MILAN)
        assert [s[0] for s in settings] == ["S", "W", "A", "B"]
        assert all(t == 96 for _, t in settings)

    def test_bots_varies_input(self):
        w = get_workload("nqueens")
        assert [s[0] for s in w.settings(A64FX)] == ["small", "medium", "large"]

    def test_proxies_vary_threads(self):
        w = get_workload("xsbench")
        assert w.varies == "threads"
        settings = w.settings(SKYLAKE)
        assert [t for _, t in settings] == [10, 20, 30, 40]
        assert all(s == "default" for s, _ in settings)

    def test_thread_counts_scale_with_machine(self):
        w = get_workload("su3bench")
        assert w.thread_counts(MILAN) == (24, 48, 72, 96)
        assert w.thread_counts(A64FX) == (12, 24, 36, 48)

    def test_unknown_input_rejected(self):
        with pytest.raises(UnknownInput):
            get_workload("cg").program("XL")


class TestProgramShapes:
    @pytest.mark.parametrize("name", sorted(ALL_APPS))
    def test_all_programs_build_and_are_valid(self, name):
        w = get_workload(name)
        for inp in w.inputs:
            prog = w.program(inp)
            assert prog.phases
            assert prog.total_work > 0
            assert len(prog.parallel_regions) >= 1

    def test_builders_deterministic(self):
        w = get_workload("health")
        assert w.program("small") == w.program("small")

    def test_npb_are_loop_parallel(self):
        for name in ("bt", "cg", "ep", "ft", "lu", "mg"):
            prog = get_workload(name).program("A")
            assert not prog.uses_tasks, name

    def test_bots_are_task_parallel(self):
        for name in ("alignment", "health", "nqueens", "sort", "strassen"):
            prog = get_workload(name).program("small")
            assert prog.uses_tasks, name

    def test_input_scaling_monotone(self):
        for name in sorted(ALL_APPS):
            w = get_workload(name)
            works = [w.program(i).total_work for i in w.inputs]
            assert works == sorted(works), name

    def test_nqueens_tasks_are_fine_grained(self):
        prog = get_workload("nqueens").program("large")
        region = next(p for p in prog.phases if isinstance(p, TaskRegion))
        assert region.n_tasks > 10_000
        assert region.leaf_work < 5e-6

    def test_strassen_tasks_are_coarse(self):
        prog = get_workload("strassen").program("large")
        region = next(p for p in prog.phases if isinstance(p, TaskRegion))
        assert region.leaf_work > 1e-4

    def test_cg_has_reductions(self):
        prog = get_workload("cg").program("A")
        assert any(
            isinstance(p, LoopRegion) and p.n_reductions > 0
            for p in prog.phases
        )

    def test_xsbench_hardcodes_dynamic_schedule(self):
        prog = get_workload("xsbench").program("default")
        region = next(p for p in prog.phases if isinstance(p, LoopRegion))
        assert region.fixed_schedule == "dynamic"
        assert region.random_access


class TestDescribe:
    def test_describe_rows(self):
        w = get_workload("nqueens")
        d = w.describe(MILAN)
        assert d["suite"] == "bots"
        assert d["parallelism"] == "tasks"
        assert d["settings"] == 3
        assert d["archs"] == "all"

    def test_describe_restricted_arch(self):
        d = get_workload("sort").describe(A64FX)
        assert d["archs"] == "a64fx"


class TestWorkloadValidation:
    def test_bad_varies_rejected(self):
        with pytest.raises(WorkloadError):
            Workload(name="x", suite="s", varies="phase_of_moon",
                     inputs=("a",), builder=lambda i: None)

    def test_empty_inputs_rejected(self):
        with pytest.raises(WorkloadError):
            Workload(name="x", suite="s", varies="threads",
                     inputs=(), builder=lambda i: None)


class TestGenerator:
    def test_synthetic_loop(self):
        prog = synthetic_loop_workload(n_regions=4, trips=3)
        assert len(prog.parallel_regions) == 4
        assert not prog.uses_tasks

    def test_synthetic_task(self):
        prog = synthetic_task_workload(depth=3, branching=2)
        assert prog.uses_tasks

    def test_zero_regions_rejected(self):
        with pytest.raises(WorkloadError):
            synthetic_loop_workload(n_regions=0)

    def test_random_programs_always_valid(self):
        for seed in range(40):
            prog = random_program(seed)
            assert prog.total_work > 0
            assert len(prog.phases) >= 2

    def test_random_program_deterministic(self):
        assert random_program(7) == random_program(7)
