"""Wilcoxon signed-rank test: own implementation vs scipy and by hand."""

import numpy as np
import pytest
import scipy.stats

from repro.errors import StatsError
from repro.stats.wilcoxon import rankdata, wilcoxon_signed_rank


class TestRankdata:
    def test_simple(self):
        assert list(rankdata(np.array([10.0, 20.0, 30.0]))) == [1, 2, 3]

    def test_ties_get_midranks(self):
        ranks = rankdata(np.array([1.0, 2.0, 2.0, 3.0]))
        assert list(ranks) == [1.0, 2.5, 2.5, 4.0]

    def test_matches_scipy(self):
        rng = np.random.default_rng(0)
        x = rng.integers(0, 10, size=50).astype(float)
        assert np.allclose(rankdata(x), scipy.stats.rankdata(x))


class TestExactPath:
    def test_small_sample_exact_matches_scipy(self):
        x = np.array([1.11, 2.33, 0.85, 4.27, 3.31, 2.21, 5.58, 1.93])
        y = np.array([1.0, 2.0, 1.2, 4.0, 3.0, 2.5, 5.0, 2.2])
        mine = wilcoxon_signed_rank(x, y)
        ref = scipy.stats.wilcoxon(x, y)
        assert mine.method == "exact"
        assert mine.statistic == pytest.approx(ref.statistic)
        assert mine.pvalue == pytest.approx(ref.pvalue, rel=1e-10)

    def test_differences_only_signature(self):
        d = np.array([0.5, -0.2, 0.7, 0.1, -0.9, 0.3])
        mine = wilcoxon_signed_rank(d)
        ref = scipy.stats.wilcoxon(d)
        assert mine.pvalue == pytest.approx(ref.pvalue, rel=1e-10)

    def test_all_positive_differences_significant(self):
        d = np.linspace(0.1, 1.0, 12)
        res = wilcoxon_signed_rank(d)
        assert res.statistic == 0.0
        assert res.significant()


class TestApproxPath:
    def test_large_sample_matches_scipy(self):
        rng = np.random.default_rng(7)
        x = rng.normal(size=200)
        y = x + rng.normal(scale=0.5, size=200) + 0.1
        mine = wilcoxon_signed_rank(x, y)
        ref = scipy.stats.wilcoxon(x, y, correction=True, mode="approx")
        assert mine.method == "approx"
        assert mine.statistic == pytest.approx(ref.statistic)
        assert mine.pvalue == pytest.approx(ref.pvalue, rel=1e-6)

    def test_ties_force_approx(self):
        x = np.array([1.0, 1.0, 2.0, 2.0, 3.0, 3.0, -1.0, -1.0] * 2)
        res = wilcoxon_signed_rank(x)
        assert res.method == "approx"
        ref = scipy.stats.wilcoxon(x, correction=True, mode="approx")
        assert res.pvalue == pytest.approx(ref.pvalue, rel=1e-6)

    def test_identical_distributions_not_significant(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=500)
        y = x + rng.normal(scale=1.0, size=500)  # symmetric noise
        res = wilcoxon_signed_rank(x, y)
        assert res.pvalue > 0.01  # no systematic shift

    def test_consistent_small_shift_detected_at_scale(self):
        rng = np.random.default_rng(4)
        base = rng.normal(size=3000)
        shifted = base + 0.05 + rng.normal(scale=0.1, size=3000)
        res = wilcoxon_signed_rank(base, shifted)
        assert res.pvalue < 1e-10


class TestValidation:
    def test_shape_mismatch(self):
        with pytest.raises(StatsError):
            wilcoxon_signed_rank(np.ones(3), np.ones(4))

    def test_all_zero_differences(self):
        with pytest.raises(StatsError):
            wilcoxon_signed_rank(np.ones(5), np.ones(5))

    def test_2d_rejected(self):
        with pytest.raises(StatsError):
            wilcoxon_signed_rank(np.ones((2, 2)))

    def test_zero_differences_dropped(self):
        d = np.array([0.0, 0.0, 1.0, -2.0, 3.0])
        res = wilcoxon_signed_rank(d)
        assert res.n_used == 3


class TestPaperShape:
    """The Table III contrast: quiet machine vs drifting machines."""

    def test_noise_model_contrast(self):
        from repro.arch.noise import get_noise_model

        rng = np.random.default_rng(11)
        true_runtimes = rng.uniform(0.05, 0.5, size=800)

        def observe(arch, run_index):
            model = get_noise_model(arch)
            return np.array(
                [
                    model.apply(t, run_index, seed=i)
                    for i, t in enumerate(true_runtimes)
                ]
            )

        # A64FX: repetitions statistically indistinguishable.
        a0, a1 = observe("a64fx", 0), observe("a64fx", 1)
        assert wilcoxon_signed_rank(a0, a1).pvalue > 0.05

        # Milan: every pair differs (first-run warm-up + drift).
        m0, m1 = observe("milan", 0), observe("milan", 1)
        assert wilcoxon_signed_rank(m0, m1).pvalue < 1e-10

        # Skylake: first pair consistent, later pair drifts apart.
        s0, s1 = observe("skylake", 0), observe("skylake", 1)
        s2 = observe("skylake", 2)
        assert wilcoxon_signed_rank(s0, s1).pvalue > 0.05
        assert wilcoxon_signed_rank(s1, s2).pvalue < 1e-10
