"""Tests for the extension modules: non-linear influence, transfer to
unseen apps, additional tuners, numa_domains space, power/EDP, release."""

import numpy as np
import pytest

from repro.arch.machines import MILAN
from repro.core.envspace import EnvSpace, extended_variables
from repro.core.nonlinear import compare_models, forest_influence
from repro.core.release import load_release, write_release
from repro.core.search import (
    exhaustive_search,
    greedy_ofat,
    random_search,
    simulated_annealing,
)
from repro.core.transfer import (
    fine_tune,
    leave_one_app_out,
    recommend_for_unseen,
)
from repro.errors import ConfigError, DatasetError, SchemaError
from repro.frame.table import Table
from repro.runtime.icv import EnvConfig
from repro.runtime.power import energy_profile, get_power_model
from repro.workloads.base import get_workload


class TestNonlinearInfluence:
    def test_forest_influence_shape(self, milan_dataset):
        inf = forest_influence(milan_dataset, by=("arch",))
        assert inf.row_labels == ["milan"]
        m = inf.matrix()
        assert (m >= 0).all()
        assert np.allclose(m.sum(axis=1), 1.0)

    def test_forest_beats_or_matches_linear(self, milan_dataset):
        comparisons = compare_models(milan_dataset, by=("arch",))
        assert len(comparisons) == 1
        c = comparisons[0]
        # The non-linear model captures interactions the paper's linear
        # approach cannot: accuracy must not be worse.
        assert c.forest_accuracy >= c.linear_accuracy
        assert c.accuracy_gain >= 0.0
        assert 0.5 <= c.forest_auc <= 1.0
        assert c.forest_auc >= c.linear_auc - 0.02

    def test_forest_finds_wait_policy_for_nqueens(self, milan_dataset):
        mask = np.asarray([a == "nqueens" for a in milan_dataset["app"]])
        sub = milan_dataset.filter(mask)
        inf = forest_influence(sub, by=("app",), n_trees=10)
        scores = inf.rows[0].as_dict()
        wait = scores["KMP_LIBRARY"] + scores["KMP_BLOCKTIME"]
        assert wait > scores["KMP_ALIGN_ALLOC"]
        assert wait > scores["OMP_SCHEDULE"]

    def test_missing_columns_rejected(self):
        with pytest.raises(SchemaError):
            forest_influence(Table({"arch": ["m"], "optimal": [1]}))


class TestTransfer:
    def test_leave_one_app_out(self, milan_dataset):
        results = leave_one_app_out(milan_dataset, n_trees=8, max_depth=6)
        assert {r.app for r in results} == {"xsbench", "cg", "nqueens"}
        for r in results:
            assert 0.0 <= r.transfer_accuracy <= 1.0
            assert r.n_train + r.n_test == milan_dataset.num_rows
            # The paper's caveat: transfer may lose accuracy, but an
            # in-sample model of the same family is a sane upper bound.
            assert r.transfer_accuracy <= r.in_sample_accuracy + 0.1

    def test_recommend_for_unseen(self, milan_dataset):
        rec = recommend_for_unseen(milan_dataset, app="nqueens",
                                   arch="milan", k_donors=2)
        assert rec.app == "nqueens"
        assert len(rec.donor_apps) == 2
        assert "nqueens" not in rec.donor_apps
        assert rec.achieved_speedup > 0
        assert rec.best_speedup >= rec.achieved_speedup
        assert 0.0 <= rec.regret <= 1.0

    def test_fine_tune_regret_non_increasing(self, milan_dataset):
        curve = fine_tune(milan_dataset, app="xsbench", arch="milan",
                          budgets=(0, 8, 32, 128))
        budgets = [b for b, _ in curve]
        regrets = [r for _, r in curve]
        assert budgets == [0, 8, 32, 128]
        assert all(
            regrets[i + 1] <= regrets[i] + 1e-12
            for i in range(len(regrets) - 1)
        )
        assert regrets[-1] < 0.6  # probes close most of the gap

    def test_unknown_app_rejected(self, milan_dataset):
        with pytest.raises(DatasetError):
            recommend_for_unseen(milan_dataset, app="doom", arch="milan")


class TestTuners:
    @pytest.fixture(scope="class")
    def nqueens(self):
        return get_workload("nqueens").program("large")

    def test_random_search_improves(self, nqueens):
        res = random_search(nqueens, MILAN, EnvSpace(), budget=40, seed=0)
        assert res.speedup > 1.3
        assert res.evaluations <= 40

    def test_annealing_improves(self, nqueens):
        res = simulated_annealing(nqueens, MILAN, EnvSpace(), budget=60,
                                  seed=0)
        assert res.speedup > 1.5
        assert res.evaluations <= 60

    def test_greedy_ofat_improves(self, nqueens):
        res = greedy_ofat(nqueens, MILAN, EnvSpace(), seed=0)
        assert res.speedup > 1.5
        # One pass touches every (variable, value) at most once.
        assert res.evaluations <= 1 + sum(
            len(v.values(MILAN)) for v in EnvSpace().variables
        )

    def test_exhaustive_on_pruned_space(self, nqueens):
        from repro.core.envspace import SWEPT_VARIABLES

        small = EnvSpace(
            [v for v in SWEPT_VARIABLES
             if v.field in ("library", "blocktime")]
        )
        res = exhaustive_search(nqueens, MILAN, small)
        assert res.evaluations <= small.size(MILAN) + 1
        # Exhaustive is ground truth on its space: at least as good as
        # any other tuner restricted to it.
        rnd = random_search(nqueens, MILAN, small, budget=10, seed=1)
        assert res.best_runtime <= rnd.best_runtime + 1e-15

    def test_tuners_deterministic(self, nqueens):
        a = simulated_annealing(nqueens, MILAN, EnvSpace(), budget=30, seed=5)
        b = simulated_annealing(nqueens, MILAN, EnvSpace(), budget=30, seed=5)
        assert a == b

    def test_bad_budget(self, nqueens):
        with pytest.raises(ConfigError):
            random_search(nqueens, MILAN, EnvSpace(), budget=0)


class TestExtendedSpace:
    def test_numa_domains_included(self):
        space = EnvSpace(extended_variables())
        values = space.variable("OMP_PLACES").values(MILAN)
        assert "numa_domains" in values

    def test_extended_space_resolves_everywhere(self):
        space = EnvSpace(extended_variables())
        for config in space.ofat_grid(MILAN):
            from repro.runtime.icv import resolve_icvs

            resolve_icvs(config.with_threads(8), MILAN)

    def test_numa_domains_binding_beats_unbound_for_bandwidth(self):
        from repro.runtime.executor import execute

        su3 = get_workload("su3bench").program("default")
        unbound = execute(su3, MILAN, EnvConfig(num_threads=96))
        numa = execute(
            su3, MILAN,
            EnvConfig(num_threads=96, places="numa_domains",
                      proc_bind="spread"),
        )
        assert numa < unbound


class TestPower:
    def test_energy_positive_and_consistent(self):
        prog = get_workload("mg").program("W")
        profile = energy_profile(prog, MILAN, EnvConfig())
        assert profile.runtime_s > 0
        assert profile.energy_j > 0
        assert profile.edp == pytest.approx(
            profile.energy_j * profile.runtime_s
        )
        model = get_power_model("milan")
        floor = model.machine_power(MILAN, 0, 0)
        ceil = model.machine_power(MILAN, MILAN.n_cores, 0)
        assert floor <= profile.avg_power_w <= ceil

    def test_turnaround_trades_energy_for_time(self):
        # A serial-heavy program: spinning through the serial phase burns
        # power without helping runtime.
        from repro.runtime.program import LoopRegion, Program, SerialPhase

        prog = Program(
            "serial-heavy",
            (
                SerialPhase(work=0.05),
                LoopRegion("l", n_iters=10_000, iter_work=1e-7, trips=3),
            ),
        )
        passive = energy_profile(prog, MILAN, EnvConfig())
        active = energy_profile(prog, MILAN, EnvConfig(library="turnaround"))
        assert active.avg_power_w > passive.avg_power_w

    def test_fewer_threads_less_power(self):
        prog = get_workload("ep").program("A")
        full = energy_profile(prog, MILAN, EnvConfig())
        half = energy_profile(prog, MILAN, EnvConfig(num_threads=48))
        assert half.avg_power_w < full.avg_power_w

    def test_unknown_arch(self):
        from repro.errors import UnknownMachine

        with pytest.raises(UnknownMachine):
            get_power_model("sparc")


class TestRelease:
    def test_roundtrip(self, milan_dataset, tmp_path):
        manifest = write_release(milan_dataset, tmp_path / "release")
        assert manifest.n_samples == milan_dataset.num_rows
        assert set(manifest.applications) == {"xsbench", "cg", "nqueens"}
        assert (tmp_path / "release" / "README.md").exists()
        assert (tmp_path / "release" / "manifest.json").exists()

        loaded_manifest, loaded = load_release(tmp_path / "release")
        assert loaded_manifest == manifest
        assert loaded.num_rows == milan_dataset.num_rows
        total = np.sort(np.asarray(milan_dataset["speedup"], float))
        back = np.sort(np.asarray(loaded["speedup"], float))
        assert np.allclose(total, back)

    def test_per_pair_files(self, milan_dataset, tmp_path):
        manifest = write_release(milan_dataset, tmp_path / "r2")
        assert len(manifest.files) == 3  # one (arch, app) pair each
        for name in manifest.files:
            assert (tmp_path / "r2" / name).exists()

    def test_missing_columns_rejected(self, tmp_path):
        with pytest.raises(SchemaError):
            write_release(Table({"arch": ["x"]}), tmp_path / "bad")

    def test_corrupt_release_detected(self, milan_dataset, tmp_path):
        write_release(milan_dataset, tmp_path / "r3")
        # Remove a data file but keep the manifest.
        victim = next((tmp_path / "r3").glob("milan-*.csv"))
        victim.unlink()
        with pytest.raises(DatasetError):
            load_release(tmp_path / "r3")

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(DatasetError):
            load_release(tmp_path)
