"""Tests for deterministic shard planning and work-stealing rebalance.

The planner and the rebalance rule are *specifications*: pure functions
of their inputs, bit-stable across runs and across ``tiebreak_scope``
seeds.  These tests pin the key-prefix partitioning, the round-robin
interleave, and the steal schedules for seeded starved-shard and
slow-shard scenarios.
"""

import pytest

from repro.desim import tiebreak_scope
from repro.errors import ConfigError
from repro.resilience import (
    PARTITION_PREFIX_HEX,
    ReassignEvent,
    ShardPlanner,
    ShardReport,
    StealEvent,
    partition_for_key,
    simulate_rebalance,
)

pytestmark = pytest.mark.chaos


def _key(i: int) -> str:
    """A synthetic 64-hex cache key with a distinct prefix."""
    return f"{i:08x}" + "0" * 56


class TestPartitionForKey:
    def test_deterministic_and_in_range(self):
        for i in range(64):
            p = partition_for_key(_key(i), 8)
            assert p == partition_for_key(_key(i), 8)
            assert 0 <= p < 8

    def test_prefix_decides_the_partition(self):
        assert partition_for_key(_key(5), 8) == 5 % 8
        assert partition_for_key(_key(0x1234), 16) == 0x1234 % 16

    def test_only_the_prefix_matters(self):
        a = _key(7)
        b = a[:PARTITION_PREFIX_HEX] + "f" * 56
        assert partition_for_key(a, 8) == partition_for_key(b, 8)

    def test_non_hex_prefix_rejected(self):
        with pytest.raises(ConfigError):
            partition_for_key("not-a-hex-key", 8)

    def test_partition_count_validated(self):
        with pytest.raises(ConfigError):
            partition_for_key(_key(1), 0)


class TestShardPlanner:
    def test_shard_count_validated(self):
        with pytest.raises(ConfigError):
            ShardPlanner(0)

    def test_index_assignment_round_robins(self):
        planner = ShardPlanner(3)
        assert planner.assign(list("abcdef")) == (0, 1, 2, 0, 1, 2)

    def test_key_assignment_follows_partitioning(self):
        planner = ShardPlanner(4)
        keys = [_key(i) for i in (0, 5, 9, 14)]
        assert planner.assign(list("abcd"), keys) == tuple(
            partition_for_key(k, 4) for k in keys
        )

    def test_key_count_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            ShardPlanner(2).assign(["a", "b"], keys=[_key(0)])

    def test_interleave_is_identity_at_one_shard(self):
        tasks = list(range(10))
        assert ShardPlanner(1).interleave(tasks) == tasks

    def test_interleave_is_a_permutation(self):
        # Index-homed tasks interleave back to submission order (the
        # assignment and the interleave round-robin in lockstep) ...
        tasks = list(range(11))
        assert ShardPlanner(3).interleave(tasks) == tasks
        # ... but skewed homes produce a genuine permutation.
        homes = [0, 0, 0, 0, 1, 1, 2, 2, 2, 2, 2]
        ordered = ShardPlanner(3).interleave(tasks, shards=homes)
        assert sorted(ordered) == tasks
        assert ordered != tasks

    def test_interleave_round_robins_across_lanes(self):
        # Lanes by index: shard0=[0,2,4], shard1=[1,3,5] -> one task per
        # shard per pass, each lane keeping its submission order.
        assert ShardPlanner(2).interleave(list(range(6))) == [
            0, 1, 2, 3, 4, 5
        ]
        # Explicit skewed homes: shard1 exhausts first, shard0 drains.
        assert ShardPlanner(2).interleave(
            list("abcd"), shards=[0, 0, 0, 1]
        ) == ["a", "d", "b", "c"]

    def test_interleave_rejects_out_of_range_shards(self):
        with pytest.raises(ConfigError):
            ShardPlanner(2).interleave(["a"], shards=[5])
        with pytest.raises(ConfigError):
            ShardPlanner(2).interleave(["a", "b"], shards=[0])


class TestSimulateRebalance:
    def test_every_task_completes_exactly_once(self):
        queues = [[0, 1, 2, 3], [4, 5], [6]]
        completions, _steals, _makespan = simulate_rebalance(queues)
        assert sorted(t for _s, t in completions) == list(range(7))

    def test_no_steals_on_balanced_queues(self):
        _done, steals, makespan = simulate_rebalance([[0, 1], [2, 3]])
        assert steals == []
        assert makespan == pytest.approx(2.0)

    def test_starved_shard_steals_from_the_tail(self):
        # Shard 1 starts empty: it must steal shard 0's *tail* so the
        # victim keeps its partition-local head.
        completions, steals, makespan = simulate_rebalance([[0, 1, 2, 3],
                                                           []])
        assert steals[0] == StealEvent(thief=1, victim=0, task_index=3)
        assert {t for s, t in completions if s == 1} <= {2, 3}
        assert makespan == pytest.approx(2.0)  # perfectly rebalanced

    def test_slow_shard_loses_backlog_to_the_fast_one(self):
        # Shard 1 runs at 1/10 speed with the same backlog: shard 0
        # finishes its own work then steals most of shard 1's.
        _done, steals, makespan = simulate_rebalance(
            [[0, 1, 2], [3, 4, 5]], speeds=[1.0, 0.1]
        )
        assert all(s.thief == 0 and s.victim == 1 for s in steals)
        assert len(steals) == 2
        # Bounded by the slow shard's single in-flight task (10.0) —
        # far better than the 30.0 it would take unstolen.
        assert makespan == pytest.approx(10.0)

    def test_ties_steal_from_the_lowest_shard_id(self):
        # Shards 1 and 2 hold equal backlogs; the idle shard 0 must
        # steal from shard 1 (lowest id wins the tie).
        _done, steals, _mk = simulate_rebalance([[], [0, 1], [2, 3]])
        assert steals[0].victim == 1

    def test_costs_shape_the_schedule(self):
        # One huge task on shard 0: shard 1 clears everything else.
        completions, _steals, makespan = simulate_rebalance(
            [[0, 1, 2], []], costs=lambda i: 100.0 if i == 0 else 1.0
        )
        assert makespan == pytest.approx(100.0)
        assert {t for s, t in completions if s == 1} == {1, 2}

    def test_validation(self):
        with pytest.raises(ConfigError):
            simulate_rebalance([])
        with pytest.raises(ConfigError):
            simulate_rebalance([[0]], speeds=[1.0, 1.0])
        with pytest.raises(ConfigError):
            simulate_rebalance([[0]], speeds=[0.0])


class TestDeterminism:
    #: Seeded scenarios the steal schedule is pinned for: (queues,
    #: speeds) -> the exact steal log the arbitration rule produces.
    SCENARIOS = {
        "starved": (([[0, 1, 2, 3, 4, 5], []], None),
                    [(1, 0, 5), (1, 0, 4), (1, 0, 3)]),
        # At t=4.0 shards 0 and 1 tie; shard 0 pops first (lowest id)
        # and takes the victim's last task before the victim wakes.
        "slow-shard": (([[0, 1], [2, 3, 4, 5]], [1.0, 0.25]),
                       [(0, 1, 5), (0, 1, 4), (0, 1, 3)]),
    }

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_pinned_steal_logs(self, name):
        (queues, speeds), expected = self.SCENARIOS[name]
        _done, steals, _mk = simulate_rebalance(queues, speeds=speeds)
        assert [(s.thief, s.victim, s.task_index) for s in steals] \
            == expected

    @pytest.mark.parametrize("seed", [0, 1, 7, 1234])
    def test_steal_log_unmoved_by_tiebreak_seeds(self, seed):
        # The arbitration rule is not built on the discrete-event
        # engine, so perturbing the ambient tie-break seed must not
        # move a single steal.
        for (queues, speeds), expected in self.SCENARIOS.values():
            with tiebreak_scope(seed):
                done, steals, mk = simulate_rebalance(queues,
                                                      speeds=speeds)
            assert [(s.thief, s.victim, s.task_index) for s in steals] \
                == expected

    def test_repeated_runs_identical(self):
        queues = [[0, 3, 6], [1, 4], [2, 5, 7, 8]]
        first = simulate_rebalance(queues, speeds=[1.0, 0.5, 2.0])
        for _ in range(5):
            assert simulate_rebalance(queues,
                                      speeds=[1.0, 0.5, 2.0]) == first


class TestShardReport:
    def test_to_dict_round_trips_the_counts(self):
        report = ShardReport(
            n_shards=2,
            assignments=(0, 1, 0),
            steals=(StealEvent(1, 0, 2),),
            reassignments=(ReassignEvent(0, 1, 2),),
            node_respawns=3,
        )
        assert report.n_steals == 1
        assert report.n_reassignments == 1
        payload = report.to_dict()
        assert payload["n_shards"] == 2
        assert payload["steals"] == [
            {"thief": 1, "victim": 0, "task_index": 2}
        ]
        assert payload["reassignments"] == [
            {"shard": 0, "target": 1, "task_index": 2}
        ]
        assert payload["node_respawns"] == 3
