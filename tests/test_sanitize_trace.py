"""Trace-event validation: the construction-time contract on
``TraceEvent`` and the loud failure modes of ``ExecutionTrace.from_dict``
that keep corrupted golden fixtures from becoming comparison baselines."""

import math

import pytest

from repro.errors import SimulationError
from repro.runtime.trace import TRACE_KINDS, ExecutionTrace, TraceEvent

pytestmark = pytest.mark.sanitize


def event_payload(**overrides):
    base = {"name": "phase", "kind": "loop", "start_s": 0.0,
            "duration_s": 1.5, "trips": 2}
    base.update(overrides)
    return base


def trace_payload(**event_overrides):
    return {
        "program": "p", "arch": "milan", "config": {"OMP_NUM_THREADS": "8"},
        "events": [event_payload(**event_overrides)],
    }


class TestTraceEventContract:
    def test_kind_vocabulary_is_closed(self):
        assert set(TRACE_KINDS) == {"serial", "loop", "task"}
        for kind in TRACE_KINDS:
            TraceEvent("p", kind, 0.0, 1.0, 1)  # must not raise

    def test_unknown_kind_rejected(self):
        with pytest.raises(SimulationError, match="unknown kind 'barrier'"):
            TraceEvent("p", "barrier", 0.0, 1.0, 1)

    @pytest.mark.parametrize("bad", [-1.0, float("inf"), float("nan")])
    def test_nonfinite_or_negative_start_rejected(self, bad):
        with pytest.raises(SimulationError, match="start_s"):
            TraceEvent("p", "loop", bad, 1.0, 1)

    @pytest.mark.parametrize("bad", [-0.5, float("inf"), float("nan")])
    def test_nonfinite_or_negative_duration_rejected(self, bad):
        with pytest.raises(SimulationError, match="duration_s"):
            TraceEvent("p", "loop", 0.0, bad, 1)

    def test_zero_trips_rejected(self):
        with pytest.raises(SimulationError, match="trips must be >= 1"):
            TraceEvent("p", "loop", 0.0, 1.0, 0)

    def test_error_names_the_offending_event(self):
        with pytest.raises(SimulationError, match="'sweep-loop'"):
            TraceEvent("sweep-loop", "loop", 0.0, -1.0, 1)


class TestFromDict:
    def test_valid_payload_roundtrips(self):
        trace = ExecutionTrace.from_dict(trace_payload())
        assert trace.to_dict() == trace_payload()
        assert math.isclose(trace.total_s, 1.5)

    def test_missing_field_reports_malformed_payload(self):
        payload = trace_payload()
        del payload["events"][0]["duration_s"]
        with pytest.raises(SimulationError, match="malformed trace payload"):
            ExecutionTrace.from_dict(payload)

    def test_mistyped_field_reports_malformed_payload(self):
        with pytest.raises(SimulationError, match="malformed trace payload"):
            ExecutionTrace.from_dict(trace_payload(start_s="soon"))

    def test_negative_duration_surfaces_event_contract_message(self):
        with pytest.raises(
            SimulationError, match="duration_s must be finite and >= 0"
        ):
            ExecutionTrace.from_dict(trace_payload(duration_s=-2.0))

    def test_unknown_kind_surfaces_event_contract_message(self):
        with pytest.raises(SimulationError, match="unknown kind 'spin'"):
            ExecutionTrace.from_dict(trace_payload(kind="spin"))

    def test_non_dict_events_report_malformed_payload(self):
        payload = trace_payload()
        payload["events"] = "oops"
        with pytest.raises(SimulationError, match="malformed trace payload"):
            ExecutionTrace.from_dict(payload)
