"""Tests for metrics and model selection."""

import numpy as np
import pytest

from repro.errors import FitError, StatsError
from repro.mlkit.metrics import (
    accuracy_score,
    confusion_matrix,
    f1_score,
    log_loss,
    precision_score,
    r2_score,
    recall_score,
    roc_auc_score,
)
from repro.mlkit.model_select import KFold, train_test_split


class TestMetrics:
    def test_accuracy(self):
        assert accuracy_score(np.array([1, 0, 1]), np.array([1, 1, 1])) == pytest.approx(2 / 3)

    def test_confusion_matrix_layout(self):
        y_true = np.array([0, 0, 1, 1, 1])
        y_pred = np.array([0, 1, 1, 0, 1])
        cm = confusion_matrix(y_true, y_pred)
        assert cm.tolist() == [[1, 1], [1, 2]]

    def test_precision_recall_f1(self):
        y_true = np.array([0, 0, 1, 1, 1])
        y_pred = np.array([0, 1, 1, 0, 1])
        p, r = precision_score(y_true, y_pred), recall_score(y_true, y_pred)
        assert p == pytest.approx(2 / 3)
        assert r == pytest.approx(2 / 3)
        assert f1_score(y_true, y_pred) == pytest.approx(2 / 3)

    def test_precision_zero_when_no_positive_predictions(self):
        assert precision_score(np.array([1, 1]), np.array([0, 0])) == 0.0
        assert f1_score(np.array([1, 1]), np.array([0, 0])) == 0.0

    def test_nonbinary_confusion_rejected(self):
        with pytest.raises(StatsError):
            confusion_matrix(np.array([0, 2]), np.array([0, 1]))

    def test_log_loss_perfect_and_clipped(self):
        y = np.array([1.0, 0.0])
        assert log_loss(y, np.array([1.0, 0.0])) < 1e-10
        assert np.isfinite(log_loss(y, np.array([0.0, 1.0])))

    def test_log_loss_accepts_proba_matrix(self):
        y = np.array([1.0, 0.0])
        proba = np.array([[0.2, 0.8], [0.7, 0.3]])
        expected = -np.mean([np.log(0.8), np.log(0.7)])
        assert log_loss(y, proba) == pytest.approx(expected)

    def test_r2_perfect_and_mean_predictor(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, y) == 1.0
        assert r2_score(y, np.full(3, 2.0)) == pytest.approx(0.0)

    def test_r2_constant_target(self):
        y = np.full(4, 5.0)
        assert r2_score(y, y) == 1.0
        assert r2_score(y, y + 1) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(StatsError):
            accuracy_score(np.array([]), np.array([]))


class TestRocAuc:
    def test_perfect_and_inverted(self):
        y = np.array([0, 0, 1, 1], float)
        assert roc_auc_score(y, np.array([0.1, 0.2, 0.8, 0.9])) == 1.0
        assert roc_auc_score(y, np.array([0.9, 0.8, 0.2, 0.1])) == 0.0

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, size=4000).astype(float)
        scores = rng.random(4000)
        assert abs(roc_auc_score(y, scores) - 0.5) < 0.03

    def test_ties_handled_exactly(self):
        # All scores equal: AUC must be exactly 0.5 by midrank convention.
        y = np.array([0, 1, 0, 1], float)
        assert roc_auc_score(y, np.ones(4)) == pytest.approx(0.5)

    def test_accepts_proba_matrix(self):
        y = np.array([0, 1], float)
        proba = np.array([[0.9, 0.1], [0.2, 0.8]])
        assert roc_auc_score(y, proba) == 1.0

    def test_matches_pairwise_definition(self):
        rng = np.random.default_rng(1)
        y = rng.integers(0, 2, size=60).astype(float)
        s = rng.random(60)
        pos, neg = s[y == 1], s[y == 0]
        wins = sum(
            (1.0 if p > n else 0.5 if p == n else 0.0)
            for p in pos for n in neg
        )
        assert roc_auc_score(y, s) == pytest.approx(wins / (len(pos) * len(neg)))

    def test_single_class_rejected(self):
        with pytest.raises(StatsError):
            roc_auc_score(np.ones(4), np.random.default_rng(0).random(4))


class TestTrainTestSplit:
    def test_partition(self):
        X = np.arange(40).reshape(20, 2)
        y = np.arange(20)
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, test_fraction=0.25, seed=1)
        assert X_tr.shape[0] == 15 and X_te.shape[0] == 5
        assert sorted(np.concatenate([y_tr, y_te]).tolist()) == list(range(20))

    def test_deterministic(self):
        X, y = np.arange(10).reshape(10, 1), np.arange(10)
        a = train_test_split(X, y, seed=7)
        b = train_test_split(X, y, seed=7)
        assert np.array_equal(a[1], b[1])

    def test_different_seed_different_split(self):
        X, y = np.arange(30).reshape(30, 1), np.arange(30)
        a = train_test_split(X, y, seed=1)
        b = train_test_split(X, y, seed=2)
        assert not np.array_equal(a[1], b[1])

    def test_always_nonempty_sides(self):
        X, y = np.arange(2).reshape(2, 1), np.arange(2)
        X_tr, X_te, _, _ = train_test_split(X, y, test_fraction=0.01)
        assert X_tr.shape[0] == 1 and X_te.shape[0] == 1

    def test_bad_fraction(self):
        with pytest.raises(FitError):
            train_test_split(np.ones((5, 1)), np.ones(5), test_fraction=1.5)

    def test_mismatched_lengths(self):
        with pytest.raises(FitError):
            train_test_split(np.ones((5, 1)), np.ones(4))


class TestKFold:
    def test_folds_cover_everything_once(self):
        kf = KFold(n_splits=4, seed=0)
        seen = []
        for train_idx, test_idx in kf.split(21):
            assert set(train_idx) & set(test_idx) == set()
            seen.extend(test_idx.tolist())
        assert sorted(seen) == list(range(21))

    def test_too_few_samples(self):
        with pytest.raises(FitError):
            list(KFold(n_splits=5).split(3))

    def test_min_splits(self):
        with pytest.raises(FitError):
            KFold(n_splits=1)

    def test_cross_val_accuracy(self):
        from repro.mlkit.logreg import LogisticRegression

        rng = np.random.default_rng(0)
        X = rng.normal(size=(120, 2))
        y = (X[:, 0] > 0).astype(float)
        acc = KFold(n_splits=4, seed=0).cross_val_accuracy(
            lambda: LogisticRegression(l2=0.1), X, y
        )
        assert acc > 0.9
