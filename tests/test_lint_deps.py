"""Dependency lint (plane 5): the model-evaluation cone, guard-aware
attribute reads, and fault-injection proofs that each KEY pass fires on
a crafted drift — plus the real-tree gate (zero findings on src/repro)
and the runtime property the plane exists to protect: equal execution
signatures produce bit-identical modeled runtimes."""

import random
import textwrap

import pytest

from repro.arch.machines import get_machine
from repro.lint import Severity, unwaived
from repro.lint.deps import deps_lint
from repro.lint.deps.cone import compute_cone, default_roots, tracked_classes
from repro.lint.deps.passes import run_deps_passes
from repro.lint.flow import build_callgraph
from repro.lint.flow.summaries import direct_attribute_reads
from repro.lint.selflint import DEFAULT_SRC_ROOT
from repro.runtime.executor import execute
from repro.runtime.icv import EnvConfig, resolve_icvs
from repro.workloads import get_workload

pytestmark = pytest.mark.lint


def make_tree(tmp_path, files):
    """Materialize ``{rel_path: source}`` under a package root named
    ``repro`` so qualnames look like the shipped tree's."""
    root = tmp_path / "repro"
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


def by_rule(findings, rule):
    return [f for f in findings if f.rule == rule]


# ----------------------------------------------------------------------
# A miniature, *sound* pipeline: signature, dead-field table, cache key
# and model all agree.  Every fault-injection test below is this tree
# with exactly one drift introduced.
# ----------------------------------------------------------------------
_RAW_TREE = {
    "arch/topology.py": """
        from dataclasses import dataclass


        @dataclass(frozen=True)
        class MachineTopology:
            name: str
            n_cores: int
            clock_ghz: float
    """,
    "runtime/program.py": """
        from dataclasses import dataclass


        @dataclass(frozen=True)
        class Program:
            name: str
            work: float


        def get_program(app: str, input_size: str) -> Program:
            return Program(name=app + "." + input_size,
                           work=float(len(input_size)) + 1.0)
    """,
    "runtime/icv.py": """
        from dataclasses import dataclass
        from typing import ClassVar

        from repro.arch.topology import MachineTopology


        @dataclass(frozen=True)
        class EnvConfig:
            threads: int = 1
            library: str = "unset"
            blocktime: str = "unset"
            places: str = "unset"
            bind: str = "unset"

            def key(self):
                return (self.threads, self.library, self.blocktime,
                        self.places, self.bind)


        @dataclass(frozen=True)
        class ResolvedICVs:
            nthreads: int
            places: str
            places_explicit: bool
            bind: str
            library: str
            blocktime_ms: int

            SIGNATURE_COMPONENTS: ClassVar[tuple] = (
                "nthreads", "places", "bind", "wait_policy", "blocktime_ms")
            SIGNATURE_DEAD_FIELDS: ClassVar[dict] = {
                "library": (None, "acts only through the derived wait policy"),
                "places_explicit": (None, "only shifts the bind default"),
                "blocktime_ms": ("wait_policy", "read only under passive waiting"),
                "places": ("bind", "consulted only when threads are bound"),
            }

            @property
            def wait_policy(self):
                if self.library == "turnaround" and self.blocktime_ms > 0:
                    return "active"
                return "passive"

            def execution_signature(self):
                bind = self.bind
                places = self.places if bind != "false" else "unset"
                if places == "unset" and bind == "spread":
                    places = "cores"
                wait = self.wait_policy
                blocktime = self.blocktime_ms if wait == "passive" else 0
                return (self.nthreads, places, bind, wait, blocktime)


        def resolve_icvs(config: EnvConfig,
                         machine: MachineTopology) -> ResolvedICVs:
            bind = config.bind if config.bind != "unset" else "false"
            nthreads = config.threads if config.threads else machine.n_cores
            blocktime_ms = (200 if config.blocktime == "unset"
                            else int(config.blocktime))
            return ResolvedICVs(
                nthreads=nthreads,
                places=config.places,
                places_explicit=config.places != "unset",
                bind=bind,
                library=config.library,
                blocktime_ms=blocktime_ms,
            )
    """,
    "runtime/model.py": """
        from repro.arch.topology import MachineTopology
        from repro.runtime.icv import ResolvedICVs
        from repro.runtime.program import Program


        def workers_asleep(icvs: ResolvedICVs) -> bool:
            if icvs.wait_policy == "active":
                return False
            return icvs.blocktime_ms == 0


        def placement_overhead(icvs: ResolvedICVs,
                               machine: MachineTopology) -> float:
            bind = icvs.bind
            if bind == "false":
                return 0.0
            if icvs.places == "sockets":
                return machine.n_cores * 1e-6
            return machine.n_cores * 5e-7


        def phase_seconds(program: Program, icvs: ResolvedICVs,
                          machine: MachineTopology) -> float:
            base = program.work / (icvs.nthreads * machine.clock_ghz)
            if workers_asleep(icvs):
                base = base * 1.5
            return base + placement_overhead(icvs, machine)
    """,
    "core/sweep.py": """
        from dataclasses import dataclass

        from repro.arch.topology import MachineTopology
        from repro.runtime.icv import EnvConfig, resolve_icvs
        from repro.runtime.model import phase_seconds
        from repro.runtime.program import get_program


        @dataclass(frozen=True)
        class SweepPlan:
            arch: str
            scale: str
            repetitions: int
            seed: int
            fidelity: str
            prune: bool
            workload_names: tuple
            inputs_limit: int


        @dataclass(frozen=True)
        class BatchSpec:
            app: str
            suite: str
            input_size: str
            nthreads: int


        def _batch_noise(seed: int, config: EnvConfig) -> float:
            return float(sum(hash(v) for v in (seed,) + config.key()) % 97)


        def _execute_batch(plan: SweepPlan, machine: MachineTopology,
                           configs, batch: BatchSpec):
            program = get_program(batch.app, batch.input_size)
            out = []
            for config in configs:
                icvs = resolve_icvs(config, machine)
                group = icvs.execution_signature() if plan.prune else None
                runtime = phase_seconds(program, icvs, machine)
                for rep in range(plan.repetitions):
                    noise = _batch_noise(plan.seed + rep, config)
                    out.append((plan.arch, plan.fidelity, batch.suite,
                                batch.nthreads, group, runtime + noise))
            return out
    """,
    "core/cache.py": """
        import dataclasses
        import hashlib

        CACHE_FORMAT_VERSION = 1

        CACHE_KEY_FIELDS = (
            "format_version",
            "plan.arch",
            "plan.scale",
            "plan.repetitions",
            "plan.seed",
            "plan.fidelity",
            "grid_fingerprint",
            "machine_fingerprint",
            "batch.app",
            "batch.suite",
            "batch.input_size",
            "batch.nthreads",
        )

        CACHE_KEY_EXCLUDED = {
            "plan.workload_names": "selection only: changes which batches exist",
            "plan.inputs_limit": "selection only: changes which batches exist",
            "plan.prune": "pruning fans identical results out",
        }


        def grid_fingerprint(grid) -> str:
            h = hashlib.sha256()
            for config in grid:
                h.update(repr(config.key()).encode("utf-8"))
            return h.hexdigest()


        def machine_fingerprint(machine) -> str:
            h = hashlib.sha256()
            for f in dataclasses.fields(machine):
                h.update(repr((f.name, getattr(machine, f.name))).encode("utf-8"))
            return h.hexdigest()


        def key_material(plan, grid_fp, machine_fp, batch):
            identity = (
                CACHE_FORMAT_VERSION,
                plan.arch,
                plan.scale,
                plan.repetitions,
                plan.seed,
                plan.fidelity,
                grid_fp,
                machine_fp,
                batch.app,
                batch.suite,
                batch.input_size,
                batch.nthreads,
            )
            return dict(zip(CACHE_KEY_FIELDS, identity, strict=True))


        def batch_key(plan, grid_fp, machine_fp, batch) -> str:
            identity = tuple(
                key_material(plan, grid_fp, machine_fp, batch).values())
            return hashlib.sha256(repr(identity).encode("utf-8")).hexdigest()
    """,
}

BASE_TREE = {rel: textwrap.dedent(src) for rel, src in _RAW_TREE.items()}

ICV_QUAL = "repro.runtime.icv.ResolvedICVs"


def mutate(tree, rel, old, new):
    """A copy of ``tree`` with one source edit, asserting the edit took."""
    src = tree[rel]
    assert old in src, f"mutation anchor not found in {rel}: {old!r}"
    out = dict(tree)
    out[rel] = src.replace(old, new)
    return out


def deps_findings(tmp_path, tree):
    return run_deps_passes(build_callgraph(make_tree(tmp_path, tree)))


# ----------------------------------------------------------------------
# Typed inference (the call-graph layer the cone is built on)
# ----------------------------------------------------------------------
class TestTypedInference:
    def test_constructor_attr_types_resolve_three_part_calls(self, tmp_path):
        root = make_tree(tmp_path, {
            "eng.py": """
                class Engine:
                    def run(self):
                        return 1

                class Driver:
                    def __init__(self):
                        self.engine = Engine()
                    def go(self):
                        return self.engine.run()
            """,
        })
        graph = build_callgraph(root)
        record = graph.classes["repro.eng.Driver"]
        assert record.attr_types["engine"] == "repro.eng.Engine"
        assert "repro.eng.Engine.run" in [
            s.callee for s in graph.calls["repro.eng.Driver.go"]
        ]

    def test_return_annotations_type_call_results(self, tmp_path):
        root = make_tree(tmp_path, {
            "w.py": """
                class Widget:
                    def spin(self):
                        return 2

                def make() -> Widget:
                    return Widget()

                def use():
                    w = make()
                    return w.spin()
            """,
        })
        graph = build_callgraph(root)
        assert "repro.w.Widget.spin" in [
            s.callee for s in graph.calls["repro.w.use"]
        ]


# ----------------------------------------------------------------------
# Guard-aware attribute reads
# ----------------------------------------------------------------------
class TestAttrReads:
    def test_early_exit_guard_covers_the_rest_of_the_body(self, tmp_path):
        graph = build_callgraph(make_tree(tmp_path, BASE_TREE))
        reads = direct_attribute_reads(
            graph, "repro.runtime.model.workers_asleep", frozenset({ICV_QUAL})
        )
        by = {r.attr: r for r in reads}
        assert by["wait_policy"].guards == ()
        assert (ICV_QUAL, "wait_policy") in by["blocktime_ms"].guards

    def test_local_alias_guards_are_tracked(self, tmp_path):
        graph = build_callgraph(make_tree(tmp_path, BASE_TREE))
        reads = direct_attribute_reads(
            graph, "repro.runtime.model.placement_overhead",
            frozenset({ICV_QUAL}),
        )
        by = {r.attr: r for r in reads}
        assert by["bind"].guards == ()
        assert (ICV_QUAL, "bind") in by["places"].guards


# ----------------------------------------------------------------------
# The evaluation cone
# ----------------------------------------------------------------------
class TestEvalCone:
    def test_cone_reaches_the_model_through_typed_calls(self, tmp_path):
        graph = build_callgraph(make_tree(tmp_path, BASE_TREE))
        tracked = tracked_classes(graph)
        cone = compute_cone(graph, default_roots(graph),
                            frozenset(tracked.values()))
        assert cone.missing_roots == ()
        for member in (
            "repro.core.sweep._execute_batch",
            "repro.core.sweep._batch_noise",
            "repro.runtime.model.phase_seconds",
            "repro.runtime.model.workers_asleep",
            "repro.runtime.model.placement_overhead",
            "repro.runtime.icv.resolve_icvs",
            "repro.runtime.icv.EnvConfig.key",
        ):
            assert member in cone.members
        icv_reads = cone.read_attrs(tracked["ResolvedICVs"])
        assert {"nthreads", "bind", "places", "wait_policy",
                "blocktime_ms"} <= icv_reads

    def test_own_class_reads_are_exempt(self, tmp_path):
        # execution_signature() and the wait_policy property read their
        # own fields; those are the key mechanism, not model inputs.
        graph = build_callgraph(make_tree(tmp_path, BASE_TREE))
        tracked = tracked_classes(graph)
        cone = compute_cone(graph, default_roots(graph),
                            frozenset(tracked.values()))
        assert "library" not in cone.read_attrs(tracked["ResolvedICVs"])


# ----------------------------------------------------------------------
# The sound base tree is clean (guard modeling, not waiving)
# ----------------------------------------------------------------------
class TestBaseTree:
    def test_sound_tree_produces_no_findings(self, tmp_path):
        findings = deps_findings(tmp_path, BASE_TREE)
        assert findings == [], [
            (f.rule, f.subject, f.message) for f in findings
        ]


# ----------------------------------------------------------------------
# KEY001 — signature completeness
# ----------------------------------------------------------------------
class TestKey001:
    def test_dropped_signature_field_is_an_error(self, tmp_path):
        tree = mutate(
            BASE_TREE, "runtime/icv.py",
            "return (self.nthreads, places, bind, wait, blocktime)",
            "return (0, places, bind, wait, blocktime)",
        )
        findings = deps_findings(tmp_path, tree)
        (f,) = findings
        assert f.rule == "KEY001"
        assert f.severity is Severity.ERROR
        assert f.subject == "ResolvedICVs.nthreads"
        assert "runtime/model.py" in f.message  # the read witness

    def test_missing_root_is_a_loud_warning(self, tmp_path):
        tree = mutate(BASE_TREE, "core/sweep.py",
                      "def _execute_batch(", "def _run_batch(")
        findings = deps_findings(tmp_path, tree)
        stale = [f for f in by_rule(findings, "KEY001")
                 if f.severity is Severity.WARNING]
        assert any("root" in f.message for f in stale)


# ----------------------------------------------------------------------
# KEY002 — signature aliveness
# ----------------------------------------------------------------------
class TestKey002:
    def test_dead_tuple_slot_is_a_warning_naming_the_slot(self, tmp_path):
        tree = mutate(
            BASE_TREE, "runtime/icv.py",
            "    blocktime_ms: int\n",
            "    blocktime_ms: int\n    io_depth: int\n",
        )
        tree = mutate(
            tree, "runtime/icv.py",
            '"wait_policy", "blocktime_ms")',
            '"wait_policy", "blocktime_ms", "io_depth")',
        )
        tree = mutate(
            tree, "runtime/icv.py",
            "return (self.nthreads, places, bind, wait, blocktime)",
            "return (self.nthreads, places, bind, wait, blocktime,"
            " self.io_depth)",
        )
        findings = deps_findings(tmp_path, tree)
        (f,) = findings
        assert f.rule == "KEY002"
        assert f.severity is Severity.WARNING
        assert f.subject == "ResolvedICVs.io_depth"
        assert "slot 5" in f.message

    def test_arity_drift_is_an_error(self, tmp_path):
        tree = mutate(
            BASE_TREE, "runtime/icv.py",
            "return (self.nthreads, places, bind, wait, blocktime)",
            "return (self.nthreads, places, bind, wait, blocktime, 0)",
        )
        findings = deps_findings(tmp_path, tree)
        (f,) = findings
        assert f.rule == "KEY002"
        assert f.severity is Severity.ERROR
        assert "5" in f.message and "6" in f.message


# ----------------------------------------------------------------------
# KEY003 — cache-key completeness
# ----------------------------------------------------------------------
class TestKey003:
    def test_dropped_identity_slot_is_an_error(self, tmp_path):
        tree = mutate(BASE_TREE, "core/cache.py",
                      "\n        plan.fidelity,", "")
        findings = deps_findings(tmp_path, tree)
        assert {f.rule for f in findings} == {"KEY003"}
        assert all(f.severity is Severity.ERROR for f in findings)
        subjects = {f.subject for f in findings}
        assert "cache.CACHE_KEY_FIELDS" in subjects  # declaration drift
        assert "cache.plan.fidelity" in subjects     # the uncovered read

    def test_machine_fingerprint_must_sweep_declared_fields(self, tmp_path):
        tree = mutate(BASE_TREE, "core/cache.py",
                      "for f in dataclasses.fields(machine):",
                      "for f in ():")
        findings = deps_findings(tmp_path, tree)
        (f,) = findings
        assert f.rule == "KEY003"
        assert f.subject == "cache.machine_fingerprint"

    def test_grid_fingerprint_must_digest_config_keys(self, tmp_path):
        tree = mutate(BASE_TREE, "core/cache.py",
                      "repr(config.key())", "repr(config)")
        findings = deps_findings(tmp_path, tree)
        (f,) = findings
        assert f.rule == "KEY003"
        assert f.subject == "cache.grid_fingerprint"

    def test_env_field_missing_from_key_is_an_error(self, tmp_path):
        # resolve_icvs still consumes config.bind, but EnvConfig.key()
        # no longer folds it in: grids differing in bind would collide.
        tree = mutate(BASE_TREE, "runtime/icv.py",
                      "self.bind)", '"unset")')
        findings = deps_findings(tmp_path, tree)
        (f,) = findings
        assert f.rule == "KEY003"
        assert f.subject == "EnvConfig.bind"


# ----------------------------------------------------------------------
# KEY004 — dead-field normalization drift
# ----------------------------------------------------------------------
class TestKey004:
    def test_guarded_read_is_allowed(self, tmp_path):
        # The base tree reads blocktime_ms under the wait_policy guard
        # and places under the bind guard — and is clean (TestBaseTree).
        # This test pins that the *guards* are what make it clean.
        findings = deps_findings(tmp_path, BASE_TREE)
        assert by_rule(findings, "KEY004") == []

    def test_unguarded_read_of_guarded_dead_field_is_an_error(self, tmp_path):
        tree = mutate(BASE_TREE, "runtime/model.py",
                      'if icvs.wait_policy == "active":', "if False:")
        findings = deps_findings(tmp_path, tree)
        (f,) = by_rule(findings, "KEY004")
        assert f.severity is Severity.ERROR
        assert f.subject == "ResolvedICVs.blocktime_ms"
        assert "outside that guard" in f.message

    def test_read_moved_outside_its_guard_is_an_error(self, tmp_path):
        tree = mutate(
            BASE_TREE, "runtime/model.py",
            '    bind = icvs.bind\n'
            '    if bind == "false":\n'
            '        return 0.0\n'
            '    if icvs.places == "sockets":\n',
            '    crowded = icvs.places == "sockets"\n'
            '    bind = icvs.bind\n'
            '    if bind == "false":\n'
            '        return 0.0\n'
            '    if crowded:\n',
        )
        findings = deps_findings(tmp_path, tree)
        (f,) = by_rule(findings, "KEY004")
        assert f.severity is Severity.ERROR
        assert f.subject == "ResolvedICVs.places"

    def test_any_read_of_unconditionally_dead_field_is_an_error(
        self, tmp_path
    ):
        tree = mutate(
            BASE_TREE, "runtime/model.py",
            "base = program.work / (icvs.nthreads * machine.clock_ghz)",
            "base = program.work / (icvs.nthreads * machine.clock_ghz)\n"
            '    if icvs.library == "serial":\n'
            "        base = base * 2.0",
        )
        findings = deps_findings(tmp_path, tree)
        (f,) = by_rule(findings, "KEY004")
        assert f.severity is Severity.ERROR
        assert f.subject == "ResolvedICVs.library"
        assert "declared dead" in f.message

    def test_missing_dead_field_table_is_a_loud_warning(self, tmp_path):
        tree = mutate(BASE_TREE, "runtime/icv.py",
                      "SIGNATURE_DEAD_FIELDS: ClassVar[dict] = {",
                      "_NOT_THE_TABLE: ClassVar[dict] = {")
        findings = deps_findings(tmp_path, tree)
        stale = by_rule(findings, "KEY004")
        assert [f.severity for f in stale] == [Severity.WARNING]
        assert "SIGNATURE_DEAD_FIELDS" in stale[0].message


# ----------------------------------------------------------------------
# Waivers: the KEY plane owns KEY entries, and only those
# ----------------------------------------------------------------------
class TestDepsWaivers:
    def test_key_waiver_covers_a_finding(self, tmp_path):
        tree = mutate(
            BASE_TREE, "runtime/icv.py",
            "return (self.nthreads, places, bind, wait, blocktime)",
            "return (0, places, bind, wait, blocktime)",
        )
        root = make_tree(tmp_path, tree)
        waivers = tmp_path / "waivers.toml"
        waivers.write_text(textwrap.dedent("""
            [[waiver]]
            rule = "KEY001"
            path = "runtime/model.py"
            reason = "intentional in this synthetic tree"
        """), encoding="utf-8")
        findings = deps_lint(src_root=root, waivers_path=waivers)
        assert unwaived(findings) == []
        assert [f.waived for f in by_rule(findings, "KEY001")] == [True]

    def test_stale_key_waiver_reports_sim000_with_line(self, tmp_path):
        root = make_tree(tmp_path, BASE_TREE)
        waivers = tmp_path / "waivers.toml"
        waivers.write_text(
            "# header comment\n"
            "[[waiver]]\n"
            'rule = "KEY002"\n'
            'path = "nowhere.py"\n'
            'reason = "stale"\n',
            encoding="utf-8",
        )
        findings = deps_lint(src_root=root, waivers_path=waivers)
        (f,) = by_rule(findings, "SIM000")
        assert f.line == 2  # the [[waiver]] header line, clickable

    def test_sim_and_flow_waivers_are_not_deps_plane_rot(self, tmp_path):
        root = make_tree(tmp_path, BASE_TREE)
        waivers = tmp_path / "waivers.toml"
        waivers.write_text(
            '[[waiver]]\nrule = "SIM004"\npath = "a.py"\nreason = "r"\n'
            "\n"
            '[[waiver]]\nrule = "FLOW001"\npath = "b.py"\nreason = "r"\n',
            encoding="utf-8",
        )
        findings = deps_lint(src_root=root, waivers_path=waivers)
        assert findings == []

    def test_key_waivers_are_not_self_plane_rot(self, tmp_path):
        from repro.lint import self_lint

        waivers = tmp_path / "waivers.toml"
        waivers.write_text(
            '[[waiver]]\nrule = "KEY001"\npath = "a.py"\nreason = "r"\n',
            encoding="utf-8",
        )
        findings = self_lint(waivers_path=waivers)
        assert by_rule(findings, "SIM000") == []


# ----------------------------------------------------------------------
# The shipped tree
# ----------------------------------------------------------------------
class TestRealTree:
    def test_src_repro_is_clean_with_no_waivers_needed(self):
        findings = deps_lint()
        assert findings == [], (
            "dependency-plane violations in src/repro:\n"
            + "\n".join(f"  {f.rule} {f.location()}: {f.message}"
                        for f in findings)
        )

    def test_real_cone_sees_the_model_reads(self):
        # Guard against a vacuous pass: the cone must actually reach the
        # runtime model and observe its ICV reads.
        graph = build_callgraph(DEFAULT_SRC_ROOT)
        tracked = tracked_classes(graph)
        cone = compute_cone(graph, default_roots(graph),
                            frozenset(tracked.values()))
        assert cone.missing_roots == ()
        assert len(cone.members) > 20
        icv_reads = cone.read_attrs(tracked["ResolvedICVs"])
        assert {"nthreads", "schedule", "bind", "wait_policy",
                "reduction"} <= icv_reads
        assert cone.read_attrs(tracked["BatchSpec"]) >= {"app", "input_size"}

    def test_deps_lint_is_deterministic(self):
        assert deps_lint() == deps_lint()


# ----------------------------------------------------------------------
# The property the plane protects: equal signatures, equal runtimes
# ----------------------------------------------------------------------
def _random_config(rng):
    return EnvConfig(
        num_threads=rng.choice([4, 8]),
        places=rng.choice(["unset", "cores"]),
        proc_bind=rng.choice(["false", "spread"]),
        schedule=rng.choice(["unset", "static"]),
        library=rng.choice(["throughput", "turnaround"]),
        blocktime=rng.choice(["0", "200", "infinite"]),
    )


class TestSignatureProperty:
    def test_equal_signatures_share_bit_identical_runtimes(self):
        rng = random.Random(20260808)
        program = get_workload("cg").program("A")
        merged_groups = 0
        for machine_name in ("skylake", "milan"):
            machine = get_machine(machine_name)
            groups = {}
            for _ in range(60):
                config = _random_config(rng)
                sig = resolve_icvs(config, machine).execution_signature()
                runtime = execute(program, machine, config)
                groups.setdefault(sig, set()).add(runtime)
            assert all(len(rts) == 1 for rts in groups.values()), (
                "configurations sharing a signature produced divergent "
                "runtimes"
            )
            merged_groups += sum(1 for _ in groups)
            assert len(groups) < 60  # collisions actually happened
        assert merged_groups > 0

    @pytest.mark.parametrize("a,b", [
        # blocktime varied while waiting stays ACTIVE
        (EnvConfig(num_threads=8, library="turnaround", blocktime="0"),
         EnvConfig(num_threads=8, library="turnaround", blocktime="200")),
        # library varied while the derived wait policy is unchanged
        (EnvConfig(num_threads=8, library="turnaround",
                   blocktime="infinite"),
         EnvConfig(num_threads=8, library="throughput",
                   blocktime="infinite")),
        # places varied while threads are unbound
        (EnvConfig(num_threads=8, proc_bind="false", places="cores"),
         EnvConfig(num_threads=8, proc_bind="false", places="sockets")),
        # places unset vs. the canonical default under a bound team
        (EnvConfig(num_threads=8, proc_bind="spread"),
         EnvConfig(num_threads=8, proc_bind="spread", places="cores")),
    ])
    def test_dead_field_variation_under_guard_never_changes_runtime(
        self, a, b
    ):
        program = get_workload("cg").program("A")
        for machine_name in ("skylake", "milan"):
            machine = get_machine(machine_name)
            sig_a = resolve_icvs(a, machine).execution_signature()
            sig_b = resolve_icvs(b, machine).execution_signature()
            assert sig_a == sig_b
            assert execute(program, machine, a) == execute(
                program, machine, b
            )
