"""Static concurrency rules (RACE001-003, DLK001-004): each rule has a
triggering and a non-triggering configuration, pinning both the hazard
detection and its guard conditions."""

import pytest

from repro.arch.machines import get_machine
from repro.lint.findings import Severity
from repro.runtime.icv import EnvConfig
from repro.runtime.program import LoopRegion, Program, SerialPhase, TaskRegion
from repro.sanitize.rules import SANITIZE_RULES, sanitize_config

pytestmark = pytest.mark.sanitize

MILAN = get_machine("milan")


def rules_fired(config, program=None, machine=MILAN):
    return {f.rule for f in sanitize_config(config, machine, program)}


def reduction_program(fixed_schedule=None):
    return Program(
        name="red",
        phases=(
            LoopRegion("accum", n_iters=400, iter_work=1.0, n_reductions=1,
                       fixed_schedule=fixed_schedule),
        ),
    )


def task_program(depth=4, branching=3):
    return Program(
        name="tasks",
        phases=(
            TaskRegion("tree", depth=depth, branching=branching,
                       leaf_work=50.0, node_work=10.0),
        ),
    )


class TestRegistry:
    def test_all_seven_rules_registered(self):
        assert len(SANITIZE_RULES) == 7


class TestRace001ArrivalOrderCombine:
    def test_triggers_on_critical_reduction(self):
        # nthreads <= 4 resolves the reduction heuristic to critical.
        found = sanitize_config(
            EnvConfig(num_threads=4), MILAN, reduction_program()
        )
        hits = [f for f in found if f.rule == "RACE001"]
        assert hits and hits[0].severity is Severity.WARNING
        assert "arrival order" in hits[0].message
        assert "tree" in hits[0].fixit

    def test_silent_with_tree_combine(self):
        cfg = EnvConfig(num_threads=4, force_reduction="tree")
        assert "RACE001" not in rules_fired(cfg, reduction_program())

    def test_silent_without_reductions(self):
        prog = Program("plain", (LoopRegion("l", n_iters=400, iter_work=1.0),))
        assert "RACE001" not in rules_fired(EnvConfig(num_threads=4), prog)


class TestRace002TimingDependentPartials:
    def test_triggers_on_dynamic_reduction(self):
        cfg = EnvConfig(num_threads=16, schedule="dynamic")
        assert "RACE002" in rules_fired(cfg, reduction_program())

    def test_silent_on_static_schedule(self):
        cfg = EnvConfig(num_threads=16, schedule="static")
        assert "RACE002" not in rules_fired(cfg, reduction_program())

    def test_silent_when_loop_pins_its_schedule(self):
        cfg = EnvConfig(num_threads=16, schedule="dynamic")
        prog = reduction_program(fixed_schedule="static")
        assert "RACE002" not in rules_fired(cfg, prog)


class TestRace003TaskPlacement:
    def test_triggers_info_on_task_regions(self):
        found = sanitize_config(
            EnvConfig(num_threads=16), MILAN, task_program()
        )
        hits = [f for f in found if f.rule == "RACE003"]
        assert hits and hits[0].severity is Severity.INFO

    def test_silent_single_threaded(self):
        assert "RACE003" not in rules_fired(
            EnvConfig(num_threads=1), task_program()
        )


class TestDlk001OversubscribedSpin:
    def test_triggers_error_when_spinning_past_cores(self):
        cfg = EnvConfig(num_threads=MILAN.n_cores * 2, library="turnaround")
        found = sanitize_config(cfg, MILAN)
        hits = [f for f in found if f.rule == "DLK001"]
        assert hits and hits[0].severity is Severity.ERROR
        assert hits[0].icv_rule

    def test_silent_when_passive(self):
        cfg = EnvConfig(num_threads=MILAN.n_cores * 2)  # throughput default
        assert "DLK001" not in rules_fired(cfg)

    def test_silent_at_core_count(self):
        cfg = EnvConfig(num_threads=MILAN.n_cores, library="turnaround")
        assert "DLK001" not in rules_fired(cfg)


class TestDlk002TaskTreeStarvation:
    def test_triggers_when_critical_path_outlives_blocktime(self):
        # blocktime=0: passive workers sleep instantly, so any non-trivial
        # critical path qualifies.
        cfg = EnvConfig(num_threads=8, blocktime="0")
        assert "DLK002" in rules_fired(cfg, task_program())

    def test_silent_when_tasks_fit_the_team(self):
        # depth=1, branching=2 -> fewer tasks than threads.
        cfg = EnvConfig(num_threads=8, blocktime="0")
        assert "DLK002" not in rules_fired(
            cfg, task_program(depth=1, branching=2)
        )

    def test_silent_under_active_wait(self):
        cfg = EnvConfig(num_threads=8, library="turnaround")
        assert "DLK002" not in rules_fired(cfg, task_program())


class TestDlk003UnreachableBarrierParties:
    def test_triggers_per_starved_loop(self):
        prog = Program(
            "tiny",
            (
                LoopRegion("small-a", n_iters=4, iter_work=1.0),
                LoopRegion("small-b", n_iters=2, iter_work=1.0, trips=3),
                LoopRegion("big", n_iters=640, iter_work=1.0),
            ),
        )
        found = sanitize_config(EnvConfig(num_threads=16), MILAN, prog)
        hits = [f for f in found if f.rule == "DLK003"]
        assert {f.subject for f in hits} == {"tiny: small-a", "tiny: small-b"}
        assert any("12 thread(s)" in f.message for f in hits)

    def test_silent_when_iterations_cover_team(self):
        prog = Program("ok", (LoopRegion("big", n_iters=64, iter_work=1.0),))
        assert "DLK003" not in rules_fired(EnvConfig(num_threads=16), prog)


class TestDlk004OversubscribedTimeshare:
    def test_triggers_on_passive_oversubscription(self):
        cfg = EnvConfig(num_threads=MILAN.n_cores * 2)
        found = sanitize_config(cfg, MILAN)
        hits = [f for f in found if f.rule == "DLK004"]
        assert hits and hits[0].severity is Severity.WARNING

    def test_yields_to_dlk001_under_active_spin(self):
        cfg = EnvConfig(num_threads=MILAN.n_cores * 2, library="turnaround")
        fired = rules_fired(cfg)
        assert "DLK001" in fired and "DLK004" not in fired

    def test_silent_without_stacking(self):
        assert "DLK004" not in rules_fired(EnvConfig(num_threads=16))


class TestProgramlessMode:
    def test_config_only_rules_still_run(self):
        # Without a program only configuration-intrinsic rules can fire.
        cfg = EnvConfig(num_threads=MILAN.n_cores * 2, library="turnaround")
        fired = rules_fired(cfg, program=None)
        assert "DLK001" in fired
        assert not fired & {"RACE001", "RACE002", "RACE003", "DLK002",
                            "DLK003"}
