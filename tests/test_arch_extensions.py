"""Tests for the extension machines (the paper's 'latest CPU chips')."""

import numpy as np
import pytest

from repro.arch.extensions import GENOA, GRACE, register_machine, unregister_machine
from repro.arch.machines import ALL_MACHINES, get_machine
from repro.errors import TopologyError
from repro.runtime.executor import execute
from repro.runtime.icv import EnvConfig
from repro.workloads.base import get_workload


@pytest.fixture
def registered():
    register_machine(GENOA)
    register_machine(GRACE)
    yield
    unregister_machine("genoa")
    unregister_machine("grace")


class TestTopologies:
    def test_genoa_structure(self):
        assert GENOA.n_cores == 192
        assert GENOA.n_numa == 8
        assert GENOA.cores_per_llc == 8
        assert GENOA.mem_type == "DDR5"

    def test_grace_is_flat(self):
        assert GRACE.n_numa == 1
        assert GRACE.mean_numa_distance() == 1.0
        assert len(GRACE.places("numa_domains")) == 1


class TestRegistration:
    def test_register_roundtrip(self, registered):
        assert get_machine("genoa") is GENOA
        assert get_machine("grace") is GRACE
        unregister_machine("genoa")
        assert "genoa" not in ALL_MACHINES
        register_machine(GENOA)  # fixture teardown expects it present

    def test_study_machines_protected(self):
        with pytest.raises(TopologyError):
            unregister_machine("milan")

    def test_register_installs_cost_tables(self, registered):
        from repro.runtime.costs import get_costs
        from repro.runtime.power import get_power_model

        assert get_costs("genoa").congestion_gamma > 1.0
        assert get_power_model("grace").uncore_w > 0
        from repro.arch.noise import get_noise_model

        assert get_noise_model("grace").sigma < 0.02

    def test_registration_idempotent(self, registered):
        register_machine(GENOA)  # same object: fine
        assert get_machine("genoa") is GENOA


class TestMethodologyPredictions:
    """The structural predictions the extension machines exist to test."""

    def test_genoa_keeps_milans_congestion_headroom(self, registered):
        su3 = get_workload("su3bench").program("default")
        default = execute(su3, GENOA, EnvConfig())
        tuned = execute(
            su3, GENOA,
            EnvConfig(num_threads=GENOA.n_cores // 2, places="ll_caches",
                      proc_bind="spread"),
        )
        assert default / tuned > 1.3  # NPS4 congestion, like Milan

    def test_grace_flat_memory_kills_binding_headroom(self, registered):
        su3 = get_workload("su3bench").program("default")
        default = execute(su3, GRACE, EnvConfig())
        best = min(
            execute(su3, GRACE, EnvConfig(places=p, proc_bind=b))
            for p in ("cores", "sockets", "ll_caches")
            for b in ("close", "spread")
        )
        assert default / best < 1.1  # nothing to gain from affinity

    def test_grace_still_rewards_turnaround_for_tasks(self, registered):
        nq = get_workload("nqueens").program("large")
        default = execute(nq, GRACE, EnvConfig())
        turn = execute(nq, GRACE, EnvConfig(library="turnaround"))
        assert default / turn > 1.5  # wait policy is memory-independent

    def test_sweep_runs_on_extension_machine(self, registered):
        from repro.core.dataset import enrich_with_speedup, records_to_table
        from repro.core.sweep import SweepPlan, run_sweep

        result = run_sweep(
            SweepPlan(arch="grace", workload_names=("nqueens",),
                      scale="small", repetitions=1, inputs_limit=1)
        )
        table = enrich_with_speedup(records_to_table(result.records))
        speedups = np.asarray(table["speedup"], float)
        assert speedups.max() > 1.3
