"""Tests for the CART decision tree and random forest."""

import numpy as np
import pytest

from repro.errors import FitError, NotFittedError
from repro.mlkit.tree import DecisionTreeClassifier, RandomForestClassifier


def xor_data(n=400, seed=0):
    """A problem linear models cannot solve: XOR of two features."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(float)
    return X, y


class TestDecisionTree:
    def test_fits_simple_threshold(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0.0, 0.0, 1.0, 1.0])
        tree = DecisionTreeClassifier(min_samples_split=2).fit(X, y)
        assert tree.score(X, y) == 1.0
        assert tree.root_.feature == 0
        assert 1.0 < tree.root_.threshold < 2.0

    def test_solves_xor(self):
        X, y = xor_data()
        tree = DecisionTreeClassifier(max_depth=4, min_samples_split=4).fit(X, y)
        assert tree.score(X, y) > 0.95

    def test_xor_beats_logistic(self):
        from repro.mlkit.logreg import LogisticRegression

        X, y = xor_data(seed=1)
        tree = DecisionTreeClassifier(max_depth=4, min_samples_split=4).fit(X, y)
        logit = LogisticRegression(l2=0.1).fit(X, y)
        assert tree.score(X, y) > logit.score(X, y) + 0.2

    def test_depth_cap_respected(self):
        X, y = xor_data(seed=2)
        tree = DecisionTreeClassifier(max_depth=3, min_samples_split=2).fit(X, y)
        assert tree.depth <= 3

    def test_pure_node_becomes_leaf(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.ones(3)
        tree = DecisionTreeClassifier(min_samples_split=2).fit(X, y)
        assert tree.root_.is_leaf
        assert tree.n_leaves == 1

    def test_probabilities_in_unit_interval(self):
        X, y = xor_data(seed=3)
        proba = DecisionTreeClassifier().fit(X, y).predict_proba(X)
        assert proba.shape == (X.shape[0], 2)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert ((proba >= 0) & (proba <= 1)).all()

    def test_importances_identify_relevant_feature(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(500, 3))
        y = (X[:, 1] > 0).astype(float)  # only feature 1 matters
        imp = DecisionTreeClassifier().fit(X, y).normalized_importances()
        assert imp.sum() == pytest.approx(1.0)
        assert imp[1] > 0.9

    def test_importances_uniform_when_no_split(self):
        X = np.zeros((20, 4))
        y = np.array([0.0, 1.0] * 10)
        tree = DecisionTreeClassifier().fit(X, y)
        assert np.allclose(tree.normalized_importances(), 0.25)

    def test_deterministic(self):
        X, y = xor_data(seed=5)
        a = DecisionTreeClassifier(max_depth=5).fit(X, y)
        b = DecisionTreeClassifier(max_depth=5).fit(X, y)
        assert np.array_equal(a.predict(X), b.predict(X))

    def test_min_gain_prunes(self):
        rng = np.random.default_rng(6)
        X = rng.normal(size=(200, 2))
        y = rng.integers(0, 2, size=200).astype(float)  # pure noise
        tree = DecisionTreeClassifier(max_depth=8, min_gain=0.05).fit(X, y)
        assert tree.n_leaves < 10  # refuses to chase noise

    def test_validation(self):
        with pytest.raises(FitError):
            DecisionTreeClassifier(max_depth=0)
        with pytest.raises(FitError):
            DecisionTreeClassifier(min_samples_split=1)
        with pytest.raises(FitError):
            DecisionTreeClassifier().fit(np.ones(5), np.ones(5))
        with pytest.raises(FitError):
            DecisionTreeClassifier().fit(np.ones((3, 1)),
                                         np.array([0.0, 1.0, 2.0]))
        with pytest.raises(NotFittedError):
            DecisionTreeClassifier().predict(np.ones((1, 1)))


class TestRandomForest:
    def test_solves_xor(self):
        X, y = xor_data(seed=7)
        forest = RandomForestClassifier(n_trees=15, seed=0).fit(X, y)
        assert forest.score(X, y) > 0.93

    def test_deterministic_given_seed(self):
        X, y = xor_data(seed=8)
        a = RandomForestClassifier(n_trees=8, seed=3).fit(X, y)
        b = RandomForestClassifier(n_trees=8, seed=3).fit(X, y)
        assert np.array_equal(a.predict(X), b.predict(X))

    def test_seed_changes_ensemble(self):
        X, y = xor_data(seed=9)
        a = RandomForestClassifier(n_trees=5, seed=1).fit(X, y)
        b = RandomForestClassifier(n_trees=5, seed=2).fit(X, y)
        assert not np.allclose(
            a.predict_proba(X)[:, 1], b.predict_proba(X)[:, 1]
        )

    def test_importances_distribution(self):
        rng = np.random.default_rng(10)
        X = rng.normal(size=(400, 4))
        y = ((X[:, 0] > 0) & (X[:, 2] > 0)).astype(float)
        imp = RandomForestClassifier(n_trees=20, seed=0).fit(
            X, y
        ).normalized_importances()
        assert imp.sum() == pytest.approx(1.0)
        assert imp[0] + imp[2] > imp[1] + imp[3]

    def test_sqrt_feature_subsampling(self):
        forest = RandomForestClassifier(max_features="sqrt")
        assert forest._resolve_max_features(9) == 3
        assert forest._resolve_max_features(2) == 1

    def test_generalizes_better_than_single_tree(self):
        X, y = xor_data(n=300, seed=11)
        X_test, y_test = xor_data(n=300, seed=12)
        noisy_y = y.copy()
        rng = np.random.default_rng(13)
        flip = rng.random(y.shape[0]) < 0.15
        noisy_y[flip] = 1 - noisy_y[flip]
        tree = DecisionTreeClassifier(max_depth=12, min_samples_split=2).fit(
            X, noisy_y
        )
        forest = RandomForestClassifier(n_trees=25, max_depth=12,
                                        min_samples_split=2, seed=0).fit(
            X, noisy_y
        )
        assert forest.score(X_test, y_test) >= tree.score(X_test, y_test)

    def test_validation(self):
        with pytest.raises(FitError):
            RandomForestClassifier(n_trees=0)
        with pytest.raises(NotFittedError):
            RandomForestClassifier().predict(np.ones((1, 1)))
