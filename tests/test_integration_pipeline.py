"""End-to-end integration: sweep -> dataset -> CSV -> analysis -> figures,
plus cross-module invariants that mirror the paper's headline findings."""

import numpy as np
import pytest

from repro import (
    EnvConfig,
    EnvSpace,
    SweepPlan,
    enrich_with_speedup,
    execute,
    get_machine,
    get_workload,
    influence_by_application,
    influence_by_architecture,
    label_optimal,
    read_csv,
    records_to_table,
    run_sweep,
    speedup_summary,
    worst_trends,
    write_csv,
)
from repro.viz.heatmap import influence_heatmap
from repro.viz.violin import violin_plot


class TestFullPipeline:
    def test_csv_roundtrip_preserves_analysis(self, milan_dataset, tmp_path):
        path = tmp_path / "dataset.csv"
        write_csv(milan_dataset, path)
        back = read_csv(path)
        assert back.num_rows == milan_dataset.num_rows
        a = influence_by_application(milan_dataset).matrix()
        b = influence_by_application(back).matrix()
        assert np.allclose(a, b, atol=1e-9)

    def test_figures_render_from_sweep(self, milan_dataset, tmp_path):
        inf = influence_by_architecture(milan_dataset)
        svg = influence_heatmap(inf)
        svg.save(str(tmp_path / "fig3.svg"))
        # Violin of one app's runtime distribution across the sweep.
        mask = np.asarray([a == "nqueens" for a in milan_dataset["app"]])
        sub = milan_dataset.filter(mask)
        samples, labels = [], []
        for (inp,), group in sub.group_by("input_size"):
            samples.append(np.asarray(group["runtime_mean"], float))
            labels.append(str(inp))
        v = violin_plot(samples, labels, log_scale=True)
        v.save(str(tmp_path / "fig_violin.svg"))
        assert (tmp_path / "fig3.svg").stat().st_size > 500
        assert (tmp_path / "fig_violin.svg").stat().st_size > 500


class TestPaperHeadlines:
    """Shape-level assertions of the paper's Sec. V findings."""

    def test_default_performs_well_but_all_apps_have_headroom(
        self, milan_dataset
    ):
        summary = speedup_summary(milan_dataset, by=("app",))
        maxima = np.asarray(summary["max_speedup"], float)
        assert (maxima > 1.0).all()  # every app improvable
        speedups = np.asarray(milan_dataset["speedup"], float)
        # ... but the default is good: most configs do NOT beat it by much.
        assert np.median(speedups) < 1.05

    def test_nqueens_has_largest_headroom(self, milan_dataset):
        summary = speedup_summary(milan_dataset, by=("app",))
        by_app = dict(zip(summary["app"], summary["max_speedup"]))
        assert by_app["nqueens"] == max(by_app.values())
        assert by_app["nqueens"] > 2.0

    def test_turnaround_best_for_nqueens_all_architectures(self):
        """Table VII row 1: KMP_LIBRARY=turnaround helps NQueens on every
        machine."""
        prog = get_workload("nqueens").program("medium")
        for arch in ("a64fx", "skylake", "milan"):
            m = get_machine(arch)
            default = execute(prog, m, EnvConfig())
            turn = execute(prog, m, EnvConfig(library="turnaround"))
            assert default / turn > 1.5, arch

    def test_xsbench_headroom_is_milan_specific(self):
        """Table V: XSBench improves >1.5x on Milan, ~nothing elsewhere."""
        prog = get_workload("xsbench").program("default")
        best = {}
        for arch in ("a64fx", "skylake", "milan"):
            m = get_machine(arch)
            default = execute(prog, m, EnvConfig())
            candidates = [
                EnvConfig(places=p, proc_bind=b)
                for p in ("cores", "sockets", "ll_caches")
                for b in ("close", "spread")
            ]
            best[arch] = max(
                default / execute(prog, m, c) for c in candidates
            )
        assert best["milan"] > 1.5
        assert best["skylake"] < 1.15
        assert best["a64fx"] < 1.15

    def test_master_binding_worst_trend(self, milan_dataset):
        trends = worst_trends(milan_dataset)
        assert any(
            t.variable == "proc_bind" and t.value == "master" for t in trends
        )

    def test_optimal_label_balance_sane(self, milan_dataset):
        frac = np.asarray(milan_dataset["optimal"], float).mean()
        assert 0.02 < frac < 0.9


class TestCrossArchConsistency:
    def test_same_sweep_same_apps_different_archs(self, tri_arch_dataset):
        archs = set(tri_arch_dataset.unique("arch"))
        assert archs == {"a64fx", "skylake", "milan"}
        # Per-setting speedups are always computed against that arch's own
        # default, so every arch contains speedup == 1 rows.
        for (arch,), sub in tri_arch_dataset.group_by("arch"):
            speedups = np.asarray(sub["speedup"], float)
            assert np.isclose(speedups.max(), speedups.max())
            assert (np.abs(speedups - 1.0) < 1e-9).any()

    def test_a64fx_quietest_machine(self, tri_arch_dataset):
        """Table IV shape: per-config run-to-run scatter smallest on A64FX."""
        from repro.core.dataset import run_columns

        cols = run_columns(tri_arch_dataset)
        noise = {}
        for (arch,), sub in tri_arch_dataset.group_by("arch"):
            runs = np.stack(
                [np.asarray(sub[c], float) for c in cols]
            )
            cv = runs.std(axis=0) / runs.mean(axis=0)
            noise[arch] = float(np.median(cv))
        assert noise["a64fx"] < noise["skylake"]
        assert noise["a64fx"] < noise["milan"]


class TestScaleKnobs:
    def test_small_scale_sweep_is_fast_and_complete(self):
        plan = SweepPlan(arch="skylake", workload_names=("ep",),
                         scale="small", repetitions=1)
        result = run_sweep(plan)
        space = EnvSpace()
        machine = get_machine("skylake")
        assert result.n_samples == len(space.grid(machine, "small")) * 4

    def test_inputs_limit(self):
        plan = SweepPlan(arch="skylake", workload_names=("ep",),
                         scale="small", repetitions=1, inputs_limit=2)
        result = run_sweep(plan)
        inputs = {r.input_size for r in result.records}
        assert inputs == {"S", "W"}
