"""Tests for the nodes-backend frame protocol.

Every way a socket read can go wrong must surface as a *typed*
:class:`~repro.errors.TransportError` subclass within its deadline —
never a hang, never a bare ``OSError``.  All tests run on in-process
``socket.socketpair()`` links with sub-second deadlines; none of them
sleeps waiting for a race to resolve.

Runs under the ``chaos`` marker alongside the fault-injection suite.
"""

import array
import socket
import struct
import time
import zlib

import pytest

from repro.errors import (
    MalformedFrameError,
    NodeLostError,
    TransportError,
    TruncatedFrameError,
)
from repro.resilience.transport import (
    FRAME_MAGIC,
    MAX_FRAME_BYTES,
    encode_frame,
    recv_frame,
    send_frame,
    send_truncated_frame,
)

pytestmark = pytest.mark.chaos

#: Generous cap on how long any deadline-bounded call may take: the
#: protocol promises "never blocks past the deadline", so a 0.05-0.2s
#: timeout finishing within a second means the bound holds.
BOUND_S = 1.0


@pytest.fixture()
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


def _bounded(fn, *args, **kwargs):
    """Run ``fn`` and return (outcome-or-raiser, elapsed seconds)."""
    start = time.monotonic()
    try:
        out = fn(*args, **kwargs)
    except TransportError as exc:
        return exc, time.monotonic() - start
    return out, time.monotonic() - start


class TestRoundTrip:
    def test_message_round_trip(self, pair):
        a, b = pair
        message = ("result", 3, "ok", {"runtime": [1.5, 2.5]})
        send_frame(a, message)
        assert recv_frame(b, 1.0) == message

    def test_columnar_payload_round_trip(self, pair):
        # array.array columns are the RecordBlock wire shape: they must
        # cross the link intact (pickled as raw bytes, not per-element).
        a, b = pair
        column = array.array("d", [0.125 * i for i in range(1000)])
        send_frame(a, ("result", 0, "ok", {"runtime_s": column}))
        _tag, _tid, _status, value = recv_frame(b, 1.0)
        assert value["runtime_s"] == column
        assert value["runtime_s"].typecode == "d"

    def test_back_to_back_frames_keep_boundaries(self, pair):
        a, b = pair
        for i in range(5):
            send_frame(a, ("task", i))
        assert [recv_frame(b, 1.0) for _ in range(5)] == [
            ("task", i) for i in range(5)
        ]

    def test_oversize_frame_refused_at_send(self, pair):
        a, _b = pair
        with pytest.raises(MalformedFrameError):
            encode_frame(bytes(MAX_FRAME_BYTES + 1))


class TestPollSemantics:
    def test_quiet_link_returns_none_within_deadline(self, pair):
        _a, b = pair
        out, elapsed = _bounded(recv_frame, b, 0.05)
        assert out is None
        assert elapsed < BOUND_S


class TestMalformedFrames:
    def test_bad_magic(self, pair):
        a, b = pair
        payload = b"x"
        a.sendall(struct.pack(">2sII", b"XX", len(payload),
                              zlib.crc32(payload)) + payload)
        with pytest.raises(MalformedFrameError, match="magic"):
            recv_frame(b, 0.5)

    def test_implausible_length(self, pair):
        a, b = pair
        a.sendall(struct.pack(">2sII", FRAME_MAGIC,
                              MAX_FRAME_BYTES + 1, 0))
        with pytest.raises(MalformedFrameError, match="length"):
            recv_frame(b, 0.5)

    def test_checksum_mismatch(self, pair):
        a, b = pair
        data = bytearray(encode_frame(("task", 1)))
        data[-1] ^= 0xFF  # rot one payload byte in flight
        a.sendall(bytes(data))
        with pytest.raises(MalformedFrameError, match="checksum"):
            recv_frame(b, 0.5)

    def test_undecodable_payload(self, pair):
        a, b = pair
        payload = b"\x80\x05not really a pickle"
        a.sendall(struct.pack(">2sII", FRAME_MAGIC, len(payload),
                              zlib.crc32(payload)) + payload)
        with pytest.raises(MalformedFrameError, match="undecodable"):
            recv_frame(b, 0.5)


class TestTruncatedFrames:
    def test_peer_death_mid_frame(self, pair):
        # The node-lost chaos shape: half a result frame, then the link
        # closes.  Must be detected instantly, not waited out.
        a, b = pair
        send_truncated_frame(a, ("result", 0, "ok", list(range(64))))
        a.close()
        exc, elapsed = _bounded(recv_frame, b, 5.0)
        assert isinstance(exc, TruncatedFrameError)
        assert elapsed < BOUND_S

    def test_peer_stall_mid_frame_is_deadline_bounded(self, pair):
        # The peer sent part of a frame and went silent without dying:
        # only here does the deadline fire, and it fires as truncation.
        a, b = pair
        send_truncated_frame(a, ("result", 0, "ok", None), fraction=0.4)
        exc, elapsed = _bounded(recv_frame, b, 0.1)
        assert isinstance(exc, TruncatedFrameError)
        assert "stalled" in str(exc)
        assert elapsed < BOUND_S

    def test_truncation_cut_never_empty_or_complete(self):
        data = encode_frame(("task", 7, "payload"))
        for fraction in (0.0, 0.5, 1.0):
            a, b = socket.socketpair()
            try:
                send_truncated_frame(a, ("task", 7, "payload"), fraction)
                a.shutdown(socket.SHUT_WR)
                got = b.recv(len(data) + 1)
                assert 0 < len(got) < len(data)
            finally:
                a.close()
                b.close()


class TestNodeLoss:
    def test_close_at_frame_boundary(self, pair):
        a, b = pair
        send_frame(a, ("task", 0))
        a.close()
        assert recv_frame(b, 0.5) == ("task", 0)
        with pytest.raises(NodeLostError, match="frame boundary"):
            recv_frame(b, 0.5)

    def test_send_to_dead_peer(self, pair):
        a, b = pair
        b.close()
        a.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 8192)
        with pytest.raises(NodeLostError):
            for _ in range(1024):  # fill the buffer until EPIPE surfaces
                send_frame(a, ("task", 0, bytes(4096)))

    def test_typed_errors_share_the_transport_root(self):
        for err in (NodeLostError, TruncatedFrameError,
                    MalformedFrameError):
            assert issubclass(err, TransportError)
