"""Unit tests for the serving daemon's pure machinery.

Everything here runs against injected fake clocks and in-memory
runners — no sockets, no sweeps — so the breaker state machine, the
coalescer's single-dispatch guarantee, the journal's torn-tail
tolerance, and the queue's deadline/drain semantics are pinned at the
state-machine level.  The HTTP layer is covered end-to-end in
``test_serve_http.py``.
"""

import json
import threading

import pytest

from repro.errors import ConfigError, ServeError, SweepCancelledError
from repro.serve.breaker import BREAKER_STATES, BackendLadder, CircuitBreaker
from repro.serve.coalesce import Coalescer, sweep_request_key
from repro.serve.journal import TERMINAL_STATES, JobJournal
from repro.serve.limits import TokenBucket
from repro.serve.queue import Job, JobQueue, QueueFull


class FakeClock:
    """A hand-advanced monotonic clock."""

    def __init__(self, start: float = 1000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def make(self, clock, threshold=3, cooldown=30.0, probes=2):
        return CircuitBreaker("pool", failure_threshold=threshold,
                              cooldown_s=cooldown, probe_budget=probes,
                              clock=clock)

    def test_state_catalog(self):
        assert BREAKER_STATES == ("closed", "open", "half-open")

    def test_closed_allows_and_counts_consecutive_failures(self):
        clock = FakeClock()
        breaker = self.make(clock)
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()

    def test_success_resets_the_consecutive_count(self):
        clock = FakeClock()
        breaker = self.make(clock, threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_full_transition_cycle_closed_open_halfopen_closed(self):
        clock = FakeClock()
        breaker = self.make(clock, threshold=1, cooldown=10.0)
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(9.99)
        assert breaker.state == "open" and not breaker.allow()
        clock.advance(0.02)
        assert breaker.state == "half-open"
        assert breaker.allow()          # consumes one probe
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

    def test_halfopen_failure_reopens_for_another_cooldown(self):
        clock = FakeClock()
        breaker = self.make(clock, threshold=1, cooldown=5.0)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()
        clock.advance(5.0)
        assert breaker.state == "half-open"

    def test_probe_budget_exhaustion_reopens(self):
        clock = FakeClock()
        breaker = self.make(clock, threshold=1, cooldown=5.0, probes=2)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow() and breaker.allow()   # spend the budget
        assert not breaker.allow()                   # third probe refused
        assert breaker.state == "open"               # ...and re-opened
        assert breaker.n_opens == 2

    def test_describe_is_json_ready(self):
        breaker = self.make(FakeClock())
        snapshot = breaker.describe()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["backend"] == "pool"

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigError):
            self.make(FakeClock(), threshold=0)
        with pytest.raises(ConfigError):
            self.make(FakeClock(), probes=0)
        with pytest.raises(ConfigError):
            self.make(FakeClock(), cooldown=-1.0)


class TestBackendLadder:
    def test_ladder_shapes(self):
        ladder = BackendLadder(clock=FakeClock())
        assert ladder.ladder_for("nodes") == ("nodes", "pool", "serial")
        assert ladder.ladder_for("pool") == ("pool", "serial")
        assert ladder.ladder_for("auto") == ("pool", "serial")
        assert ladder.ladder_for("serial") == ("serial",)
        with pytest.raises(ConfigError):
            ladder.ladder_for("quantum")

    def test_open_rung_is_skipped_but_floor_never_is(self):
        clock = FakeClock()
        ladder = BackendLadder(failure_threshold=1, cooldown_s=60.0,
                               clock=clock)
        assert ladder.rungs_for("pool") == ["pool", "serial"]
        ladder.record("pool", ok=False)
        assert ladder.rungs_for("pool") == ["serial"]
        # serial cannot be broken away even when it fails
        for _ in range(5):
            ladder.record("serial", ok=False)
        assert ladder.rungs_for("serial") == ["serial"]

    def test_recovery_via_halfopen_probe(self):
        clock = FakeClock()
        ladder = BackendLadder(failure_threshold=1, cooldown_s=10.0,
                               probe_budget=1, clock=clock)
        ladder.record("pool", ok=False)
        assert ladder.rungs_for("pool") == ["serial"]
        clock.advance(10.0)
        assert ladder.rungs_for("pool") == ["pool", "serial"]  # probe
        ladder.record("pool", ok=True)
        assert ladder.breakers["pool"].state == "closed"

    def test_record_unknown_backend_rejected(self):
        with pytest.raises(ConfigError):
            BackendLadder(clock=FakeClock()).record("quantum", ok=True)


# ----------------------------------------------------------------------
# Token bucket
# ----------------------------------------------------------------------
class TestTokenBucket:
    def test_burst_then_rate_limited_with_retry_hint(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2, clock=clock)
        assert bucket.try_acquire("ci") == 0.0
        assert bucket.try_acquire("ci") == 0.0
        wait = bucket.try_acquire("ci")
        assert wait == pytest.approx(1.0)
        clock.advance(wait)
        assert bucket.try_acquire("ci") == 0.0
        assert bucket.rejected == 1

    def test_keys_are_independent(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=1, clock=clock)
        assert bucket.try_acquire("a") == 0.0
        assert bucket.try_acquire("a") > 0.0
        assert bucket.try_acquire("b") == 0.0

    def test_eviction_bounds_client_memory(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=1, clock=clock,
                             max_clients=2)
        bucket.try_acquire("a")
        clock.advance(1.0)
        bucket.try_acquire("b")
        clock.advance(1.0)
        bucket.try_acquire("c")     # evicts "a", the longest-untouched
        assert bucket.describe()["clients"] == 2
        # the evicted key restarts with a full burst (client's favor)
        assert bucket.tokens("a") == 1.0

    def test_invalid_parameters_rejected(self):
        for kwargs in ({"rate": 0.0, "burst": 1},
                       {"rate": 1.0, "burst": 0},
                       {"rate": 1.0, "burst": 1, "max_clients": 0}):
            with pytest.raises(ConfigError):
                TokenBucket(clock=FakeClock(), **kwargs)


# ----------------------------------------------------------------------
# Coalescer
# ----------------------------------------------------------------------
class TestCoalescer:
    def test_identical_keys_share_one_factory_call(self):
        coalescer = Coalescer()
        calls = []

        def factory():
            calls.append(1)
            return object()

        job, created = coalescer.get_or_create("k", factory)
        again, created2 = coalescer.get_or_create("k", factory)
        assert created and not created2
        assert again is job and len(calls) == 1
        assert coalescer.describe() == {
            "inflight_keys": 1, "coalesced": 1, "created": 1,
        }

    def test_n_concurrent_requests_one_dispatch(self):
        """The airtight guarantee: N racing identical requests produce
        exactly one factory call, and all N see the same job."""
        coalescer = Coalescer()
        barrier = threading.Barrier(8)
        dispatches = []
        seen = []

        def factory():
            dispatches.append(threading.get_ident())
            return object()

        def client():
            barrier.wait()
            job, _created = coalescer.get_or_create("grid", factory)
            seen.append(job)

        threads = [threading.Thread(target=client) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(dispatches) == 1
        assert len(seen) == 8 and len(set(map(id, seen))) == 1

    def test_release_frees_the_key_idempotently(self):
        coalescer = Coalescer()
        job, _ = coalescer.get_or_create("k", object)
        coalescer.release("k", job)
        coalescer.release("k", job)      # idempotent
        assert coalescer.inflight() == 0
        newer, created = coalescer.get_or_create("k", object)
        coalescer.release("k", job)      # stale release: newer job kept
        assert created and coalescer.inflight() == 1

    def test_factory_failure_leaves_no_residue(self):
        coalescer = Coalescer()

        def explode():
            raise ServeError("no capacity")

        with pytest.raises(ServeError):
            coalescer.get_or_create("k", explode)
        assert coalescer.inflight() == 0
        _job, created = coalescer.get_or_create("k", object)
        assert created

    def test_request_key_separates_plans_and_knobs(self):
        from repro.core.sweep import SweepPlan

        plan_a = SweepPlan(arch="milan", workload_names=("cg",),
                           scale="small", repetitions=2, inputs_limit=1)
        plan_b = SweepPlan(arch="milan", workload_names=("ep",),
                           scale="small", repetitions=2, inputs_limit=1)
        key = sweep_request_key(plan_a)
        assert key == sweep_request_key(plan_a)          # deterministic
        assert len(key) == 64 and int(key, 16) >= 0       # hex digest
        assert key != sweep_request_key(plan_b)
        assert key != sweep_request_key(plan_a, backend="pool")
        assert key != sweep_request_key(plan_a, n_shards=2)
        assert key != sweep_request_key(plan_a, fail_policy="raise")


# ----------------------------------------------------------------------
# Journal
# ----------------------------------------------------------------------
class TestJobJournal:
    def test_submit_state_fold(self, tmp_path):
        journal = JobJournal(tmp_path / "jobs.journal")
        journal.submit("j000001", {"plan": {"arch": "milan"}},
                       coalesce_key="k1", client="ci")
        journal.state("j000001", "running")
        journal.submit("j000002", {"plan": {"arch": "a64fx"}})
        journal.state("j000001", "done")
        views = journal.replay()
        assert views["j000001"]["state"] == "done"
        assert views["j000001"]["coalesce_key"] == "k1"
        assert views["j000002"]["state"] == "queued"
        assert [v["id"] for v in journal.unfinished()] == ["j000002"]
        assert journal.next_job_number() == 3

    def test_terminal_states_are_not_resumed(self, tmp_path):
        journal = JobJournal(tmp_path / "jobs.journal")
        for n, state in enumerate(TERMINAL_STATES, start=1):
            job_id = f"j{n:06d}"
            journal.submit(job_id, {})
            journal.state(job_id, state)
        journal.submit("j000009", {})
        journal.state("j000009", "interrupted")
        assert [v["id"] for v in journal.unfinished()] == ["j000009"]

    def test_torn_tail_is_dropped_silently(self, tmp_path):
        path = tmp_path / "jobs.journal"
        journal = JobJournal(path)
        journal.submit("j000001", {})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"op": "state", "id": "j000001", "sta')
        views = journal.replay()
        assert views["j000001"]["state"] == "queued"
        assert journal.corrupt_lines == 0     # a tear is not corruption

    def test_unterminated_but_parseable_tail_is_kept(self, tmp_path):
        path = tmp_path / "jobs.journal"
        journal = JobJournal(path)
        journal.submit("j000001", {})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(
                {"op": "state", "id": "j000001", "state": "running"}
            ))  # no trailing newline: torn between payload and "\n"
        assert journal.replay()["j000001"]["state"] == "running"

    def test_interior_corruption_is_counted(self, tmp_path):
        path = tmp_path / "jobs.journal"
        journal = JobJournal(path)
        journal.submit("j000001", {})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("NOT JSON\n")
        journal.submit("j000002", {})
        views = journal.replay()
        assert set(views) == {"j000001", "j000002"}
        assert journal.corrupt_lines == 1

    def test_missing_file_is_empty_history(self, tmp_path):
        journal = JobJournal(tmp_path / "absent.journal")
        assert journal.replay() == {}
        assert journal.next_job_number() == 1


# ----------------------------------------------------------------------
# Job queue
# ----------------------------------------------------------------------
class TestJobQueue:
    def drain_safe(self, queue):
        queue.drain(grace_s=0.0)

    def test_job_runs_and_settles_done(self):
        ran = []
        queue = JobQueue(lambda job: ran.append(job.id), workers=1)
        queue.start()
        try:
            job = Job("j000001", {})
            queue.submit(job)
            assert job.done_event.wait(5.0)
            assert job.state == "done" and ran == ["j000001"]
        finally:
            self.drain_safe(queue)

    def test_runner_exception_settles_failed(self):
        def runner(job):
            raise ValueError("boom")

        queue = JobQueue(runner, workers=1)
        queue.start()
        try:
            job = Job("j000001", {})
            queue.submit(job)
            assert job.done_event.wait(5.0)
            assert job.state == "failed" and "boom" in job.error
        finally:
            self.drain_safe(queue)

    def test_capacity_rejection_carries_retry_hint(self):
        queue = JobQueue(lambda job: None, max_queued=1, workers=1,
                         retry_after_s=2.5)
        # not started: nothing consumes the queue
        queue.submit(Job("j000001", {}))
        with pytest.raises(QueueFull) as err:
            queue.submit(Job("j000002", {}))
        assert err.value.retry_after_s == 2.5
        assert queue.n_rejected_full == 1
        queue.stop()

    def test_duplicate_id_rejected(self):
        queue = JobQueue(lambda job: None, workers=1)
        queue.submit(Job("j000001", {}))
        with pytest.raises(ServeError):
            queue.submit(Job("j000001", {}))
        queue.stop()

    def test_deadline_expires_a_cooperative_runner(self):
        def runner(job):
            if job.cancel_event.wait(10.0):
                raise SweepCancelledError("observed cancel")

        queue = JobQueue(runner, workers=1)
        queue.start()
        try:
            job = Job("j000001", {}, deadline_s=0.05)
            queue.submit(job)
            assert job.done_event.wait(5.0)
            assert job.state == "expired" and job.deadline_hit
        finally:
            self.drain_safe(queue)

    def test_client_cancel_before_run(self):
        release = threading.Event()

        def runner(job):
            release.wait(10.0)

        queue = JobQueue(runner, workers=1)
        queue.start()
        try:
            blocker = Job("j000001", {})
            queued = Job("j000002", {})
            queue.submit(blocker)
            queue.submit(queued)
            assert queue.cancel("j000002")
            release.set()
            assert queued.done_event.wait(5.0)
            assert queued.state == "cancelled"
            assert not queue.cancel("j000002")   # already settled
            assert not queue.cancel("missing")
        finally:
            self.drain_safe(queue)

    def test_drain_interrupts_queued_and_running(self):
        started = threading.Event()

        def runner(job):
            started.set()
            if job.cancel_event.wait(10.0):
                raise SweepCancelledError("drained mid-run")

        queue = JobQueue(runner, workers=1)
        queue.start()
        running = Job("j000001", {})
        waiting = Job("j000002", {})
        queue.submit(running)
        queue.submit(waiting)
        assert started.wait(5.0)
        interrupted = queue.drain(grace_s=0.05)
        assert interrupted == ["j000001", "j000002"]
        assert running.state == waiting.state == "interrupted"
        with pytest.raises(ServeError):
            queue.submit(Job("j000003", {}))

    def test_drain_grace_lets_fast_work_finish(self):
        def runner(job):
            job.cancel_event.wait(0.05)

        queue = JobQueue(runner, workers=1)
        queue.start()
        job = Job("j000001", {})
        queue.submit(job)
        interrupted = queue.drain(grace_s=5.0)
        assert interrupted == [] and job.state == "done"

    def test_journal_records_the_lifecycle(self, tmp_path):
        journal = JobJournal(tmp_path / "jobs.journal")
        queue = JobQueue(lambda job: None, workers=1, journal=journal)
        queue.start()
        try:
            job = Job("j000001", {"plan": {}}, coalesce_key="k")
            queue.submit(job)
            assert job.done_event.wait(5.0)
        finally:
            self.drain_safe(queue)
        assert journal.replay()["j000001"]["state"] == "done"

    def test_events_are_sequenced(self):
        job = Job("j000001", {})
        job.add_event({"batches_done": 1})
        job.add_event({"batches_done": 2})
        assert [e["seq"] for e in job.events] == [0, 1]
        assert job.events_since(1) == [{"seq": 1, "batches_done": 2}]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ServeError):
            JobQueue(lambda job: None, max_queued=0)
        with pytest.raises(ServeError):
            JobQueue(lambda job: None, workers=0)
