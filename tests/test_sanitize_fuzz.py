"""Schedule-perturbation fuzzer and tie-break machinery: clean scenarios
must be record-identical across seeded same-timestamp permutations, the
injected faults must diverge, and the work-stealing audit must certify
replay determinism."""

import pytest

from repro.desim import Engine, Timeout, ambient_tiebreak_seed, tiebreak_scope
from repro.sanitize.fuzz import (
    DEFAULT_SEEDS,
    FuzzOutcome,
    fuzz_findings,
    fuzz_pass,
    fuzz_scenario,
)
from repro.sanitize.scenarios import clean_scenarios, injected_scenarios
from repro.sanitize.steal_audit import StealOrderAuditor, audit_work_stealing

pytestmark = pytest.mark.sanitize


class TestTiebreakScope:
    def test_engine_inherits_ambient_seed(self):
        assert ambient_tiebreak_seed() is None
        with tiebreak_scope(7):
            assert ambient_tiebreak_seed() == 7
            assert Engine()._tiebreak_rng is not None
        assert ambient_tiebreak_seed() is None
        assert Engine()._tiebreak_rng is None

    def test_explicit_seed_beats_ambient(self):
        with tiebreak_scope(7):
            eng = Engine(tiebreak_seed=None)
        # Constructed inside the scope: ambient applies unless overridden
        # with a real seed; None defers to the scope.
        assert eng._tiebreak_rng is not None

    def test_perturbation_preserves_causality(self):
        # Events at *different* times must still run in time order no
        # matter the seed.
        order = []

        def proc(tag, delay):
            yield Timeout(delay)
            order.append(tag)

        with tiebreak_scope(3):
            eng = Engine()
            eng.process(proc("late", 2.0))
            eng.process(proc("early", 1.0))
            eng.run()
        assert order == ["early", "late"]


class TestCleanScenarios:
    def test_default_seed_count_meets_acceptance_bar(self):
        assert len(DEFAULT_SEEDS) >= 5

    @pytest.mark.parametrize(
        "scenario", clean_scenarios(), ids=lambda s: s.name
    )
    def test_record_identical_across_default_seeds(self, scenario):
        outcome = fuzz_scenario(scenario, DEFAULT_SEEDS)
        assert outcome.identical, (
            f"{scenario.name} diverged at seeds {outcome.divergent_seeds}"
        )
        assert outcome.n_seeds == len(DEFAULT_SEEDS)

    def test_fuzz_pass_is_clean_end_to_end(self):
        findings, outcomes = fuzz_pass(seeds=(1, 2))
        assert findings == []
        assert {o.scenario for o in outcomes} == {
            s.name for s in clean_scenarios()
        }


class TestInjectedScenarios:
    @pytest.mark.parametrize(
        "scenario", injected_scenarios(), ids=lambda s: s.name
    )
    def test_injected_fault_diverges(self, scenario):
        outcome = fuzz_scenario(scenario, DEFAULT_SEEDS)
        assert not outcome.identical, (
            f"injected fault {scenario.name} survived every permutation"
        )

    def test_divergence_becomes_error_finding(self):
        outcomes = [
            fuzz_scenario(s, DEFAULT_SEEDS) for s in injected_scenarios()
        ]
        findings = fuzz_findings(outcomes)
        assert len(findings) == len(outcomes)
        for f in findings:
            assert f.rule == "RACE101"
            assert f.severity.value == "error"
            assert f.fixit

    def test_same_seed_same_divergence(self):
        # The fuzzer itself is deterministic: one seed always produces
        # the same (possibly wrong) record.
        scenario = injected_scenarios()[0]
        assert scenario.run(11) == scenario.run(11)


class TestFuzzOutcome:
    def test_to_dict_roundtrip_fields(self):
        o = FuzzOutcome("s", 5, (2, 4))
        assert not o.identical
        assert o.to_dict() == {
            "scenario": "s",
            "n_seeds": 5,
            "identical": False,
            "divergent_seeds": [2, 4],
        }


class TestStealAudit:
    def test_replay_is_deterministic_and_error_free(self):
        findings, stats = audit_work_stealing()
        assert stats["replay_identical"]
        assert not [f for f in findings if f.severity.value == "error"]
        assert stats["n_decisions"] > 0

    def test_arbitrated_ties_counted(self):
        auditor = StealOrderAuditor()
        auditor.on_pop(1.0, 0, 10)
        auditor.on_steal(1.0, 1, 0, 11)  # two workers, same time, mutating
        auditor.on_failed_steal(2.0, 2)  # lone scan: not a tie
        assert auditor.arbitrated_ties() == 1

    def test_ties_surface_as_info_not_error(self):
        findings, stats = audit_work_stealing()
        if stats["n_arbitrated_ties"]:
            infos = [f for f in findings if f.rule == "RACE103"]
            assert infos and infos[0].severity.value == "info"
