"""Tests for the persistent sweep batch cache (resume semantics)."""

import json

import pytest

import repro.core.sweep as sweep_mod
from repro.arch.machines import get_machine
from repro.core.cache import (
    CACHE_FORMAT_VERSION,
    CACHE_KEY_EXCLUDED,
    CACHE_KEY_FIELDS,
    SweepCache,
    batch_key,
    grid_fingerprint,
    key_material,
    machine_fingerprint,
)
from repro.core.envspace import EnvSpace, chunked_schedule_variables
from repro.core.sweep import BatchSpec, SweepPlan, plan_batches, run_sweep


@pytest.fixture
def plan():
    return SweepPlan(arch="milan", workload_names=("cg",), scale="small",
                     repetitions=2)


@pytest.fixture
def grid_fp(plan):
    machine = get_machine(plan.arch)
    return grid_fingerprint(EnvSpace().grid(machine, plan.scale,
                                            seed=plan.seed))


@pytest.fixture
def machine_fp(plan):
    return machine_fingerprint(get_machine(plan.arch))


@pytest.fixture
def counted_batches(monkeypatch):
    """Count (and pass through) every batch execution in this process."""
    calls = []
    real = sweep_mod._execute_batch

    def counting(plan, machine, configs, batch):
        calls.append(batch)
        return real(plan, machine, configs, batch)

    monkeypatch.setattr(sweep_mod, "_execute_batch", counting)
    return calls


class TestBatchKey:
    def test_stable_across_calls(self, plan, grid_fp, machine_fp):
        batch = BatchSpec("cg", "NPB", "A", 96)
        assert batch_key(plan, grid_fp, machine_fp, batch) == batch_key(
            plan, grid_fp, machine_fp, batch
        )

    @pytest.mark.parametrize("change", [
        dict(arch="skylake"), dict(scale="medium"), dict(repetitions=3),
        dict(seed=1), dict(fidelity="des"),
    ])
    def test_sensitive_to_plan_identity(self, plan, grid_fp, machine_fp,
                                        change):
        from dataclasses import replace

        batch = BatchSpec("cg", "NPB", "A", 96)
        assert batch_key(plan, grid_fp, machine_fp, batch) != batch_key(
            replace(plan, **change), grid_fp, machine_fp, batch
        )

    def test_sensitive_to_grid(self, plan, grid_fp, machine_fp):
        batch = BatchSpec("cg", "NPB", "A", 96)
        machine = get_machine("milan")
        other_fp = grid_fingerprint(EnvSpace().grid(machine, "small", seed=9))
        assert other_fp != grid_fp
        assert batch_key(plan, grid_fp, machine_fp, batch) != batch_key(
            plan, other_fp, machine_fp, batch
        )

    def test_sensitive_to_structural_grid_change(self, plan, machine_fp,
                                                 grid_fp):
        """Changing the env space itself (extra swept variables) changes
        the fingerprint, so every batch key misses."""
        batch = BatchSpec("cg", "NPB", "A", 96)
        machine = get_machine(plan.arch)
        chunked = EnvSpace(chunked_schedule_variables())
        other_fp = grid_fingerprint(
            chunked.grid(machine, plan.scale, seed=plan.seed)
        )
        assert other_fp != grid_fp
        assert batch_key(plan, grid_fp, machine_fp, batch) != batch_key(
            plan, other_fp, machine_fp, batch
        )

    def test_sensitive_to_machine_table(self, plan, grid_fp, machine_fp):
        """Editing the machine model (any topology field) must miss."""
        from dataclasses import replace

        batch = BatchSpec("cg", "NPB", "A", 96)
        machine = get_machine(plan.arch)
        for change in (dict(clock_ghz=machine.clock_ghz * 2),
                       dict(n_cores=machine.n_cores // 2,
                            cores_per_llc=machine.cores_per_llc),
                       dict(numa_penalty_cross_socket=9.9)):
            other_fp = machine_fingerprint(replace(machine, **change))
            assert other_fp != machine_fp
            assert batch_key(plan, grid_fp, machine_fp, batch) != batch_key(
                plan, grid_fp, other_fp, batch
            )

    def test_sensitive_to_cost_table(self, plan, machine_fp, monkeypatch):
        """Recalibrating the arch's runtime cost table must miss."""
        import repro.core.cache as cache_mod
        from repro.runtime.costs import get_costs, scale_costs

        recalibrated = scale_costs(get_costs(plan.arch), 2.0)
        monkeypatch.setattr(cache_mod, "get_costs",
                            lambda arch: recalibrated)
        assert machine_fingerprint(get_machine(plan.arch)) != machine_fp

    def test_version_bump_changes_keys(self, plan, grid_fp, machine_fp,
                                       monkeypatch):
        import repro.core.cache as cache_mod

        batch = BatchSpec("cg", "NPB", "A", 96)
        before = batch_key(plan, grid_fp, machine_fp, batch)
        monkeypatch.setattr(cache_mod, "CACHE_FORMAT_VERSION",
                            CACHE_FORMAT_VERSION + 1)
        assert cache_mod.batch_key(plan, grid_fp, machine_fp,
                                   batch) != before

    def test_sensitive_to_batch_identity(self, plan, grid_fp, machine_fp):
        a = BatchSpec("cg", "NPB", "A", 96)
        b = BatchSpec("cg", "NPB", "A", 48)
        assert batch_key(plan, grid_fp, machine_fp, a) != batch_key(
            plan, grid_fp, machine_fp, b
        )

    def test_insensitive_to_batch_selection_fields(self, plan, grid_fp,
                                                   machine_fp):
        """workload_names / inputs_limit select batches, not contents —
        a capped or subset sweep must warm the cache for the full one."""
        from dataclasses import replace

        batch = BatchSpec("cg", "NPB", "A", 96)
        widened = replace(plan, workload_names=None, inputs_limit=1)
        assert batch_key(plan, grid_fp, machine_fp, batch) == batch_key(
            widened, grid_fp, machine_fp, batch
        )


class TestKeyMaterial:
    """The machine-readable key declaration the dependency lint (plane
    5, KEY003) checks the evaluation cone's read-set against."""

    def test_key_fields_declares_every_identity_slot(self):
        assert SweepCache.key_fields() == CACHE_KEY_FIELDS
        assert CACHE_KEY_FIELDS[0] == "format_version"
        assert {"grid_fingerprint", "machine_fingerprint"} <= set(
            CACHE_KEY_FIELDS
        )

    def test_excluded_fields_carry_reasons_and_do_not_overlap(self):
        assert all(CACHE_KEY_EXCLUDED.values())
        assert not set(CACHE_KEY_EXCLUDED) & set(CACHE_KEY_FIELDS)

    def test_key_material_names_exactly_what_batch_key_hashes(
        self, plan, grid_fp, machine_fp
    ):
        import hashlib

        batch = BatchSpec("cg", "NPB", "A", 96)
        material = key_material(plan, grid_fp, machine_fp, batch)
        assert tuple(material) == CACHE_KEY_FIELDS
        identity = tuple(material.values())
        digest = hashlib.sha256(repr(identity).encode("utf-8")).hexdigest()
        assert digest == batch_key(plan, grid_fp, machine_fp, batch)

    @pytest.mark.parametrize("change,slot", [
        (dict(fidelity="des"), "plan.fidelity"),
        (dict(seed=3), "plan.seed"),
        (dict(arch="skylake"), "plan.arch"),
    ])
    def test_plan_change_lands_in_its_named_slot(self, plan, grid_fp,
                                                 machine_fp, change, slot):
        from dataclasses import replace

        batch = BatchSpec("cg", "NPB", "A", 96)
        base = key_material(plan, grid_fp, machine_fp, batch)
        other = key_material(replace(plan, **change), grid_fp, machine_fp,
                             batch)
        assert [k for k in CACHE_KEY_FIELDS if base[k] != other[k]] == [slot]
        assert batch_key(plan, grid_fp, machine_fp, batch) != batch_key(
            replace(plan, **change), grid_fp, machine_fp, batch
        )

    def test_fingerprints_land_in_their_named_slots(self, plan, grid_fp,
                                                    machine_fp):
        batch = BatchSpec("cg", "NPB", "A", 96)
        base = key_material(plan, grid_fp, machine_fp, batch)
        regrid = key_material(plan, "0" * 64, machine_fp, batch)
        assert [k for k in CACHE_KEY_FIELDS
                if base[k] != regrid[k]] == ["grid_fingerprint"]
        remachine = key_material(plan, grid_fp, "1" * 64, batch)
        assert [k for k in CACHE_KEY_FIELDS
                if base[k] != remachine[k]] == ["machine_fingerprint"]


class TestSweepCacheStore:
    def test_roundtrip_bit_identical(self, tmp_path, plan):
        result = run_sweep(plan)
        cache = SweepCache(tmp_path / "c")
        cache.put("k1", result.records)
        assert cache.get("k1") == result.records
        assert cache.hits == 1 and cache.writes == 1

    def test_missing_key_is_miss(self, tmp_path):
        cache = SweepCache(tmp_path)
        assert cache.get("nope") is None
        assert cache.misses == 1

    def test_corrupt_entry_is_miss(self, tmp_path):
        cache = SweepCache(tmp_path)
        (tmp_path / "bad.json").write_text("{ torn", encoding="utf-8")
        assert cache.get("bad") is None

    def test_version_mismatch_is_miss(self, tmp_path, plan):
        cache = SweepCache(tmp_path)
        cache.put("k", run_sweep(plan).records[:1])
        payload = json.loads((tmp_path / "k.json").read_text())
        payload["version"] = CACHE_FORMAT_VERSION + 1
        (tmp_path / "k.json").write_text(json.dumps(payload))
        assert cache.get("k") is None

    def test_len_counts_entries(self, tmp_path, plan):
        cache = SweepCache(tmp_path)
        assert len(cache) == 0
        cache.put("0" * 64, run_sweep(plan).records[:1])
        assert len(cache) == 1

    def test_len_ignores_foreign_files(self, tmp_path, plan):
        """Only well-formed ``<64-hex-key>.json`` names are entries: a
        stray JSON file (or a short test key) must not inflate
        ``len(cache)`` / ``stats['entries']``."""
        cache = SweepCache(tmp_path)
        cache.put("1" * 64, run_sweep(plan).records[:1])
        (tmp_path / "notes.json").write_text("{}", encoding="utf-8")
        (tmp_path / "README.json").write_text("[]", encoding="utf-8")
        (tmp_path / ("2" * 64 + ".corrupt")).write_text("x",
                                                        encoding="utf-8")
        assert len(cache) == 1
        assert cache.stats["entries"] == 1

    def test_overwrite_of_live_entry_counts_as_lost_race(self, tmp_path,
                                                         plan):
        """Two writers racing on one content address both rename into
        place; whoever lands second is the race loser.  The entry stays
        intact (identical content either way) but the loser is visible
        in ``stats['lost_races']`` so concurrent shard overlap can be
        quantified."""
        cache = SweepCache(tmp_path)
        records = run_sweep(plan).records[:1]
        cache.put("3" * 64, records)
        assert cache.stats["lost_races"] == 0
        cache.put("3" * 64, records)
        assert cache.stats["lost_races"] == 1
        assert cache.get("3" * 64) == records
        assert len(cache) == 1 and cache.writes == 2

    def test_distinct_keys_never_count_as_races(self, tmp_path, plan):
        cache = SweepCache(tmp_path)
        records = run_sweep(plan).records[:1]
        cache.put("4" * 64, records)
        cache.put("5" * 64, records)
        assert cache.stats["lost_races"] == 0
        assert cache.stats["writes"] == 2


class TestRunSweepResume:
    def test_second_run_resimulates_zero_batches(self, tmp_path, plan,
                                                 counted_batches):
        first = run_sweep(plan, cache=tmp_path / "cache")
        n_batches = len(plan_batches(plan))
        assert len(counted_batches) == n_batches
        assert first.n_computed_batches == n_batches

        counted_batches.clear()
        again = run_sweep(plan, cache=tmp_path / "cache")
        assert counted_batches == []
        assert again.n_computed_batches == 0
        assert again.n_cached_batches == n_batches
        assert again.records == first.records

    def test_resume_mid_sweep_computes_only_remainder(self, tmp_path, plan,
                                                      counted_batches):
        """An interrupted sweep (modeled by a capped one) resumes where it
        stopped: only uncached batches are simulated."""
        from dataclasses import replace

        cache = SweepCache(tmp_path)
        run_sweep(replace(plan, inputs_limit=2), cache=cache)
        counted_batches.clear()

        full = run_sweep(plan, cache=cache)
        n_batches = len(plan_batches(plan))
        assert len(counted_batches) == n_batches - 2
        assert full.n_cached_batches == 2
        assert full.records == run_sweep(plan).records

    def test_deleted_entry_recomputed(self, tmp_path, plan, counted_batches):
        cache = SweepCache(tmp_path)
        run_sweep(plan, cache=cache)
        victim = next(iter(cache.root.glob("*.json")))
        victim.unlink()
        counted_batches.clear()
        run_sweep(plan, cache=cache)
        assert len(counted_batches) == 1

    def test_parallel_cached_and_resumed_match_serial(self, tmp_path):
        plan = SweepPlan(arch="a64fx", workload_names=("sort", "strassen"),
                         scale="small", repetitions=2, inputs_limit=2)
        serial = run_sweep(plan)

        # Cold parallel run populating the cache.
        cold = run_sweep(plan, n_processes=2, cache=tmp_path / "c")
        assert cold.records == serial.records
        assert cold.n_computed_batches == len(plan_batches(plan))

        # Partially warmed cache (mid-sweep interruption): drop one entry.
        cache = SweepCache(tmp_path / "c")
        next(iter(cache.root.glob("*.json"))).unlink()
        resumed = run_sweep(plan, n_processes=2, cache=cache)
        assert resumed.records == serial.records
        assert resumed.n_cached_batches == len(plan_batches(plan)) - 1

        # Fully warmed parallel run: everything from the cache.
        warm = run_sweep(plan, n_processes=2, cache=cache)
        assert warm.records == serial.records
        assert warm.n_computed_batches == 0

    def test_machine_table_change_invalidates_sweep_cache(
        self, tmp_path, plan, counted_batches, monkeypatch
    ):
        """An edited machine model must re-simulate every batch rather
        than serve records computed under the old model."""
        from dataclasses import replace

        run_sweep(plan, cache=tmp_path)
        n_batches = len(plan_batches(plan))
        counted_batches.clear()

        real_machine = get_machine(plan.arch)
        recalibrated = replace(real_machine,
                               clock_ghz=real_machine.clock_ghz * 1.5)
        monkeypatch.setattr(sweep_mod, "get_machine",
                            lambda name: recalibrated)
        again = run_sweep(plan, cache=tmp_path)
        assert len(counted_batches) == n_batches
        assert again.n_cached_batches == 0

    def test_cache_accepts_str_path(self, tmp_path, plan):
        result = run_sweep(plan, cache=str(tmp_path / "strcache"))
        assert result.n_computed_batches > 0
        assert (tmp_path / "strcache").is_dir()

    def test_progress_fires_for_cached_batches_too(self, tmp_path, plan):
        run_sweep(plan, cache=tmp_path)
        calls = []
        run_sweep(plan, cache=tmp_path,
                  progress=lambda *args: calls.append(args))
        n = len(plan_batches(plan))
        assert [c[0] for c in calls] == list(range(1, n + 1))
