"""Tests for the one-shot study report generator."""

import numpy as np
import pytest

from repro.core.report import generate_report
from repro.errors import SchemaError
from repro.frame.table import Table


class TestGenerateReport:
    def test_report_contents(self, milan_dataset, tmp_path):
        path = generate_report(milan_dataset, tmp_path / "r",
                               title="Test Study")
        text = path.read_text()
        assert text.startswith("# Test Study")
        for section in (
            "## Headline speedup statistics",
            "## Run-to-run consistency",
            "## Best speedup per application",
            "## Feature influence",
            "## Recommendations",
            "### Worst trends",
        ):
            assert section in text, section
        # The Milan dataset's known facts appear.
        assert "nqueens" in text
        assert "proc_bind=master" in text
        assert "R²" in text

    def test_figures_written(self, milan_dataset, tmp_path):
        generate_report(milan_dataset, tmp_path / "r")
        svgs = sorted(p.name for p in (tmp_path / "r").glob("*.svg"))
        assert svgs == [
            "influence_by_application.svg",
            "influence_by_arch_application.svg",
            "influence_by_architecture.svg",
        ]
        for name in svgs:
            assert f"({name})" in (tmp_path / "r" / "REPORT.md").read_text()

    def test_multi_arch_report(self, tri_arch_dataset, tmp_path):
        path = generate_report(tri_arch_dataset, tmp_path / "r")
        text = path.read_text()
        for arch in ("a64fx", "skylake", "milan"):
            assert arch in text
        # Consistency table distinguishes the machines.
        assert "consistent" in text and "noisy" in text

    def test_unenriched_dataset_rejected(self, tmp_path):
        with pytest.raises(SchemaError):
            generate_report(Table({"arch": ["m"]}), tmp_path)

    def test_labels_added_if_missing(self, milan_dataset, tmp_path):
        stripped = milan_dataset.without_columns(["optimal"])
        path = generate_report(stripped, tmp_path / "r")
        assert path.exists()

    def test_cli_report(self, milan_dataset, tmp_path, capsys):
        from repro.cli import main
        from repro.frame.io import write_csv

        csv_path = tmp_path / "ds.csv"
        write_csv(milan_dataset, csv_path)
        rc = main(["report", str(csv_path), "-o", str(tmp_path / "out"),
                   "--title", "CLI Study"])
        assert rc == 0
        assert (tmp_path / "out" / "REPORT.md").read_text().startswith(
            "# CLI Study"
        )
