"""Determinism self-lint (plane 3): synthetic sources proving each SIM
rule fires and stays silent, waiver machinery, and the real-tree gate
(zero unwaived findings on src/repro)."""

import textwrap

import pytest

from repro.errors import ConfigError
from repro.lint import (
    SELF_RULES,
    Severity,
    Waiver,
    apply_waivers,
    load_waivers,
    self_lint,
    self_lint_source,
    self_lint_tree,
    unwaived,
)
from repro.lint.selflint import DEFAULT_WAIVERS, _parse_toml_minimal

pytestmark = pytest.mark.lint


def lint(source, path="desim/mod.py"):
    return self_lint_source(textwrap.dedent(source), path)


def by_rule(findings, rule):
    return [f for f in findings if f.rule == rule]


class TestSim001WallClock:
    def test_fires_on_time_module_calls(self):
        findings = lint(
            """
            import time
            def tick():
                return time.perf_counter()
            """
        )
        (f,) = by_rule(findings, "SIM001")
        assert f.subject == "tick" and f.line == 4

    def test_fires_on_from_import_and_datetime(self):
        findings = lint(
            """
            from time import monotonic as mono
            import datetime
            def a():
                return mono()
            def b():
                return datetime.datetime.now()
            """
        )
        assert len(by_rule(findings, "SIM001")) == 2

    def test_out_of_scope_path_is_silent(self):
        findings = lint(
            """
            import time
            def tick():
                return time.perf_counter()
            """,
            path="cli.py",  # wall clocks are fine outside the core
        )
        assert not by_rule(findings, "SIM001")

    def test_frame_layer_is_in_scope(self):
        # Frame payloads must never absorb host timestamps.
        findings = lint(
            """
            import time
            def stamp():
                return time.time()
            """,
            path="frame/columns.py",
        )
        assert by_rule(findings, "SIM001")

    def test_non_clock_time_attr_is_silent(self):
        findings = lint(
            """
            import time
            def fine():
                return time.sleep
            """
        )
        assert not by_rule(findings, "SIM001")


class TestSim002UnseededRandomness:
    def test_fires_on_stdlib_global_random(self):
        findings = lint(
            """
            import random
            def draw():
                return random.random()
            """
        )
        assert by_rule(findings, "SIM002")

    def test_fires_on_unseeded_default_rng_via_alias(self):
        findings = lint(
            """
            import numpy as np
            def draw():
                return np.random.default_rng()
            """
        )
        (f,) = by_rule(findings, "SIM002")
        assert "seed" in f.fixit

    def test_fires_on_legacy_numpy_global(self):
        findings = lint(
            """
            import numpy as np
            def draw():
                return np.random.normal(0, 1)
            """
        )
        assert by_rule(findings, "SIM002")

    def test_seeded_default_rng_is_silent(self):
        findings = lint(
            """
            import numpy as np
            def draw(seed):
                return np.random.default_rng(seed).normal()
            """
        )
        assert not by_rule(findings, "SIM002")

    def test_out_of_scope_path_is_silent(self):
        findings = lint(
            """
            import random
            x = random.random()
            """,
            path="viz/violin.py",
        )
        assert not by_rule(findings, "SIM002")


class TestSim003SetIteration:
    def test_fires_on_for_over_set_call(self):
        findings = lint("for x in set([3, 1, 2]):\n    print(x)\n",
                        path="core/mod.py")
        (f,) = by_rule(findings, "SIM003")
        assert f.subject == "<module>"

    def test_fires_in_comprehensions_and_literals(self):
        findings = lint(
            """
            a = [x for x in {1, 2, 3}]
            b = {x for x in frozenset((1, 2))}
            """,
            path="frame/mod.py",
        )
        assert len(by_rule(findings, "SIM003")) == 2

    def test_sorted_set_is_silent(self):
        findings = lint(
            "for x in sorted(set([3, 1, 2])):\n    print(x)\n",
            path="core/mod.py",
        )
        assert not by_rule(findings, "SIM003")

    def test_applies_everywhere_in_the_package(self):
        assert SELF_RULES["SIM003"] == ("",)


class TestSim004FrozenDataclasses:
    def test_fires_on_bare_decorator(self):
        findings = lint(
            """
            from dataclasses import dataclass
            @dataclass
            class State:
                x: int = 0
            """,
            path="runtime/mod.py",
        )
        (f,) = by_rule(findings, "SIM004")
        assert "State" in f.subject

    def test_fires_on_frozen_false(self):
        findings = lint(
            """
            import dataclasses
            @dataclasses.dataclass(frozen=False)
            class State:
                x: int = 0
            """,
            path="arch/mod.py",
        )
        assert by_rule(findings, "SIM004")

    def test_frozen_true_is_silent(self):
        findings = lint(
            """
            from dataclasses import dataclass
            @dataclass(frozen=True)
            class State:
                x: int = 0
            """,
            path="runtime/mod.py",
        )
        assert not by_rule(findings, "SIM004")

    def test_out_of_scope_layer_is_silent(self):
        findings = lint(
            """
            from dataclasses import dataclass
            @dataclass
            class Accumulator:
                total: float = 0.0
            """,
            path="core/mod.py",  # analysis layer may mutate
        )
        assert not by_rule(findings, "SIM004")

    def test_resilience_layer_is_in_scope(self):
        # Resilience bookkeeping needs a reasoned waiver, not a
        # scope carve-out.
        findings = lint(
            """
            from dataclasses import dataclass
            @dataclass
            class Slot:
                busy: bool = False
            """,
            path="resilience/mod.py",
        )
        assert by_rule(findings, "SIM004")


class TestSim005FloatEquality:
    def test_fires_in_check_layer(self):
        findings = lint(
            "def verify(x):\n    return x == 1.0\n", path="check/mod.py"
        )
        (f,) = by_rule(findings, "SIM005")
        assert f.severity is Severity.WARNING

    def test_int_equality_is_silent(self):
        findings = lint(
            "def verify(x):\n    return x == 1\n", path="check/mod.py"
        )
        assert not by_rule(findings, "SIM005")

    def test_out_of_scope_path_is_silent(self):
        findings = lint(
            "def verify(x):\n    return x == 1.0\n", path="runtime/mod.py"
        )
        assert not by_rule(findings, "SIM005")


class TestWaivers:
    def test_waiver_matches_rule_path_symbol(self):
        w = Waiver(rule="SIM004", path="desim/stealing.py",
                   symbol="TaskGraph", reason="builder")
        findings = lint(
            """
            from dataclasses import dataclass
            @dataclass
            class TaskGraph:
                n: int = 0
            @dataclass
            class Other:
                n: int = 0
            """,
            path="desim/stealing.py",
        )
        waived, unused = apply_waivers(findings, [w])
        assert [f.waived for f in waived] == [True, False]
        assert unused == []

    def test_unused_waivers_reported(self):
        w = Waiver(rule="SIM001", path="nowhere.py", reason="stale")
        waived, unused = apply_waivers([], [w])
        assert unused == [w]

    def test_minimal_toml_parser_matches_shipping_file(self):
        text = DEFAULT_WAIVERS.read_text(encoding="utf-8")
        entries = _parse_toml_minimal(text)["waiver"]
        assert entries == [
            {"rule": w.rule, "path": w.path, "reason": w.reason,
             **({"symbol": w.symbol} if w.symbol else {})}
            for w in load_waivers()
        ]

    def test_minimal_parser_rejects_garbage(self):
        with pytest.raises(ConfigError):
            _parse_toml_minimal("[[waiver]]\nrule = 3\n")
        with pytest.raises(ConfigError):
            _parse_toml_minimal("what is this")

    def test_missing_waivers_file_means_none(self, tmp_path):
        assert load_waivers(tmp_path / "absent.toml") == []

    WAIVER_TEXT = (
        "# a comment above the first entry\n"
        "\n"
        "[[waiver]]\n"                       # line 3
        'rule = "SIM001"\npath = "a.py"\nreason = "r1"\n'
        "\n"
        "[[waiver]]\n"                       # line 8
        'rule = "SIM004"\npath = "b.py"\nreason = "r2"\n'
    )

    def test_loaded_waivers_carry_entry_lines(self, tmp_path):
        f = tmp_path / "w.toml"
        f.write_text(self.WAIVER_TEXT, encoding="utf-8")
        assert [w.line for w in load_waivers(f)] == [3, 8]

    def test_fallback_parser_path_also_carries_lines(
        self, tmp_path, monkeypatch
    ):
        # Python 3.10 has no tomllib; the minimal parser must produce
        # identically-positioned waivers.
        import repro.lint.selflint as selflint

        monkeypatch.setattr(selflint, "tomllib", None)
        f = tmp_path / "w.toml"
        f.write_text(self.WAIVER_TEXT, encoding="utf-8")
        waivers = load_waivers(f)
        assert [w.line for w in waivers] == [3, 8]
        assert [w.rule for w in waivers] == ["SIM001", "SIM004"]

    def test_sim000_points_at_the_stale_entry_line(self, tmp_path):
        src = tmp_path / "src"
        src.mkdir()
        f = tmp_path / "w.toml"
        f.write_text(self.WAIVER_TEXT, encoding="utf-8")
        findings = self_lint(src_root=src, waivers_path=f)
        assert [(x.rule, x.line) for x in findings] == [
            ("SIM000", 3), ("SIM000", 8),
        ]
        assert all(x.path == "lint/waivers.toml" for x in findings)

    def test_flow_waivers_belong_to_the_other_plane(self, tmp_path):
        # A FLOW entry in the shared file must not be reported as rot
        # by the self-lint plane.
        src = tmp_path / "src"
        src.mkdir()
        f = tmp_path / "w.toml"
        f.write_text(
            '[[waiver]]\nrule = "FLOW001"\npath = "a.py"\nreason = "r"\n',
            encoding="utf-8",
        )
        assert self_lint(src_root=src, waivers_path=f) == []

    def test_malformed_waiver_entry_rejected(self, tmp_path):
        bad = tmp_path / "w.toml"
        bad.write_text('[[waiver]]\nrule = "SIM001"\n', encoding="utf-8")
        with pytest.raises(ConfigError):
            load_waivers(bad)


class TestRealTree:
    def test_src_repro_has_zero_unwaived_findings(self):
        findings = self_lint()
        assert unwaived(findings) == [], (
            "unwaived determinism violations in src/repro:\n"
            + "\n".join(f"  {f.rule} {f.location()}: {f.message}"
                        for f in unwaived(findings))
        )

    def test_every_shipped_waiver_is_used(self):
        findings = self_lint()
        assert not by_rule(findings, "SIM000")

    def test_tree_walk_is_deterministic(self):
        assert self_lint_tree() == self_lint_tree()

    def test_synthetic_violation_fails_the_gate(self, tmp_path):
        # End-to-end fault injection: plant a violation in a fake tree and
        # require the pipeline to fail it with no waivers.
        bad = tmp_path / "desim"
        bad.mkdir()
        (bad / "clocky.py").write_text(
            "import time\n\ndef now():\n    return time.time()\n",
            encoding="utf-8",
        )
        findings = self_lint(src_root=tmp_path,
                             waivers_path=tmp_path / "none.toml")
        assert len(unwaived(findings)) == 1
        assert findings[0].rule == "SIM001"
