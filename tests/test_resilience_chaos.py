"""Tests for the deterministic chaos-injection plans.

Runs under the ``chaos`` marker so ``pytest -m chaos`` exercises the
fault-injection machinery behind ``repro-omp chaos``.
"""

import pytest

from repro.errors import ConfigError
from repro.resilience import ChaosFault, ChaosPlan
from repro.resilience.chaos import (
    CACHE_FAULT_KINDS,
    CORRUPT_MARKER,
    WORKER_FAULT_KINDS,
    apply_cache_fault,
    corrupted_payload,
    install_chaos,
    installed_worker_fault,
)

pytestmark = pytest.mark.chaos


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """Never leak an installed plan into other tests in this process."""
    yield
    install_chaos(None)


class TestChaosFault:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            ChaosFault("meteor-strike", 0)

    def test_negative_index_rejected(self):
        with pytest.raises(ConfigError):
            ChaosFault("crash", -1)

    def test_applies_default_first_attempt_only(self):
        fault = ChaosFault("crash", 3)
        assert fault.applies(0) and not fault.applies(1)

    def test_poison_applies_to_every_attempt(self):
        fault = ChaosFault("crash", 3, attempts=None)
        assert all(fault.applies(a) for a in range(5))
        assert fault.describe()["attempts"] == "all"


class TestChaosPlanGenerate:
    def test_same_seed_same_plan(self):
        kwargs = dict(crashes=1, hangs=1, corrupt_results=1,
                      cache_faults=1, poison=1)
        assert (ChaosPlan.generate(12, seed=5, **kwargs)
                == ChaosPlan.generate(12, seed=5, **kwargs))

    def test_faults_land_on_distinct_batches(self):
        plan = ChaosPlan.generate(8, seed=2, crashes=2, hangs=2,
                                  corrupt_results=2, cache_faults=1,
                                  poison=1)
        indices = [f.batch_index for f in plan.faults]
        assert len(indices) == len(set(indices)) == 8

    def test_too_many_faults_rejected(self):
        with pytest.raises(ConfigError):
            ChaosPlan.generate(3, crashes=2, hangs=2)

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigError):
            ChaosPlan.generate(10, crashes=-1)

    def test_roundtrip_through_dict(self):
        plan = ChaosPlan.generate(10, seed=9, crashes=1, hangs=1,
                                  corrupt_results=1, cache_faults=1,
                                  poison=1)
        assert ChaosPlan.from_dict(plan.to_dict()) == plan

    def test_malformed_dict_rejected(self):
        with pytest.raises(ConfigError):
            ChaosPlan.from_dict({"seed": 0})

    def test_no_global_rng_consumed(self):
        import random

        random.seed(99)
        before = random.getstate()
        ChaosPlan.generate(20, seed=4, crashes=3, cache_faults=2)
        assert random.getstate() == before


class TestFaultLookup:
    @pytest.fixture
    def plan(self):
        return ChaosPlan(seed=0, faults=(
            ChaosFault("crash", 0),
            ChaosFault("hang", 1),
            ChaosFault("crash", 2, attempts=None),     # poison
            ChaosFault("cache-bit-flip", 3, attempts=None),
        ))

    def test_worker_fault_first_attempt_only(self, plan):
        assert plan.worker_fault(0, 0) == "crash"
        assert plan.worker_fault(0, 1) is None
        assert plan.worker_fault(1, 0) == "hang"

    def test_poison_fires_every_attempt(self, plan):
        assert all(plan.worker_fault(2, a) == "crash" for a in range(4))

    def test_cache_fault_separate_namespace(self, plan):
        assert plan.cache_fault(3) == "cache-bit-flip"
        assert plan.worker_fault(3, 0) is None
        assert plan.cache_fault(0) is None

    def test_clean_batch_has_no_fault(self, plan):
        assert plan.worker_fault(9, 0) is None
        assert plan.cache_fault(9) is None

    def test_installed_plan_lookup(self, plan):
        assert installed_worker_fault(0, 0) is None  # nothing installed
        install_chaos(plan)
        assert installed_worker_fault(0, 0) == "crash"
        install_chaos(None)
        assert installed_worker_fault(0, 0) is None


class TestFaultEffects:
    def test_corrupted_payload_is_not_records(self):
        payload = corrupted_payload(7)
        assert CORRUPT_MARKER in payload and 7 in payload

    def test_torn_write_truncates(self, tmp_path):
        victim = tmp_path / "entry.json"
        victim.write_bytes(b"x" * 100)
        apply_cache_fault(victim, "cache-torn-write")
        assert len(victim.read_bytes()) == 50

    def test_bit_flip_changes_one_byte_same_length(self, tmp_path):
        victim = tmp_path / "entry.json"
        original = bytes(range(64))
        victim.write_bytes(original)
        apply_cache_fault(victim, "cache-bit-flip")
        flipped = victim.read_bytes()
        assert len(flipped) == len(original)
        assert sum(a != b for a, b in zip(original, flipped)) == 1

    def test_unknown_cache_fault_rejected(self, tmp_path):
        victim = tmp_path / "entry.json"
        victim.write_bytes(b"data")
        with pytest.raises(ConfigError):
            apply_cache_fault(victim, "cache-gamma-ray")

    def test_kind_partition(self):
        assert not set(WORKER_FAULT_KINDS) & set(CACHE_FAULT_KINDS)


class TestServiceFault:
    """Request-path faults of the serving daemon's chaos scenario."""

    def test_known_kinds(self):
        from repro.resilience.chaos import SERVICE_FAULT_KINDS

        assert SERVICE_FAULT_KINDS == (
            "slow-client", "backend-death-mid-request", "kill-during-drain",
        )

    def test_unknown_kind_rejected(self):
        from repro.resilience.chaos import ServiceFault

        with pytest.raises(ConfigError, match="unknown service fault"):
            ServiceFault("coffee-spill", 0)

    def test_negative_indices_rejected(self):
        from repro.resilience.chaos import ServiceFault

        with pytest.raises(ConfigError):
            ServiceFault("slow-client", -1)
        with pytest.raises(ConfigError):
            ServiceFault("backend-death-mid-request", 0, batch_index=-2)

    def test_service_kinds_disjoint_from_sweep_kinds(self):
        from repro.resilience.chaos import FAULT_KINDS, SERVICE_FAULT_KINDS

        assert not set(SERVICE_FAULT_KINDS) & set(FAULT_KINDS)


class TestServiceChaosPlan:
    def test_same_seed_same_plan(self):
        from repro.resilience.chaos import ServiceChaosPlan

        a = ServiceChaosPlan.generate(8, 4, seed=3)
        b = ServiceChaosPlan.generate(8, 4, seed=3)
        assert a == b
        assert a != ServiceChaosPlan.generate(8, 4, seed=4)

    def test_faults_land_on_distinct_requests(self):
        from repro.resilience.chaos import ServiceChaosPlan

        plan = ServiceChaosPlan.generate(6, 4, seed=0, slow_clients=2,
                                         backend_deaths=2, drain_kills=2)
        indices = [f.request_index for f in plan.faults]
        assert len(indices) == len(set(indices)) == 6
        assert indices == sorted(indices)

    def test_fault_at_lookup(self):
        from repro.resilience.chaos import ServiceChaosPlan

        plan = ServiceChaosPlan.generate(5, 4, seed=0)
        hit_indices = {f.request_index for f in plan.faults}
        for idx in range(5):
            fault = plan.fault_at(idx)
            if idx in hit_indices:
                assert fault is not None and fault.request_index == idx
            else:
                assert fault is None

    def test_roundtrips_through_dict(self):
        from repro.resilience.chaos import ServiceChaosPlan

        plan = ServiceChaosPlan.generate(7, 3, seed=9)
        assert ServiceChaosPlan.from_dict(plan.to_dict()) == plan

    def test_malformed_dict_rejected(self):
        from repro.resilience.chaos import ServiceChaosPlan

        with pytest.raises(ConfigError, match="malformed service chaos"):
            ServiceChaosPlan.from_dict({"seed": 0})

    def test_overbooked_scenario_rejected(self):
        from repro.resilience.chaos import ServiceChaosPlan

        with pytest.raises(ConfigError, match="distinct requests"):
            ServiceChaosPlan.generate(2, 4, slow_clients=1,
                                      backend_deaths=1, drain_kills=1)
        with pytest.raises(ConfigError):
            ServiceChaosPlan.generate(5, 0)
        with pytest.raises(ConfigError):
            ServiceChaosPlan.generate(5, 4, drain_kills=-1)
