"""Tests for reductions, barriers/blocktime, alignment and memory models."""

import math

import pytest

from repro.arch.machines import A64FX, MILAN, SKYLAKE
from repro.errors import ConfigError
from repro.runtime.affinity import compute_placement
from repro.runtime.alloc import sync_alignment_factor
from repro.runtime.barrier import (
    fork_seconds,
    join_seconds,
    serial_gap_seconds,
    workers_asleep,
)
from repro.runtime.costs import get_costs
from repro.runtime.icv import EnvConfig, resolve_icvs
from repro.runtime.memory import (
    available_bandwidth_gbps,
    memory_time_factor,
    migration_exposure,
)
from repro.runtime.reduction import reduction_seconds


def setup(machine, **env):
    icvs = resolve_icvs(EnvConfig(**env), machine)
    placement = compute_placement(icvs, machine)
    return icvs, placement, get_costs(machine.name)


class TestReduction:
    def test_zero_vars_free(self):
        icvs, placement, costs = setup(MILAN)
        assert reduction_seconds(icvs, placement, costs, 0) == 0.0

    def test_single_thread_free(self):
        icvs, placement, costs = setup(MILAN, num_threads=1)
        assert reduction_seconds(icvs, placement, costs, 3) == 0.0

    def test_tree_formula(self):
        from repro.runtime.reduction import _team_distance_factor

        for T in (8, 64):
            icvs, placement, c = setup(MILAN, num_threads=T,
                                       force_reduction="tree")
            expected = (
                math.ceil(math.log2(T))
                * c.tree_step_us * 1e-6
                * _team_distance_factor(placement)
            )
            assert reduction_seconds(icvs, placement, c, 1) == pytest.approx(
                expected
            )

    def test_tree_scales_logarithmically_same_distance(self):
        # Both teams confined to LLC group 0 (places=ll_caches + master):
        # identical line-transfer distance, so the round count dominates.
        i4, p4, c = setup(MILAN, num_threads=4, places="ll_caches",
                          proc_bind="master", force_reduction="tree")
        i8, p8, _ = setup(MILAN, num_threads=8, places="ll_caches",
                          proc_bind="master", force_reduction="tree")
        t4 = reduction_seconds(i4, p4, c, 1)
        t8 = reduction_seconds(i8, p8, c, 1)
        assert t8 / t4 == pytest.approx(3 / 2)

    def test_critical_scales_linearly_same_distance(self):
        i4, p4, c = setup(MILAN, num_threads=4, places="ll_caches",
                          proc_bind="master", force_reduction="critical")
        i8, p8, _ = setup(MILAN, num_threads=8, places="ll_caches",
                          proc_bind="master", force_reduction="critical")
        t4 = reduction_seconds(i4, p4, c, 1)
        t8 = reduction_seconds(i8, p8, c, 1)
        assert t8 / t4 == pytest.approx(2.0)

    def test_tree_beats_critical_at_scale(self):
        it, pt, c = setup(MILAN, force_reduction="tree")
        ic, pc, _ = setup(MILAN, force_reduction="critical")
        assert reduction_seconds(it, pt, c, 1) < reduction_seconds(ic, pc, c, 1)

    def test_atomic_scales_with_vars(self):
        icvs, placement, c = setup(MILAN, force_reduction="atomic")
        one = reduction_seconds(icvs, placement, c, 1)
        four = reduction_seconds(icvs, placement, c, 4)
        assert four == pytest.approx(4 * one)

    def test_cross_socket_team_pays_distance(self):
        narrow_i, narrow_p, c = setup(
            MILAN, num_threads=8, places="ll_caches", proc_bind="master",
            force_reduction="tree",
        )
        wide_i, wide_p, _ = setup(
            MILAN, num_threads=8, places="sockets", proc_bind="spread",
            force_reduction="tree",
        )
        assert reduction_seconds(wide_i, wide_p, c, 1) > reduction_seconds(
            narrow_i, narrow_p, c, 1
        )

    def test_negative_vars_rejected(self):
        icvs, placement, c = setup(MILAN)
        with pytest.raises(ConfigError):
            reduction_seconds(icvs, placement, c, -1)


class TestBarrierBlocktime:
    def test_workers_asleep_logic(self):
        passive = resolve_icvs(EnvConfig(), MILAN)  # blocktime 200ms
        assert not workers_asleep(passive, 0.1)
        assert workers_asleep(passive, 0.3)
        zero = resolve_icvs(EnvConfig(blocktime="0"), MILAN)
        assert workers_asleep(zero, 1e-9)
        active = resolve_icvs(EnvConfig(library="turnaround"), MILAN)
        assert not workers_asleep(active, 100.0)
        infinite = resolve_icvs(EnvConfig(blocktime="infinite"), MILAN)
        assert not workers_asleep(infinite, 100.0)

    def test_fork_wake_penalty(self):
        icvs = resolve_icvs(EnvConfig(), MILAN)
        costs = get_costs("milan")
        awake = fork_seconds(icvs, costs, team_sleeping=False)
        asleep = fork_seconds(icvs, costs, team_sleeping=True)
        expected_extra = costs.wake_latency_us * 1e-6 * math.ceil(math.log2(96))
        assert asleep - awake == pytest.approx(expected_extra)

    def test_active_join_faster_than_passive(self):
        ia, pa, c = setup(MILAN, library="turnaround")
        ip, pp, _ = setup(MILAN)
        assert join_seconds(ia, pa, c) < join_seconds(ip, pp, c)

    def test_join_free_single_thread(self):
        icvs, placement, c = setup(MILAN, num_threads=1)
        assert join_seconds(icvs, placement, c) == 0.0

    def test_oversubscribed_join_stretches(self):
        io, po, c = setup(MILAN, places="sockets", proc_bind="master")
        ib, pb, _ = setup(MILAN, places="sockets", proc_bind="spread")
        assert join_seconds(io, po, c) > join_seconds(ib, pb, c)

    def test_serial_gap_passive_unchanged(self):
        icvs, placement, _ = setup(MILAN)
        assert serial_gap_seconds(icvs, placement, 0.5) == 0.5

    def test_serial_gap_spinners_sharing_master_core(self):
        # Active waiting + master binding: spinners pile onto core 0.
        icvs, placement, _ = setup(
            MILAN, library="turnaround", proc_bind="master"
        )
        assert serial_gap_seconds(icvs, placement, 0.1) > 0.1

    def test_serial_gap_bound_spread_spinners_harmless(self):
        icvs, placement, _ = setup(
            MILAN, library="turnaround", places="cores", proc_bind="spread"
        )
        assert serial_gap_seconds(icvs, placement, 0.1) == pytest.approx(0.1)


class TestAlignment:
    def test_default_neutral(self):
        icvs = resolve_icvs(EnvConfig(), MILAN)
        assert sync_alignment_factor(icvs, get_costs("milan")) == 1.0

    def test_padding_beyond_line_helps_slightly(self):
        icvs = resolve_icvs(EnvConfig(align_alloc=256), MILAN)
        f = sync_alignment_factor(icvs, get_costs("milan"))
        assert 0.9 < f < 1.0

    def test_wider_padding_helps_more(self):
        f128 = sync_alignment_factor(
            resolve_icvs(EnvConfig(align_alloc=128), MILAN), get_costs("milan")
        )
        f512 = sync_alignment_factor(
            resolve_icvs(EnvConfig(align_alloc=512), MILAN), get_costs("milan")
        )
        assert f512 < f128 < 1.0

    def test_sub_line_alignment_false_shares(self):
        icvs = resolve_icvs(EnvConfig(align_alloc=64), A64FX)  # 256B lines
        assert sync_alignment_factor(icvs, get_costs("a64fx")) > 1.0

    def test_a64fx_default_is_line(self):
        icvs = resolve_icvs(EnvConfig(), A64FX)
        assert sync_alignment_factor(icvs, get_costs("a64fx")) == 1.0


class TestMemoryModel:
    def test_migration_exposure_ordering(self):
        assert migration_exposure(MILAN) > migration_exposure(A64FX)
        assert migration_exposure(A64FX) > migration_exposure(SKYLAKE)

    def test_bound_bandwidth_scales_with_numa_used(self):
        _, spread, c = setup(MILAN, places="numa_domains", proc_bind="spread",
                             num_threads=96)
        _, packed, _ = setup(MILAN, places="numa_domains", proc_bind="master",
                             num_threads=12)
        assert available_bandwidth_gbps(spread, c) == pytest.approx(204.8)
        assert available_bandwidth_gbps(packed, c) == pytest.approx(25.6)

    def test_unbound_bandwidth_efficiency(self):
        _, p, c = setup(MILAN)
        assert available_bandwidth_gbps(p, c) == pytest.approx(
            c.unbound_bw_efficiency * 204.8
        )

    def test_no_demand_no_penalty_when_bound(self):
        _, p, c = setup(MILAN, places="cores", proc_bind="spread")
        assert memory_time_factor(p, c, 0.0, random_access=False) == 1.0

    def test_saturation_dilates_superlinearly(self):
        _, p, c = setup(MILAN, places="cores", proc_bind="spread")
        light = memory_time_factor(p, c, 1.0, random_access=False)
        heavy = memory_time_factor(p, c, 4.5, random_access=False)
        assert light == 1.0
        ratio = 4.5 * 96 / 204.8
        assert heavy == pytest.approx(ratio + 2.6 * (ratio - 1) ** 2)

    def test_random_access_unbound_pays_migration(self):
        _, unbound, c = setup(MILAN)
        _, bound, _ = setup(MILAN, places="cores", proc_bind="spread")
        f_unbound = memory_time_factor(unbound, c, 0.0, random_access=True)
        f_bound = memory_time_factor(bound, c, 0.0, random_access=True)
        assert f_bound == 1.0
        assert f_unbound > 1.2

    def test_streaming_unbound_no_migration_penalty(self):
        _, unbound, c = setup(MILAN)
        assert memory_time_factor(unbound, c, 0.0, random_access=False) == 1.0

    def test_arch_contrast_for_same_demand(self):
        # Identical per-thread demand saturates Milan, not A64FX.
        _, pm, cm = setup(MILAN, places="cores", proc_bind="spread")
        _, pa, ca = setup(A64FX, places="cores", proc_bind="spread")
        fm = memory_time_factor(pm, cm, 4.5, random_access=False)
        fa = memory_time_factor(pa, ca, 4.5, random_access=False)
        assert fm > 2.0
        assert fa == 1.0
