"""Tests for the executor-backend abstraction and the nodes backend.

The serial backend is the parity reference; the nodes backend runs one
process per shard over socketpair links with work stealing and a
budgeted node-loss recovery ladder.  These tests pin the shared
``stream`` contract (outcomes in task order, ledger accounting,
``completed_unyielded`` flush) and every rung of the recovery ladder:
retry, respawn, shard reassignment, and the no-survivors failure.

Runs under the ``chaos`` marker: most tests inject node-level faults.
"""

import time

import pytest

from repro.errors import PoisonBatchError, ResilienceError
from repro.resilience import (
    BACKEND_NAMES,
    ChaosFault,
    ChaosPlan,
    ExecutorBackend,
    FailureLedger,
    NodesBackend,
    RetryPolicy,
    SerialBackend,
    SerialChaosFault,
    Supervisor,
    install_chaos,
)
from repro.resilience.supervisor import SupervisedTask

pytestmark = pytest.mark.chaos

#: Fast retry policy so fault tests stay sub-second per retry round.
FAST = RetryPolicy(max_retries=2, base_delay_s=0.01, max_delay_s=0.05,
                   seed=0)


def _work(payload, attempt):
    """Picklable node body driven by its payload: (index, mode)."""
    index, mode = payload
    if mode == "error" and attempt == 0:
        raise ValueError("injected failure")
    if mode == "hang" and attempt == 0:
        time.sleep(60.0)
    if mode == "slow":
        time.sleep(0.3)
    if mode == "always-bad":
        return None
    return f"done-{index}"


def _validate(value):
    return None if isinstance(value, str) else "not a string"


def _tasks(modes, timeout_s=10.0):
    return [
        SupervisedTask(task_id=i, index=i, payload=(i, mode),
                       timeout_s=timeout_s)
        for i, mode in enumerate(modes)
    ]


def _node_plan(kind, index, attempts=(0,)):
    return ChaosPlan(seed=0, faults=(ChaosFault(kind, index, attempts),))


def _bad_init():
    raise RuntimeError("broken node image")


class TestProtocol:
    def test_backend_axis_names(self):
        assert BACKEND_NAMES == ("serial", "pool", "nodes")
        assert SerialBackend.name == "serial"
        assert Supervisor.name == "pool"
        assert NodesBackend.name == "nodes"

    def test_supervisor_is_a_virtual_backend(self):
        assert issubclass(Supervisor, ExecutorBackend)
        supervisor = Supervisor(_work, n_workers=1, policy=FAST)
        assert isinstance(supervisor, ExecutorBackend)
        supervisor.close()

    def test_every_backend_closes_idempotently(self):
        serial = SerialBackend(_work, policy=FAST)
        nodes = NodesBackend(_work, n_nodes=2, policy=FAST)
        for backend in (serial, nodes):
            backend.close()
            backend.close()


class TestSerialBackend:
    def test_results_stream_in_task_order(self):
        backend = SerialBackend(_work, policy=FAST)
        assert list(backend.stream(_tasks(["ok"] * 5))) == [
            f"done-{i}" for i in range(5)
        ]
        assert backend.ledger.build_report().clean

    def test_non_contiguous_task_ids_rejected(self):
        bad = [SupervisedTask(task_id=3, index=0, payload=(0, "ok"),
                              timeout_s=1.0)]
        with pytest.raises(ResilienceError):
            list(SerialBackend(_work, policy=FAST).stream(bad))

    def test_exception_retried_then_recovered(self):
        backend = SerialBackend(_work, policy=FAST)
        assert list(backend.stream(_tasks(["error", "ok"]))) == [
            "done-0", "done-1"
        ]
        report = backend.ledger.build_report()
        assert report.batches[0].attempts[0].kind == "error"
        assert report.batches[0].recovered

    def test_chaos_fault_books_its_kind(self):
        def flaky(payload, attempt):
            if payload[0] == 0 and attempt == 0:
                raise SerialChaosFault("node-lost",
                                       "injected node loss (serial mode)")
            return _work(payload, attempt)

        backend = SerialBackend(flaky, policy=FAST)
        assert list(backend.stream(_tasks(["x", "ok"]))) == [
            "done-0", "done-1"
        ]
        attempt = backend.ledger.build_report().batches[0].attempts[0]
        assert attempt.kind == "node-lost"
        assert "injected node loss" in attempt.cause

    def test_validation_failure_is_corrupt_result(self):
        backend = SerialBackend(_work, policy=FAST, validate=_validate)
        outcomes = list(backend.stream(_tasks(["always-bad", "ok"])))
        assert outcomes == [None, "done-1"]
        report = backend.ledger.build_report()
        assert report.batches[0].attempts[0].kind == "corrupt-result"
        assert not report.batches[0].recovered

    def test_fail_fast_raises_poison(self):
        backend = SerialBackend(_work, policy=FAST, validate=_validate,
                                fail_fast=True)
        with pytest.raises(PoisonBatchError, match="quarantined"):
            list(backend.stream(_tasks(["always-bad"])))

    def test_completed_unyielded_flushes_partial_progress(self):
        backend = SerialBackend(_work, policy=FAST)
        stream = backend.stream(_tasks(["ok", "ok", "ok"]))
        assert next(stream) == "done-0"
        stream.close()
        # Nothing landed-but-unconsumed here (serial yields eagerly),
        # but the protocol method must exist and return pairs.
        assert backend.completed_unyielded() == []


class TestNodesHappyPath:
    def test_results_stream_in_task_order(self):
        backend = NodesBackend(_work, n_nodes=3, policy=FAST)
        try:
            outcomes = list(backend.stream(_tasks(["ok"] * 9)))
        finally:
            backend.close()
        assert outcomes == [f"done-{i}" for i in range(9)]
        assert backend.ledger.build_report().clean
        report = backend.shard_report()
        assert report.n_shards == 3
        assert len(report.assignments) == 9

    def test_non_contiguous_task_ids_rejected(self):
        backend = NodesBackend(_work, n_nodes=1, policy=FAST)
        bad = [SupervisedTask(task_id=2, index=0, payload=(0, "ok"),
                              timeout_s=1.0)]
        with pytest.raises(ResilienceError):
            list(backend.stream(bad))

    def test_home_shard_override_validated(self):
        backend = NodesBackend(_work, n_nodes=2, policy=FAST)
        backend.home_shards = [0]
        with pytest.raises(ResilienceError):
            list(backend.stream(_tasks(["ok", "ok"])))

    def test_shared_ledger_is_used(self):
        ledger = FailureLedger(FAST, "degrade")
        backend = NodesBackend(_work, n_nodes=2, policy=FAST)
        list(backend.stream(_tasks(["ok", "ok"]), ledger))
        assert backend.ledger is ledger


class TestWorkStealing:
    def test_starved_shard_steals_and_order_is_preserved(self):
        # All six tasks homed on shard 0; shard 1 starts starved and
        # must steal, yet the outcome order never changes.
        backend = NodesBackend(_work, n_nodes=2, policy=FAST)
        backend.home_shards = [0] * 6
        modes = ["slow", "slow", "slow", "slow", "slow", "slow"]
        try:
            outcomes = list(backend.stream(_tasks(modes)))
        finally:
            backend.close()
        assert outcomes == [f"done-{i}" for i in range(6)]
        report = backend.shard_report()
        assert report.n_steals >= 1
        for steal in report.steals:
            assert steal.thief == 1
            assert steal.victim == 0
        # Stolen tasks are re-homed to the thief in the assignment map.
        assert 1 in report.assignments

    def test_no_steals_when_both_lanes_are_fed(self):
        backend = NodesBackend(_work, n_nodes=2, policy=FAST)
        backend.home_shards = [0, 1, 0, 1]
        try:
            outcomes = list(backend.stream(
                _tasks(["slow", "slow", "slow", "slow"])
            ))
        finally:
            backend.close()
        assert outcomes == [f"done-{i}" for i in range(4)]


class TestNodeFaultRecovery:
    def test_node_lost_mid_message_recovers(self):
        # The node sends half a result frame and dies (exit 23): the
        # parent books a node-lost failure, respawns, and the retry
        # lands.
        backend = NodesBackend(
            _work, initializer=install_chaos,
            initargs=(_node_plan("node-lost", 0),),
            n_nodes=2, policy=FAST,
        )
        try:
            outcomes = list(backend.stream(_tasks(["ok", "ok", "ok"])))
        finally:
            backend.close()
        assert outcomes == ["done-0", "done-1", "done-2"]
        batch = backend.ledger.build_report().batches[0]
        assert batch.attempts[0].kind == "node-lost"
        assert "exit code 23" in batch.attempts[0].cause
        assert batch.recovered
        assert backend.worker_respawns >= 1

    def test_shard_partition_at_boundary_recovers(self):
        backend = NodesBackend(
            _work, initializer=install_chaos,
            initargs=(_node_plan("shard-partition", 1),),
            n_nodes=2, policy=FAST,
        )
        try:
            outcomes = list(backend.stream(_tasks(["ok", "ok", "ok"])))
        finally:
            backend.close()
        assert outcomes == ["done-0", "done-1", "done-2"]
        batch = backend.ledger.build_report().batches[0]
        assert batch.index == 1
        assert batch.attempts[0].kind == "shard-partition"
        assert "exit code 24" in batch.attempts[0].cause
        assert batch.recovered

    def test_poison_node_fault_quarantines(self):
        backend = NodesBackend(
            _work, initializer=install_chaos,
            initargs=(_node_plan("node-lost", 0, attempts=None),),
            n_nodes=2, policy=FAST,
        )
        try:
            outcomes = list(backend.stream(_tasks(["ok", "ok"])))
        finally:
            backend.close()
        assert outcomes == [None, "done-1"]
        report = backend.ledger.build_report()
        assert report.n_quarantined == 1
        assert all(a.kind == "node-lost"
                   for a in report.batches[0].attempts)

    def test_hung_node_hits_the_deadline(self):
        backend = NodesBackend(_work, n_nodes=2, policy=FAST)
        try:
            outcomes = list(backend.stream(
                _tasks(["hang", "ok"], timeout_s=0.5)
            ))
        finally:
            backend.close()
        assert outcomes == ["done-0", "done-1"]
        batch = backend.ledger.build_report().batches[0]
        assert batch.attempts[0].kind == "timeout"
        assert backend.worker_respawns >= 1

    def test_worker_exception_is_a_plain_error(self):
        backend = NodesBackend(_work, n_nodes=2, policy=FAST)
        try:
            outcomes = list(backend.stream(_tasks(["error", "ok"])))
        finally:
            backend.close()
        assert outcomes == ["done-0", "done-1"]
        batch = backend.ledger.build_report().batches[0]
        assert batch.attempts[0].kind == "error"
        assert "injected failure" in batch.attempts[0].cause
        assert backend.worker_respawns == 0  # the node survived

    def test_validation_failure_is_corrupt_result(self):
        backend = NodesBackend(_work, n_nodes=2, policy=FAST,
                               validate=_validate)
        try:
            outcomes = list(backend.stream(_tasks(["always-bad", "ok"])))
        finally:
            backend.close()
        assert outcomes == [None, "done-1"]
        batch = backend.ledger.build_report().batches[0]
        assert batch.attempts[0].kind == "corrupt-result"

    def test_fail_fast_raises_poison(self):
        backend = NodesBackend(
            _work, initializer=install_chaos,
            initargs=(_node_plan("node-lost", 0, attempts=None),),
            n_nodes=2, policy=FAST, fail_fast=True,
        )
        try:
            with pytest.raises(PoisonBatchError, match="node-lost"):
                list(backend.stream(_tasks(["ok", "ok"])))
        finally:
            backend.close()


class TestReassignment:
    def test_exhausted_respawn_budget_reassigns_the_backlog(self):
        # Every attempt on batch 0 kills its node; with zero respawns
        # allowed the first loss abandons the shard and moves its
        # backlog to the survivor, which finishes everything.
        backend = NodesBackend(
            _work, initializer=install_chaos,
            initargs=(_node_plan("shard-partition", 0),),
            n_nodes=2, policy=FAST, max_node_respawns=0,
        )
        backend.home_shards = [0, 0, 0, 1]
        try:
            outcomes = list(backend.stream(_tasks(["ok"] * 4)))
        finally:
            backend.close()
        assert outcomes == [f"done-{i}" for i in range(4)]
        report = backend.shard_report()
        assert report.n_reassignments >= 1
        assert all(r.shard == 0 and r.target == 1
                   for r in report.reassignments)

    def test_no_survivors_raises(self):
        backend = NodesBackend(
            _work, initializer=install_chaos,
            initargs=(_node_plan("shard-partition", 0, attempts=None),),
            n_nodes=1, policy=FAST, max_node_respawns=0,
        )
        try:
            with pytest.raises(ResilienceError):
                list(backend.stream(_tasks(["ok", "ok"])))
        finally:
            backend.close()

    def test_reassignment_budget_is_enforced(self):
        # Two nodes, zero reassignments allowed: the first abandonment
        # must raise instead of silently shrinking the cluster forever.
        backend = NodesBackend(
            _work, initializer=install_chaos,
            initargs=(_node_plan("shard-partition", 0, attempts=None),),
            n_nodes=2, policy=FAST, max_node_respawns=0,
            max_reassignments=0,
        )
        try:
            with pytest.raises(ResilienceError, match="budget"):
                list(backend.stream(_tasks(["ok", "ok"])))
        finally:
            backend.close()


class TestInterruption:
    def test_completed_unyielded_after_partial_consumption(self):
        backend = NodesBackend(_work, n_nodes=2, policy=FAST)
        stream = backend.stream(_tasks(["slow", "ok", "ok"]))
        try:
            # Task 0 is slow, so later results land before it yields;
            # close the stream mid-flight and flush what completed.
            first = next(stream)
            assert first == "done-0"
        finally:
            stream.close()
            backend.close()
        flushed = backend.completed_unyielded()
        assert all(isinstance(tid, int) for tid, _v in flushed)
        assert all(v.startswith("done-") for _tid, v in flushed)

    def test_init_error_surfaces(self):
        backend = NodesBackend(_work, initializer=_bad_init, n_nodes=1,
                               policy=FAST)
        try:
            with pytest.raises(ResilienceError,
                               match="node initialization failed"):
                list(backend.stream(_tasks(["ok"])))
        finally:
            backend.close()


class TestProbeBackend:
    """The breaker's half-open health probe (one echo round-trip)."""

    def test_serial_always_healthy(self):
        from repro.resilience.backends import probe_backend

        assert probe_backend("serial") is True

    def test_pool_round_trip(self):
        from repro.resilience.backends import probe_backend

        assert probe_backend("pool", timeout_s=30.0) is True

    def test_nodes_round_trip(self):
        from repro.resilience.backends import probe_backend

        assert probe_backend("nodes", timeout_s=30.0) is True

    def test_unknown_backend_rejected(self):
        from repro.resilience.backends import probe_backend

        with pytest.raises(ResilienceError, match="unknown backend"):
            probe_backend("carrier-pigeon")


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """Never leak an installed plan into other tests in this process."""
    yield
    install_chaos(None)
