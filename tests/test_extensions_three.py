"""Tests for chunked schedules, the wait-policy space, per-kernel tuning
and the thread-count recommender."""

import numpy as np
import pytest

from repro.arch.machines import MILAN, SKYLAKE
from repro.core.envspace import (
    EnvSpace,
    chunked_schedule_variables,
    wait_policy_variables,
)
from repro.core.perkernel import per_kernel_tune
from repro.core.threads import recommend_threads
from repro.errors import ConfigError, InvalidEnvValue, WorkloadError
from repro.runtime.executor import execute
from repro.runtime.icv import EnvConfig, ScheduleKind, resolve_icvs
from repro.runtime.program import LoadPattern, Program, SerialPhase
from repro.workloads.base import get_workload
from repro.workloads.generator import (
    synthetic_loop_workload,
    synthetic_task_workload,
)


class TestChunkedSchedules:
    def test_parse_kind_and_chunk(self):
        icvs = resolve_icvs(EnvConfig(schedule="dynamic,64"), MILAN)
        assert icvs.schedule is ScheduleKind.DYNAMIC
        assert icvs.schedule_chunk == 64

    def test_plain_kind_has_no_chunk(self):
        icvs = resolve_icvs(EnvConfig(schedule="guided"), MILAN)
        assert icvs.schedule_chunk is None

    @pytest.mark.parametrize("bad", ["dynamic,0", "dynamic,-1", "dynamic,x",
                                     "fast,2", ",4", "dynamic,1,2"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(InvalidEnvValue):
            EnvConfig(schedule=bad).validate()

    def test_chunking_rescues_fine_grained_dynamic(self):
        prog = synthetic_loop_workload(n_iters=400_000, iter_work=2e-8,
                                       trips=2)
        plain = execute(prog, MILAN, EnvConfig(schedule="dynamic"))
        chunked = execute(prog, MILAN, EnvConfig(schedule="dynamic,512"))
        assert chunked < plain / 5

    def test_static_chunk_balances_ramp_without_dispatch(self):
        ramp = synthetic_loop_workload(
            n_iters=8000, iter_work=1e-6, trips=2,
            pattern=LoadPattern.LINEAR, imbalance=1.0,
        )
        contiguous = execute(ramp, SKYLAKE, EnvConfig(schedule="static"))
        round_robin = execute(ramp, SKYLAKE, EnvConfig(schedule="static,8"))
        assert round_robin < contiguous

    def test_static_chunk_never_worse_than_contiguous(self):
        for pattern, imb in ((LoadPattern.UNIFORM, 0.0),
                             (LoadPattern.LINEAR, 1.0),
                             (LoadPattern.RANDOM, 0.8)):
            prog = synthetic_loop_workload(
                n_iters=5000, iter_work=1e-6, pattern=pattern,
                imbalance=imb, trips=1,
            )
            contiguous = execute(prog, MILAN, EnvConfig(schedule="static"))
            chunked = execute(prog, MILAN, EnvConfig(schedule="static,4"))
            assert chunked <= contiguous * 1.0001, pattern

    def test_chunked_space_valid(self):
        space = EnvSpace(chunked_schedule_variables())
        for config in space.ofat_grid(MILAN):
            config.validate()
            resolve_icvs(config.with_threads(8), MILAN)

    def test_guided_min_chunk_reduces_dispatches(self):
        from repro.arch.machines import MILAN as M
        from repro.runtime.affinity import compute_placement
        from repro.runtime.costs import get_costs
        from repro.runtime.program import LoopRegion
        from repro.runtime.schedule import price_loop_schedule

        region = LoopRegion("l", n_iters=100_000, iter_work=1e-7)

        def chunks(schedule):
            icvs = resolve_icvs(EnvConfig(schedule=schedule), M)
            placement = compute_placement(icvs, M)
            speeds = placement.effective_speed()
            return price_loop_schedule(
                region, icvs, M, get_costs("milan"),
                float(speeds.sum()), float(1 / speeds.min()),
            ).n_chunks

        assert chunks("guided,512") < chunks("guided")


class TestWaitPolicySpace:
    def test_space_shrinks(self):
        full = EnvSpace()
        wp = EnvSpace(wait_policy_variables())
        assert wp.size(MILAN) == full.size(MILAN) // 2
        names = [v.env_name for v in wp.variables]
        assert "OMP_WAIT_POLICY" in names
        assert "KMP_LIBRARY" not in names and "KMP_BLOCKTIME" not in names

    def test_wait_policy_active_equals_turnaround_for_tasks(self):
        """Sec. V-3: tuning OMP_WAIT_POLICY alone captures the wait-policy
        gain the two KMP_* variables expose."""
        prog = get_workload("nqueens").program("large")
        via_kmp = execute(prog, MILAN, EnvConfig(library="turnaround"))
        via_policy = execute(prog, MILAN, EnvConfig(blocktime="infinite"))
        assert via_policy == pytest.approx(via_kmp, rel=1e-9)

    def test_tuning_wait_policy_space_matches_full_for_task_app(self):
        from repro.core.pruning import hill_climb

        prog = get_workload("nqueens").program("medium")
        full = hill_climb(prog, MILAN, EnvSpace(), restarts=0, seed=1)
        wp = hill_climb(prog, MILAN, EnvSpace(wait_policy_variables()),
                        restarts=0, seed=1)
        assert wp.evaluations < full.evaluations
        assert wp.best_runtime <= full.best_runtime * 1.05


class TestPerKernelTuning:
    @pytest.fixture(scope="class")
    def mixed_program(self):
        loop = synthetic_loop_workload(
            n_iters=3000, iter_work=1e-6, pattern=LoadPattern.LINEAR,
            imbalance=1.2, trips=5, n_regions=1,
        )
        task = synthetic_task_workload(depth=6, branching=3, leaf_work=1e-6)
        return Program("mixed", loop.phases + task.phases[1:])

    def test_per_kernel_at_least_whole_app(self, mixed_program):
        res = per_kernel_tune(mixed_program, MILAN, restarts=0)
        assert res.per_kernel_speedup >= res.whole_app_speedup - 1e-9
        assert res.per_kernel_gain >= 1.0 - 1e-9
        assert res.whole_app_speedup > 1.2

    def test_region_reports(self, mixed_program):
        res = per_kernel_tune(mixed_program, MILAN, restarts=0)
        assert {r.region for r in res.regions} == {"region0", "tree"}
        for r in res.regions:
            assert r.speedup >= 1.0 - 1e-9

    def test_serial_only_program_rejected(self):
        prog = Program("serial", (SerialPhase(work=1.0),))
        with pytest.raises(WorkloadError):
            per_kernel_tune(prog, MILAN)

    def test_deterministic(self, mixed_program):
        a = per_kernel_tune(mixed_program, MILAN, restarts=0, seed=3)
        b = per_kernel_tune(mixed_program, MILAN, restarts=0, seed=3)
        assert a == b


class TestThreadRecommender:
    def test_bandwidth_bound_app_wants_fewer_threads(self):
        rec = recommend_threads(
            get_workload("su3bench").program("default"), MILAN
        )
        assert rec.best_threads < MILAN.n_cores
        assert rec.speedup_over_full_machine > 1.5
        assert "bandwidth" in rec.reason
        assert rec.bandwidth_saturation_threads is not None

    def test_compute_bound_app_wants_full_machine(self):
        rec = recommend_threads(get_workload("ep").program("A"), MILAN)
        assert rec.best_threads == MILAN.n_cores
        assert "compute" in rec.reason

    def test_curve_is_complete(self):
        rec = recommend_threads(get_workload("ep").program("S"), SKYLAKE)
        threads = [t for t, _ in rec.curve]
        assert threads == sorted(threads)
        assert threads[-1] == SKYLAKE.n_cores

    def test_custom_candidates(self):
        rec = recommend_threads(
            get_workload("ep").program("S"), MILAN, candidates=(8, 16)
        )
        assert rec.best_threads in (8, 16)

    def test_invalid_candidates(self):
        with pytest.raises(ConfigError):
            recommend_threads(get_workload("ep").program("S"), MILAN,
                              candidates=(0,))
