"""Tests for the worksharing-loop schedule model, including validation of
the closed-form balance factors against brute-force chunk simulations."""

import math

import numpy as np
import pytest

from repro.arch.machines import MILAN, SKYLAKE
from repro.runtime.affinity import compute_placement
from repro.runtime.costs import get_costs, work_seconds
from repro.runtime.icv import EnvConfig, resolve_icvs
from repro.runtime.program import LoadPattern, LoopRegion
from repro.runtime.schedule import price_loop_schedule, static_balance_factor


def price(region, machine=SKYLAKE, **env):
    icvs = resolve_icvs(EnvConfig(**env), machine)
    placement = compute_placement(icvs, machine)
    speeds = placement.effective_speed()
    return price_loop_schedule(
        region,
        icvs,
        machine,
        get_costs(machine.name),
        float(speeds.sum()),
        float(1.0 / speeds.min()),
    )


def loop(**kwargs):
    defaults = dict(name="l", n_iters=100_000, iter_work=1e-6)
    defaults.update(kwargs)
    return LoopRegion(**defaults)


class TestStaticBalanceFactor:
    def test_uniform_divisible(self):
        assert static_balance_factor(LoadPattern.UNIFORM, 0, 1000, 10) == 1.0

    def test_uniform_remainder(self):
        # 11 iters on 10 threads: one thread gets 2 -> 2/(11/10) = 1.818...
        f = static_balance_factor(LoadPattern.UNIFORM, 0, 11, 10)
        assert f == pytest.approx(2 / 1.1)

    def test_single_thread_is_one(self):
        assert static_balance_factor(LoadPattern.LINEAR, 1.0, 100, 1) == 1.0

    def test_linear_matches_bruteforce(self):
        n, T, slope = 10_000, 16, 0.8
        costs = 1.0 + slope * (np.arange(n) / n - 0.5)
        block_sums = [c.sum() for c in np.array_split(costs, T)]
        brute = max(block_sums) / (costs.sum() / T)
        model = static_balance_factor(LoadPattern.LINEAR, slope, n, T)
        assert model == pytest.approx(brute, rel=0.02)

    def test_random_tracks_bruteforce(self):
        n, T, sigma = 20_000, 32, 0.6
        rng = np.random.default_rng(0)
        ratios = []
        for _ in range(30):
            costs = np.maximum(rng.normal(1.0, sigma, size=n), 0.0)
            block_sums = [c.sum() for c in np.array_split(costs, T)]
            ratios.append(max(block_sums) / (costs.sum() / T))
        brute = float(np.mean(ratios))
        model = static_balance_factor(LoadPattern.RANDOM, sigma, n, T)
        assert model == pytest.approx(brute, rel=0.05)

    def test_more_threads_more_imbalance(self):
        f8 = static_balance_factor(LoadPattern.RANDOM, 0.5, 10_000, 8)
        f64 = static_balance_factor(LoadPattern.RANDOM, 0.5, 10_000, 64)
        assert f64 > f8


class TestSchedulePricing:
    def test_single_thread_serial(self):
        region = loop(n_iters=100, iter_work=1e-4)
        out = price(region, num_threads=1)
        assert out.compute_seconds == pytest.approx(
            work_seconds(region.total_work, SKYLAKE)
        )
        assert out.overhead_seconds == 0.0

    def test_static_no_dispatch_overhead(self):
        out = price(loop())
        assert out.overhead_seconds == 0.0

    def test_auto_equals_static(self):
        region = loop()
        assert price(region, schedule="auto") == price(region, schedule="static")

    def test_fixed_schedule_overrides_env(self):
        region = loop(fixed_schedule="dynamic", fixed_chunk=100)
        a = price(region, schedule="static")
        b = price(region, schedule="guided")
        assert a == b  # env schedule irrelevant

    def test_dynamic_beats_static_on_imbalanced(self):
        region = loop(
            n_iters=4_000,
            iter_work=2e-5,
            pattern=LoadPattern.LINEAR,
            imbalance=1.0,
        )
        st = price(region, schedule="static")
        dy = price(region, schedule="dynamic")
        assert (
            dy.compute_seconds + dy.overhead_seconds
            < st.compute_seconds + st.overhead_seconds
        )

    def test_dynamic_dispatch_catastrophic_on_tiny_iters(self):
        region = loop(n_iters=1_000_000, iter_work=2e-9)
        st = price(region, schedule="static")
        dy = price(region, schedule="dynamic")
        total_st = st.compute_seconds + st.overhead_seconds
        total_dy = dy.compute_seconds + dy.overhead_seconds
        assert total_dy > 5 * total_st  # counter-bound

    def test_dynamic_chunking_tames_dispatch(self):
        fine = loop(n_iters=1_000_000, iter_work=2e-9,
                    fixed_schedule="dynamic", fixed_chunk=1)
        chunked = loop(n_iters=1_000_000, iter_work=2e-9,
                       fixed_schedule="dynamic", fixed_chunk=1000)
        a = price(fine)
        b = price(chunked)
        assert (b.compute_seconds + b.overhead_seconds
                < a.compute_seconds + a.overhead_seconds)
        assert b.n_chunks == 1000

    def test_guided_fewer_chunks_than_dynamic(self):
        region = loop(n_iters=100_000)
        dy = price(region, schedule="dynamic")
        gu = price(region, schedule="guided")
        assert gu.n_chunks < dy.n_chunks
        assert gu.overhead_seconds < dy.overhead_seconds

    def test_guided_balances_imbalanced_loop(self):
        region = loop(
            n_iters=50_000,
            iter_work=1e-6,
            pattern=LoadPattern.RANDOM,
            imbalance=0.8,
        )
        st = price(region, schedule="static")
        gu = price(region, schedule="guided")
        assert gu.balance_factor < st.balance_factor

    def test_self_scheduling_never_balances_worse_than_static(self):
        for pattern, imb in [
            (LoadPattern.UNIFORM, 0.0),
            (LoadPattern.LINEAR, 1.2),
            (LoadPattern.RANDOM, 0.9),
        ]:
            region = loop(n_iters=300, iter_work=1e-5, pattern=pattern,
                          imbalance=imb)
            st = price(region, machine=MILAN, schedule="static")
            for sched in ("dynamic", "guided"):
                out = price(region, machine=MILAN, schedule=sched)
                assert out.balance_factor <= st.balance_factor + 1e-12

    def test_fewer_iterations_than_threads_caps_parallelism(self):
        # 20 iterations on 96 threads: no schedule can beat total/20.
        region = loop(n_iters=20, iter_work=1e-4)
        floor = work_seconds(region.total_work, MILAN) / 20
        for sched in ("static", "dynamic", "guided"):
            out = price(region, machine=MILAN, schedule=sched)
            assert out.compute_seconds >= floor * 0.999, sched

    def test_oversubscription_slows_static_more_than_dynamic(self):
        # 144 unbound threads on 96 cores: half the cores timeshare two
        # threads.  Static is bound by the slowest thread; dynamic runs at
        # the team's aggregate rate.
        region = loop(n_iters=100_000, iter_work=1e-6)
        st = price(region, machine=MILAN, schedule="static", num_threads=144)
        dy = price(region, machine=MILAN, schedule="dynamic", num_threads=144)
        assert st.compute_seconds > 1.2 * dy.compute_seconds

    def test_balance_factor_at_least_one(self):
        for sched in ("static", "dynamic", "guided"):
            out = price(loop(), schedule=sched)
            assert out.balance_factor >= 1.0
