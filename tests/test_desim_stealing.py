"""Tests for the work-stealing task-pool simulator."""

import numpy as np
import pytest

from repro.desim.stealing import StealResult, Task, TaskGraph, WorkStealingSimulator
from repro.errors import SimulationError


class TestTaskGraph:
    def test_balanced_tree_counts(self):
        g = TaskGraph.balanced_tree(depth=3, branching=2, leaf_work=1.0)
        assert g.n_tasks == 15
        assert sum(1 for t in g.tasks if not t.children) == 8
        assert g.total_work == pytest.approx(8.0)

    def test_critical_path(self):
        g = TaskGraph.balanced_tree(depth=3, branching=2, leaf_work=1.0,
                                    node_work=0.5)
        assert g.critical_path() == pytest.approx(3 * 0.5 + 1.0)

    def test_critical_path_unbalanced(self):
        g = TaskGraph()
        leaf_deep = g.add(5.0)
        mid = g.add(1.0, (leaf_deep,))
        leaf_shallow = g.add(0.5)
        g.root = g.add(1.0, (mid, leaf_shallow))
        assert g.critical_path() == pytest.approx(7.0)

    def test_negative_work_rejected(self):
        with pytest.raises(SimulationError):
            Task(0, -1.0)

    def test_bad_tree_shape(self):
        with pytest.raises(SimulationError):
            TaskGraph.balanced_tree(depth=-1, branching=2, leaf_work=1.0)


class TestSimulator:
    def test_single_worker_serial_time(self):
        g = TaskGraph.balanced_tree(depth=4, branching=2, leaf_work=1.0,
                                    node_work=0.25)
        sim = WorkStealingSimulator(n_workers=1, spawn_overhead=0.0)
        res = sim.run(g)
        assert res.makespan == pytest.approx(g.total_work)
        assert res.steals == 0

    def test_parallel_speedup(self):
        g = TaskGraph.balanced_tree(depth=8, branching=2, leaf_work=1.0)
        t1 = WorkStealingSimulator(1, steal_latency=1e-3).run(g).makespan
        t8 = WorkStealingSimulator(8, steal_latency=1e-3).run(g).makespan
        assert t1 / t8 > 5.0  # near-linear scaling on 256 coarse leaves

    def test_makespan_bounds(self):
        g = TaskGraph.balanced_tree(depth=6, branching=3, leaf_work=0.7,
                                    node_work=0.1)
        for workers in (2, 4, 16):
            res = WorkStealingSimulator(workers, steal_latency=1e-4).run(g)
            assert res.makespan >= g.total_work / workers - 1e-12
            assert res.makespan >= g.critical_path() - 1e-12
            # Within 3x of the greedy-scheduling bound.
            greedy = g.total_work / workers + g.critical_path()
            assert res.makespan < 3 * greedy

    def test_work_conservation(self):
        g = TaskGraph.balanced_tree(depth=5, branching=2, leaf_work=1.0)
        res = WorkStealingSimulator(4, spawn_overhead=0.0).run(g)
        assert res.busy_time == pytest.approx(g.total_work)

    def test_deterministic(self):
        g = TaskGraph.balanced_tree(depth=6, branching=2, leaf_work=0.3)
        a = WorkStealingSimulator(4, seed=5).run(g)
        b = WorkStealingSimulator(4, seed=5).run(g)
        assert a == b

    def test_seed_changes_trajectory(self):
        g = TaskGraph.balanced_tree(depth=7, branching=2, leaf_work=0.3)
        a = WorkStealingSimulator(6, seed=1).run(g)
        b = WorkStealingSimulator(6, seed=2).run(g)
        assert a.steals != b.steals or a.makespan != b.makespan

    def test_slow_workers_slow_makespan(self):
        g = TaskGraph.balanced_tree(depth=6, branching=2, leaf_work=1.0)
        fast = WorkStealingSimulator(4).run(g).makespan
        slow = WorkStealingSimulator(4).run(
            g, worker_speeds=np.array([0.5, 0.5, 0.5, 0.5])
        ).makespan
        assert slow == pytest.approx(2 * fast, rel=0.25)

    def test_higher_steal_latency_hurts(self):
        g = TaskGraph.balanced_tree(depth=9, branching=2, leaf_work=1e-5)
        cheap = WorkStealingSimulator(8, steal_latency=1e-7, seed=0).run(g)
        costly = WorkStealingSimulator(8, steal_latency=1e-4, seed=0).run(g)
        assert costly.makespan > cheap.makespan

    def test_empty_graph(self):
        res = WorkStealingSimulator(4).run(TaskGraph())
        assert res.makespan == 0.0 and res.n_tasks == 0

    def test_utilization_in_unit_range(self):
        g = TaskGraph.balanced_tree(depth=6, branching=2, leaf_work=0.5)
        res = WorkStealingSimulator(4).run(g)
        assert 0.0 < res.utilization <= 1.0

    def test_speedup_over_serial(self):
        g = TaskGraph.balanced_tree(depth=8, branching=2, leaf_work=1.0)
        res = WorkStealingSimulator(8, steal_latency=1e-4).run(g)
        assert res.speedup_over_serial > 4.0

    def test_bad_worker_speeds(self):
        g = TaskGraph.balanced_tree(depth=2, branching=2, leaf_work=1.0)
        with pytest.raises(SimulationError):
            WorkStealingSimulator(2).run(g, worker_speeds=np.array([1.0]))
        with pytest.raises(SimulationError):
            WorkStealingSimulator(2).run(g, worker_speeds=np.array([1.0, 0.0]))

    def test_invalid_parameters(self):
        with pytest.raises(SimulationError):
            WorkStealingSimulator(0)
        with pytest.raises(SimulationError):
            WorkStealingSimulator(1, steal_latency=0.0)


class TestStealResult:
    def test_zero_makespan_degenerate(self):
        res = StealResult(0.0, 0.0, 0, 0, 0, 0.0, 4)
        assert res.utilization == 1.0
        assert res.speedup_over_serial == 1.0
