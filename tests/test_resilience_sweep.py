"""End-to-end fault injection into the sweep engine (``-m chaos``).

These tests drive :func:`repro.core.sweep.run_sweep` through seeded
:class:`~repro.resilience.chaos.ChaosPlan` scenarios and assert the
acceptance contract of the resilience layer: degrade-mode sweeps finish,
every injected fault is named in the failure report, and degrade+resume
reproduces the fault-free dataset bit-for-bit.
"""

import threading

import pytest

from repro.core.cache import SweepCache
from repro.core.sweep import SweepPlan, plan_batches, run_sweep
from repro.errors import PoisonBatchError, SweepCancelledError
from repro.resilience import ChaosFault, ChaosPlan, RetryPolicy

pytestmark = pytest.mark.chaos

#: Retries resolve in milliseconds so a full chaos cycle stays fast.
FAST = RetryPolicy(max_retries=2, base_delay_s=0.01, seed=11)


@pytest.fixture(scope="module")
def plan():
    return SweepPlan(arch="milan", workload_names=("cg", "ep", "nqueens"),
                     scale="small", repetitions=2, inputs_limit=2)


@pytest.fixture(scope="module")
def clean_records(plan):
    return run_sweep(plan).records


class TestCleanRuns:
    def test_fault_free_sweep_reports_clean(self, plan, clean_records):
        result = run_sweep(plan, n_processes=2, fail_policy="degrade")
        assert result.records == clean_records
        assert result.n_quarantined_batches == 0
        assert result.failure_report is not None
        assert result.failure_report.clean


class TestAcceptanceScenario:
    def test_degrade_then_resume_matches_fault_free(self, tmp_path, plan,
                                                    clean_records):
        """The ISSUE acceptance scenario: crash + hang + corrupt payload +
        poison + on-disk cache corruption into a 2-process sweep."""
        n_batches = len(plan_batches(plan))
        chaos = ChaosPlan.generate(n_batches, seed=11, crashes=1, hangs=1,
                                   corrupt_results=1, cache_faults=1,
                                   poison=1)
        degraded = run_sweep(
            plan, n_processes=2, cache=SweepCache(tmp_path / "cache"),
            fail_policy="degrade", chaos=chaos, retry=FAST,
            batch_timeout_s=5.0,
        )
        report = degraded.failure_report

        # The sweep completed in degrade mode with the poison batch
        # quarantined, and the report names every injected fault.
        assert degraded.n_quarantined_batches == 1
        assert report.n_quarantined == 1
        assert report.injected == chaos.describe()
        recorded_kinds = {
            a.kind for b in report.batches for a in b.attempts
        }
        assert {"crash", "timeout", "corrupt-result"} <= recorded_kinds
        failed_indices = {b.index for b in report.batches}
        worker_fault_indices = {
            f.batch_index for f in chaos.faults
            if not f.kind.startswith("cache-")
        }
        assert failed_indices == worker_fault_indices

        # Resume over the same cache: the quarantined batch is
        # re-simulated, the cache corruption trips the checksum, and the
        # final records are bit-identical to the fault-free sweep.
        resume_cache = SweepCache(tmp_path / "cache")
        resumed = run_sweep(plan, cache=resume_cache,
                            fail_policy="degrade")
        assert len(resume_cache.corrupt_keys) == 1
        assert resume_cache.corrupt_path_for(
            resume_cache.corrupt_keys[0]
        ).exists()
        assert resumed.n_quarantined_batches == 0
        assert resumed.records == clean_records

    def test_failure_report_is_deterministic(self, plan):
        """Same ChaosPlan, same report — bit-identical content (no
        wall-clock, no worker ids)."""
        n_batches = len(plan_batches(plan))
        chaos = ChaosPlan.generate(n_batches, seed=11, crashes=1, hangs=1,
                                   corrupt_results=1, poison=1,
                                   cache_faults=0)
        reports = [
            run_sweep(plan, n_processes=2, fail_policy="degrade",
                      chaos=chaos, retry=FAST,
                      batch_timeout_s=5.0).failure_report.to_dict()
            for _ in range(2)
        ]
        assert reports[0] == reports[1]


class TestSerialChaos:
    def test_serial_path_simulates_worker_faults(self, plan,
                                                 clean_records):
        """``n_processes=1`` records the same fault kinds without real
        process kills, so the two paths stay report-compatible."""
        n_batches = len(plan_batches(plan))
        chaos = ChaosPlan.generate(n_batches, seed=11, crashes=1, hangs=1,
                                   corrupt_results=1, cache_faults=0,
                                   poison=0)
        result = run_sweep(plan, fail_policy="degrade", chaos=chaos,
                           retry=FAST)
        report = result.failure_report
        assert result.records == clean_records
        assert result.n_quarantined_batches == 0
        assert report.n_recovered == 3
        recorded_kinds = {
            a.kind for b in report.batches for a in b.attempts
        }
        assert recorded_kinds == {"crash", "timeout", "corrupt-result"}

    def test_poison_raises_under_strict_policy(self, plan):
        chaos = ChaosPlan(seed=0, faults=(
            ChaosFault("crash", 0, attempts=None),
        ))
        with pytest.raises(PoisonBatchError):
            run_sweep(plan, fail_policy="raise", chaos=chaos, retry=FAST)

    def test_invalid_fail_policy_rejected(self, plan):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            run_sweep(plan, fail_policy="shrug")


class TestErrorPathFlushesCache:
    def test_landed_batches_cached_before_reraise(self, tmp_path, plan):
        """A sweep aborted by a poison batch must flush every batch that
        already completed to the cache, so the retry resumes instead of
        restarting from zero."""
        chaos = ChaosPlan(seed=0, faults=(
            ChaosFault("crash", 0, attempts=None),
        ))
        cache = SweepCache(tmp_path / "cache")
        with pytest.raises(PoisonBatchError) as excinfo:
            run_sweep(plan, n_processes=2, cache=cache,
                      fail_policy="raise", chaos=chaos, retry=FAST,
                      batch_timeout_s=5.0)
        assert excinfo.value.report is not None
        assert excinfo.value.report.n_quarantined == 1
        n_landed = len(cache)
        assert n_landed > 0, "completed batches must land in the cache"

        # And the resume completes the sweep from those entries.
        resumed = run_sweep(plan, cache=SweepCache(tmp_path / "cache"))
        assert resumed.n_cached_batches == n_landed
        assert resumed.records == run_sweep(plan).records


class TestCancellation:
    """Cooperative cancellation — the serving daemon's deadline/drain hook."""

    def test_preset_handle_aborts_before_any_batch(self, tmp_path, plan):
        cancel = threading.Event()
        cancel.set()
        cache = SweepCache(tmp_path / "cache")
        with pytest.raises(SweepCancelledError, match="cancelled"):
            run_sweep(plan, cache=cache, cancel=cancel)
        assert len(cache) == 0

    def test_mid_sweep_cancel_flushes_landed_batches(self, tmp_path, plan,
                                                     clean_records):
        """Cancel between batches: everything already landed is flushed
        to the cache before the raise, so the resume picks up exactly
        where the cancelled sweep stopped — the drain/restart contract
        the daemon's journal replay depends on."""
        cancel = threading.Event()

        def stop_after_first(done, total, app, input_size, nthreads):
            cancel.set()

        cache = SweepCache(tmp_path / "cache")
        with pytest.raises(SweepCancelledError):
            run_sweep(plan, cache=cache, progress=stop_after_first,
                      cancel=cancel)
        n_landed = len(cache)
        assert n_landed > 0, "completed batches must land in the cache"
        assert n_landed < len(plan_batches(plan))

        resumed = run_sweep(plan, cache=cache)
        assert resumed.n_cached_batches == n_landed
        assert resumed.records == clean_records

    def test_cancelled_is_a_resilience_error_subtype(self):
        """The daemon relies on the (documented) inheritance: cancel must
        be catchable separately *before* the generic degrade handler."""
        from repro.errors import ResilienceError

        assert issubclass(SweepCancelledError, ResilienceError)

    def test_unset_handle_is_inert(self, plan, clean_records):
        cancel = threading.Event()
        result = run_sweep(plan, cancel=cancel)
        assert result.records == clean_records
