"""Tests for the discrete-event kernel and synchronization primitives."""

import pytest

from repro.desim.engine import Engine, Event, Process, Timeout
from repro.desim.resources import Barrier, Lock, Semaphore
from repro.errors import DeadlockError, SimulationError


class TestEngineBasics:
    def test_timeout_ordering(self):
        eng = Engine()
        log = []

        def worker(name, delay):
            yield Timeout(delay)
            log.append((eng.now, name))

        eng.process(worker("late", 2.0))
        eng.process(worker("early", 1.0))
        eng.run()
        assert log == [(1.0, "early"), (2.0, "late")]

    def test_tie_break_by_creation_order(self):
        eng = Engine()
        log = []

        def worker(name):
            yield Timeout(1.0)
            log.append(name)

        for n in "abc":
            eng.process(worker(n))
        eng.run()
        assert log == ["a", "b", "c"]

    def test_process_result(self):
        eng = Engine()

        def compute():
            yield Timeout(1.0)
            return 42

        proc = eng.process(compute())
        eng.run()
        assert proc.done
        assert proc.result == 42

    def test_join_process(self):
        eng = Engine()
        log = []

        def child():
            yield Timeout(3.0)
            return "payload"

        def parent():
            c = eng.process(child())
            value = yield c
            log.append((eng.now, value))

        eng.process(parent())
        eng.run()
        assert log == [(3.0, "payload")]

    def test_event_value_delivery(self):
        eng = Engine()
        gate = eng.event()
        got = []

        def waiter():
            value = yield gate
            got.append(value)

        def firer():
            yield Timeout(5.0)
            gate.succeed("hello")

        eng.process(waiter())
        eng.process(firer())
        eng.run()
        assert got == ["hello"]
        assert gate.triggered and gate.value == "hello"

    def test_wait_on_triggered_event_immediate(self):
        eng = Engine()
        gate = eng.event()
        gate.succeed(7)
        got = []

        def waiter():
            got.append((yield gate))

        eng.process(waiter())
        eng.run()
        assert got == [7]

    def test_double_succeed_rejected(self):
        eng = Engine()
        gate = eng.event()
        gate.succeed()
        with pytest.raises(SimulationError):
            gate.succeed()

    def test_negative_timeout_rejected(self):
        with pytest.raises(SimulationError):
            Timeout(-1.0)

    def test_bad_yield_rejected(self):
        eng = Engine()

        def bad():
            yield 123

        eng.process(bad())
        with pytest.raises(SimulationError):
            eng.run()

    def test_deadlock_detection(self):
        eng = Engine()
        gate = eng.event()  # never succeeds

        def stuck():
            yield gate

        eng.process(stuck())
        with pytest.raises(DeadlockError):
            eng.run()

    def test_run_until(self):
        eng = Engine()

        def worker():
            yield Timeout(10.0)

        eng.process(worker())
        assert eng.run(until=5.0) == 5.0
        assert eng.run() == 10.0

    def test_non_generator_rejected(self):
        eng = Engine()
        with pytest.raises(SimulationError):
            Process(eng, lambda: None)  # type: ignore[arg-type]


class TestLock:
    def test_mutual_exclusion_and_fifo(self):
        eng = Engine()
        lock = Lock(eng)
        log = []

        def worker(name, hold):
            yield from lock.acquire()
            log.append(("in", name, eng.now))
            yield Timeout(hold)
            log.append(("out", name, eng.now))
            lock.release()

        eng.process(worker("a", 2.0))
        eng.process(worker("b", 1.0))
        eng.process(worker("c", 1.0))
        eng.run()
        # Critical sections never overlap, FIFO order preserved.
        assert [e[1] for e in log] == ["a", "a", "b", "b", "c", "c"]
        assert log[2][2] == 2.0 and log[4][2] == 3.0
        assert lock.acquisitions == 3
        assert lock.contentions == 2

    def test_release_unheld_rejected(self):
        eng = Engine()
        with pytest.raises(SimulationError):
            Lock(eng).release()

    def test_uncontended_acquire_is_immediate(self):
        eng = Engine()
        lock = Lock(eng)
        times = []

        def worker():
            yield from lock.acquire()
            times.append(eng.now)
            lock.release()
            yield Timeout(0.0)

        eng.process(worker())
        eng.run()
        assert times == [0.0]


class TestSemaphore:
    def test_counting(self):
        eng = Engine()
        sem = Semaphore(eng, value=2)
        running = []
        peak = []

        def worker(i):
            yield from sem.acquire()
            running.append(i)
            peak.append(len(running))
            yield Timeout(1.0)
            running.remove(i)
            sem.release()

        for i in range(5):
            eng.process(worker(i))
        eng.run()
        assert max(peak) == 2  # never more than 2 concurrent holders

    def test_negative_value_rejected(self):
        with pytest.raises(SimulationError):
            Semaphore(Engine(), value=-1)


class TestBarrier:
    def test_all_released_at_last_arrival(self):
        eng = Engine()
        bar = Barrier(eng, parties=3)
        released = []

        def worker(delay):
            yield Timeout(delay)
            yield from bar.wait()
            released.append(eng.now)

        for d in (1.0, 2.0, 5.0):
            eng.process(worker(d))
        eng.run()
        assert released == [5.0, 5.0, 5.0]
        assert bar.generations == 1

    def test_cyclic_reuse(self):
        eng = Engine()
        bar = Barrier(eng, parties=2)
        log = []

        def worker(name):
            for phase in range(3):
                yield Timeout(1.0)
                yield from bar.wait()
                log.append((phase, name, eng.now))

        eng.process(worker("a"))
        eng.process(worker("b"))
        eng.run()
        assert bar.generations == 3
        assert [e[2] for e in log] == [1.0, 1.0, 2.0, 2.0, 3.0, 3.0]

    def test_single_party_never_blocks(self):
        eng = Engine()
        bar = Barrier(eng, parties=1)

        def worker():
            yield from bar.wait()
            return "done"

        proc = eng.process(worker())
        eng.run()
        assert proc.result == "done"

    def test_invalid_parties(self):
        with pytest.raises(SimulationError):
            Barrier(Engine(), parties=0)
