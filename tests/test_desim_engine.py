"""Tests for the discrete-event kernel and synchronization primitives."""

import pytest

from repro.desim.engine import Engine, Event, Process, Timeout
from repro.desim.resources import Barrier, Lock, Semaphore
from repro.errors import DeadlockError, SimulationError


class TestEngineBasics:
    def test_timeout_ordering(self):
        eng = Engine()
        log = []

        def worker(name, delay):
            yield Timeout(delay)
            log.append((eng.now, name))

        eng.process(worker("late", 2.0))
        eng.process(worker("early", 1.0))
        eng.run()
        assert log == [(1.0, "early"), (2.0, "late")]

    def test_tie_break_by_creation_order(self):
        eng = Engine()
        log = []

        def worker(name):
            yield Timeout(1.0)
            log.append(name)

        for n in "abc":
            eng.process(worker(n))
        eng.run()
        assert log == ["a", "b", "c"]

    def test_process_result(self):
        eng = Engine()

        def compute():
            yield Timeout(1.0)
            return 42

        proc = eng.process(compute())
        eng.run()
        assert proc.done
        assert proc.result == 42

    def test_join_process(self):
        eng = Engine()
        log = []

        def child():
            yield Timeout(3.0)
            return "payload"

        def parent():
            c = eng.process(child())
            value = yield c
            log.append((eng.now, value))

        eng.process(parent())
        eng.run()
        assert log == [(3.0, "payload")]

    def test_event_value_delivery(self):
        eng = Engine()
        gate = eng.event()
        got = []

        def waiter():
            value = yield gate
            got.append(value)

        def firer():
            yield Timeout(5.0)
            gate.succeed("hello")

        eng.process(waiter())
        eng.process(firer())
        eng.run()
        assert got == ["hello"]
        assert gate.triggered and gate.value == "hello"

    def test_wait_on_triggered_event_immediate(self):
        eng = Engine()
        gate = eng.event()
        gate.succeed(7)
        got = []

        def waiter():
            got.append((yield gate))

        eng.process(waiter())
        eng.run()
        assert got == [7]

    def test_double_succeed_rejected(self):
        eng = Engine()
        gate = eng.event()
        gate.succeed()
        with pytest.raises(SimulationError):
            gate.succeed()

    def test_negative_timeout_rejected(self):
        with pytest.raises(SimulationError):
            Timeout(-1.0)

    def test_bad_yield_rejected(self):
        eng = Engine()

        def bad():
            yield 123

        eng.process(bad())
        with pytest.raises(SimulationError):
            eng.run()

    def test_deadlock_detection(self):
        eng = Engine()
        gate = eng.event()  # never succeeds

        def stuck():
            yield gate

        eng.process(stuck())
        with pytest.raises(DeadlockError):
            eng.run()

    def test_run_until(self):
        eng = Engine()

        def worker():
            yield Timeout(10.0)

        eng.process(worker())
        assert eng.run(until=5.0) == 5.0
        assert eng.run() == 10.0

    def test_non_generator_rejected(self):
        eng = Engine()
        with pytest.raises(SimulationError):
            Process(eng, lambda: None)  # type: ignore[arg-type]


class TestEngineRegressions:
    """Regressions for truncated runs, clock monotonicity and scheduling."""

    def test_run_until_before_now_rejected(self):
        # Regression: run(until=t) with t < now used to silently move the
        # clock backwards, violating monotonicity.
        eng = Engine()

        def worker():
            yield Timeout(10.0)

        eng.process(worker())
        assert eng.run(until=5.0) == 5.0
        with pytest.raises(SimulationError, match="backwards"):
            eng.run(until=2.0)
        assert eng.now == 5.0  # clock untouched by the rejected call

    def test_run_until_now_is_noop(self):
        eng = Engine()

        def worker():
            yield Timeout(10.0)

        eng.process(worker())
        eng.run(until=5.0)
        assert eng.run(until=5.0) == 5.0

    def test_negative_internal_delay_rejected(self):
        eng = Engine()
        with pytest.raises(SimulationError, match="negative delay"):
            eng._schedule(-0.5, lambda arg: None, None)

    def test_live_process_accounting_is_synchronous(self):
        """A finished process is deducted the instant it finishes, so a
        truncated run never leaves the count stale."""
        eng = Engine()

        def quick():
            yield Timeout(1.0)

        def slow():
            yield Timeout(10.0)

        eng.process(quick())
        eng.process(slow())
        assert eng.live_processes == 2
        # Truncate just past quick's finish: its accounting must already
        # be settled even though the run returned early.
        eng.run(until=1.0)
        assert eng.live_processes == 1
        # The later drain completes normally — no spurious DeadlockError.
        assert eng.run() == 10.0
        assert eng.live_processes == 0

    def test_truncated_run_then_drain_no_spurious_deadlock(self):
        """Stepping workflow: external events succeed between truncated
        runs; draining afterwards must not report a deadlock."""
        eng = Engine()
        gate = eng.event()
        log = []

        def waiter():
            value = yield gate
            log.append((eng.now, value))

        def ticker():
            yield Timeout(2.0)

        eng.process(waiter())
        eng.process(ticker())
        eng.run(until=1.0)
        gate.succeed("go")
        assert eng.run() == 2.0
        assert log == [(1.0, "go")]
        assert eng.live_processes == 0

    def test_run_until_exact_finish_time(self):
        eng = Engine()

        def worker():
            yield Timeout(5.0)

        proc = eng.process(worker())
        assert eng.run(until=5.0) == 5.0
        assert proc.done
        assert eng.live_processes == 0


class _RecordingObserver:
    def __init__(self):
        self.scheduled = []
        self.advanced = []
        self.started = []
        self.finished = []

    def on_schedule(self, now, delay):
        self.scheduled.append((now, delay))

    def on_advance(self, time):
        self.advanced.append(time)

    def on_process_start(self, proc):
        self.started.append(proc.name)

    def on_process_finish(self, proc):
        self.finished.append(proc.name)


class TestEngineObserver:
    def test_hooks_fire_in_order(self):
        obs = _RecordingObserver()
        eng = Engine(observer=obs)

        def worker():
            yield Timeout(2.0)

        eng.process(worker(), name="w")
        eng.run()
        assert obs.started == ["w"]
        assert obs.finished == ["w"]
        # Initial kick at delay 0, then the timeout.
        assert obs.scheduled == [(0.0, 0.0), (0.0, 2.0)]
        assert obs.advanced == [0.0, 2.0]

    def test_advance_times_monotone(self):
        obs = _RecordingObserver()
        eng = Engine(observer=obs)

        def worker(d):
            yield Timeout(d)
            yield Timeout(d)

        for d in (3.0, 1.0, 2.0):
            eng.process(worker(d))
        eng.run()
        assert obs.advanced == sorted(obs.advanced)
        assert len(obs.finished) == 3

    def test_attach_detach(self):
        eng = Engine()
        obs = _RecordingObserver()
        eng.attach_observer(obs)
        with pytest.raises(SimulationError):
            eng.attach_observer(_RecordingObserver())
        assert eng.detach_observer() is obs
        assert eng.detach_observer() is None

        def worker():
            yield Timeout(1.0)

        eng.process(worker())
        eng.run()
        assert obs.started == []  # detached before anything ran


class TestLock:
    def test_mutual_exclusion_and_fifo(self):
        eng = Engine()
        lock = Lock(eng)
        log = []

        def worker(name, hold):
            yield from lock.acquire()
            log.append(("in", name, eng.now))
            yield Timeout(hold)
            log.append(("out", name, eng.now))
            lock.release()

        eng.process(worker("a", 2.0))
        eng.process(worker("b", 1.0))
        eng.process(worker("c", 1.0))
        eng.run()
        # Critical sections never overlap, FIFO order preserved.
        assert [e[1] for e in log] == ["a", "a", "b", "b", "c", "c"]
        assert log[2][2] == 2.0 and log[4][2] == 3.0
        assert lock.acquisitions == 3
        assert lock.contentions == 2

    def test_release_unheld_rejected(self):
        eng = Engine()
        with pytest.raises(SimulationError):
            Lock(eng).release()

    def test_uncontended_acquire_is_immediate(self):
        eng = Engine()
        lock = Lock(eng)
        times = []

        def worker():
            yield from lock.acquire()
            times.append(eng.now)
            lock.release()
            yield Timeout(0.0)

        eng.process(worker())
        eng.run()
        assert times == [0.0]


class TestSemaphore:
    def test_counting(self):
        eng = Engine()
        sem = Semaphore(eng, value=2)
        running = []
        peak = []

        def worker(i):
            yield from sem.acquire()
            running.append(i)
            peak.append(len(running))
            yield Timeout(1.0)
            running.remove(i)
            sem.release()

        for i in range(5):
            eng.process(worker(i))
        eng.run()
        assert max(peak) == 2  # never more than 2 concurrent holders

    def test_negative_value_rejected(self):
        with pytest.raises(SimulationError):
            Semaphore(Engine(), value=-1)


class TestBarrier:
    def test_all_released_at_last_arrival(self):
        eng = Engine()
        bar = Barrier(eng, parties=3)
        released = []

        def worker(delay):
            yield Timeout(delay)
            yield from bar.wait()
            released.append(eng.now)

        for d in (1.0, 2.0, 5.0):
            eng.process(worker(d))
        eng.run()
        assert released == [5.0, 5.0, 5.0]
        assert bar.generations == 1

    def test_cyclic_reuse(self):
        eng = Engine()
        bar = Barrier(eng, parties=2)
        log = []

        def worker(name):
            for phase in range(3):
                yield Timeout(1.0)
                yield from bar.wait()
                log.append((phase, name, eng.now))

        eng.process(worker("a"))
        eng.process(worker("b"))
        eng.run()
        assert bar.generations == 3
        assert [e[2] for e in log] == [1.0, 1.0, 2.0, 2.0, 3.0, 3.0]

    def test_single_party_never_blocks(self):
        eng = Engine()
        bar = Barrier(eng, parties=1)

        def worker():
            yield from bar.wait()
            return "done"

        proc = eng.process(worker())
        eng.run()
        assert proc.result == "done"

    def test_invalid_parties(self):
        with pytest.raises(SimulationError):
            Barrier(Engine(), parties=0)
