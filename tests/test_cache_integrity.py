"""Tests for the sweep cache's corruption detection and quarantine.

The v5 on-disk format embeds a SHA-256 over the canonical serialization
of the packed columnar frame; these tests prove the checksum catches
real corruption
modes (torn writes, bit flips, semantic tampering) and that corrupt
entries are quarantined to ``<key>.corrupt`` — counted and preserved,
never silently re-simulated.
"""

import json

import pytest

from repro.core.cache import CACHE_FORMAT_VERSION, SweepCache
from repro.core.sweep import SweepPlan, run_sweep
from repro.resilience.chaos import apply_cache_fault


@pytest.fixture(scope="module")
def records():
    plan = SweepPlan(arch="milan", workload_names=("cg",), scale="small",
                     repetitions=2)
    return run_sweep(plan).records


@pytest.fixture
def cache(tmp_path, records):
    cache = SweepCache(tmp_path)
    cache.put("k", records)
    return cache


class TestChecksumRoundtrip:
    def test_put_get_bit_identical(self, cache, records):
        assert cache.get("k") == records

    def test_payload_carries_checksum(self, cache):
        payload = json.loads(cache.path_for("k").read_text())
        assert payload["version"] == CACHE_FORMAT_VERSION
        assert len(payload["sha256"]) == 64

    def test_fsync_mode_roundtrips(self, tmp_path, records):
        cache = SweepCache(tmp_path / "durable", fsync=True)
        cache.put("k", records)
        assert cache.get("k") == records


class TestQuarantine:
    @pytest.mark.parametrize("fault", ["cache-torn-write",
                                       "cache-bit-flip"])
    def test_injected_fault_detected_and_quarantined(self, cache, fault):
        apply_cache_fault(cache.path_for("k"), fault)
        assert cache.get("k") is None
        assert cache.corrupt_keys == ["k"]
        # The entry moved aside: the poisoned bytes stay inspectable,
        # the live path is free for the recomputed batch.
        assert not cache.path_for("k").exists()
        assert cache.corrupt_path_for("k").exists()

    def test_semantic_tamper_caught_by_checksum(self, cache):
        """Valid JSON with one altered runtime must still fail: the
        checksum covers frame *content*, not just parseability."""
        payload = json.loads(cache.path_for("k").read_text())
        runtimes = next(c for c in payload["frame"]["columns"]
                        if c["name"] == "runtimes")
        runtimes["data"][0] += 1.0
        cache.path_for("k").write_text(json.dumps(payload))
        assert cache.get("k") is None
        assert cache.corrupt_keys == ["k"]

    def test_non_dict_payload_quarantined(self, tmp_path):
        cache = SweepCache(tmp_path)
        cache.path_for("junk").write_text("[1, 2, 3]")
        assert cache.get("junk") is None
        assert cache.corrupt_keys == ["junk"]

    def test_missing_checksum_field_quarantined(self, cache):
        payload = json.loads(cache.path_for("k").read_text())
        del payload["sha256"]
        cache.path_for("k").write_text(json.dumps(payload))
        assert cache.get("k") is None
        assert cache.corrupt_keys == ["k"]

    def test_reput_after_quarantine_recovers(self, cache, records):
        apply_cache_fault(cache.path_for("k"), "cache-bit-flip")
        assert cache.get("k") is None
        cache.put("k", records)
        assert cache.get("k") == records


class TestMissVsCorruption:
    def test_version_mismatch_is_a_plain_miss(self, cache):
        """A stale format is expected after upgrades — it must NOT be
        flagged as corruption."""
        payload = json.loads(cache.path_for("k").read_text())
        payload["version"] = CACHE_FORMAT_VERSION + 1
        cache.path_for("k").write_text(json.dumps(payload))
        assert cache.get("k") is None
        assert cache.corrupt_keys == []
        assert cache.path_for("k").exists()  # left in place

    def test_absent_key_is_a_plain_miss(self, tmp_path):
        cache = SweepCache(tmp_path)
        assert cache.get("nope") is None
        assert cache.corrupt_keys == []


class TestStats:
    def test_counters_track_every_outcome(self, cache, records):
        cache.get("k")                                     # hit
        cache.get("absent")                                # miss
        apply_cache_fault(cache.path_for("k"), "cache-torn-write")
        cache.get("k")                                     # corrupt
        stats = cache.stats
        assert stats["hits"] == 1
        assert stats["misses"] == 2      # absent + quarantined
        assert stats["writes"] == 1
        assert stats["corrupt"] == 1
        assert stats["corrupt_keys"] == ("k",)

    def test_repr_mentions_corruption(self, cache):
        apply_cache_fault(cache.path_for("k"), "cache-bit-flip")
        cache.get("k")
        assert "1 corrupt" in repr(cache)


class TestPrefixPartitions:
    def _key(self, i):
        return f"{i:08x}" + "0" * 56

    def test_partition_count_validated(self, tmp_path):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            SweepCache(tmp_path, n_partitions=0)

    def test_partition_for_agrees_with_the_shard_planner(self, tmp_path):
        from repro.resilience.sharding import partition_for_key

        cache = SweepCache(tmp_path, n_partitions=8)
        for i in range(32):
            assert cache.partition_for(self._key(i)) \
                == partition_for_key(self._key(i), 8)

    def test_non_hex_key_still_partitions(self, tmp_path):
        # Arbitrary keys (the tests use "k") hash into a partition
        # instead of erroring; the assignment is stable.
        cache = SweepCache(tmp_path, n_partitions=8)
        p = cache.partition_for("k")
        assert 0 <= p < 8
        assert cache.partition_for("k") == p

    def test_stats_break_entries_down_by_partition(self, tmp_path,
                                                   records):
        cache = SweepCache(tmp_path, n_partitions=4)
        keys = [self._key(i) for i in range(6)]
        for key in keys:
            cache.put(key, records)
        stats = cache.stats
        per_part = {row["partition"]: row["entries"]
                    for row in stats["partitions"]}
        assert sum(per_part.values()) == stats["entries"] == 6
        for key in keys:
            assert per_part[cache.partition_for(key)] >= 1

    def test_corruption_charged_to_the_owning_partition(self, tmp_path,
                                                        records):
        cache = SweepCache(tmp_path, n_partitions=4)
        good, bad = self._key(0), self._key(1)
        cache.put(good, records)
        cache.put(bad, records)
        apply_cache_fault(cache.path_for(bad), "cache-torn-write")
        cache.get(bad)
        rows = {row["partition"]: row for row in cache.stats["partitions"]}
        assert rows[cache.partition_for(bad)]["corrupt"] == 1
        assert rows[cache.partition_for(good)]["corrupt"] == 0
        assert sum(r["corrupt"] for r in rows.values()) == 1
