"""Tests for thread placement (OMP_PLACES x OMP_PROC_BIND)."""

import numpy as np
import pytest

from repro.arch.machines import A64FX, MILAN, SKYLAKE
from repro.runtime.affinity import compute_placement
from repro.runtime.icv import EnvConfig, resolve_icvs


def place(machine, **kwargs):
    return compute_placement(resolve_icvs(EnvConfig(**kwargs), machine), machine)


class TestUnbound:
    def test_default_unbound_round_robin(self):
        p = place(MILAN)
        assert not p.bound
        assert p.nthreads == 96
        assert p.max_oversubscription == 1

    def test_oversubscribed_unbound(self):
        p = place(MILAN, num_threads=192)
        assert p.max_oversubscription == 2

    def test_unbound_locality_penalty(self):
        p = place(MILAN)
        assert p.mean_numa_distance_to_local_data() > 1.0


class TestMaster:
    def test_master_all_on_master_place_cores(self):
        # places unset + master -> synthesized per-core places -> one core!
        p = place(MILAN, proc_bind="master")
        assert p.bound
        assert np.unique(p.cores).tolist() == [0]
        assert p.max_oversubscription == 96

    def test_master_socket_place(self):
        p = place(MILAN, places="sockets", proc_bind="master")
        # Whole team packed into socket 0: 96 threads on 48 cores.
        assert set(np.unique(p.sockets)) == {0}
        assert p.max_oversubscription == 2

    def test_master_llc_place(self):
        p = place(MILAN, places="ll_caches", proc_bind="master")
        assert set(np.unique(p.llcs)) == {0}
        assert p.max_oversubscription == 12  # 96 threads on 8 cores


class TestCloseSpread:
    def test_close_blocks_over_sockets(self):
        # OpenMP close: blocks of ceil(T/P) consecutive threads per place.
        p = place(MILAN, places="sockets", proc_bind="close", num_threads=48)
        counts = np.bincount(p.sockets, minlength=2)
        assert counts.tolist() == [24, 24]
        assert list(p.sockets[:24]) == [0] * 24  # consecutive threads packed
        assert p.max_oversubscription == 1

    def test_close_vs_spread_when_fewer_threads_than_places(self):
        # T=2 over 8 NUMA places: close keeps them adjacent, spread spaces.
        close = place(MILAN, places="numa_domains", proc_bind="close",
                      num_threads=2)
        spread = place(MILAN, places="numa_domains", proc_bind="spread",
                       num_threads=2)
        assert list(close.numa_nodes) == [0, 1]
        assert list(spread.numa_nodes) == [0, 4]

    def test_spread_interleaves_sockets(self):
        p = place(MILAN, places="sockets", proc_bind="spread", num_threads=48)
        counts = np.bincount(p.sockets, minlength=2)
        assert counts.tolist() == [24, 24]
        assert p.max_oversubscription == 1

    def test_true_equals_spread_distribution(self):
        a = place(MILAN, places="ll_caches", proc_bind="spread", num_threads=24)
        b = place(MILAN, places="ll_caches", proc_bind="true", num_threads=24)
        assert np.array_equal(a.cores, b.cores)

    def test_spread_uses_all_numa_nodes(self):
        p = place(MILAN, places="ll_caches", proc_bind="spread", num_threads=96)
        assert p.n_numa_used == 8

    def test_close_few_threads_few_numa(self):
        p = place(MILAN, places="cores", proc_bind="close", num_threads=12)
        assert p.n_numa_used == 1

    def test_spread_few_threads_many_numa(self):
        p = place(MILAN, places="numa_domains", proc_bind="spread", num_threads=8)
        assert p.n_numa_used == 8

    def test_no_oversubscription_when_threads_fit(self):
        for kind in ("cores", "sockets", "ll_caches"):
            for bind in ("close", "spread", "true"):
                p = place(SKYLAKE, places=kind, proc_bind=bind)
                assert p.max_oversubscription == 1, (kind, bind)

    def test_bind_without_places_synthesizes_core_places(self):
        p = place(SKYLAKE, proc_bind="spread", num_threads=40)
        assert p.bound
        assert len(set(p.cores.tolist())) == 40


class TestDerivedQuantities:
    def test_effective_speed_reflects_sharing(self):
        p = place(MILAN, places="sockets", proc_bind="master")
        assert np.allclose(p.effective_speed(), 0.5)

    def test_bound_distance_is_local(self):
        p = place(MILAN, places="cores", proc_bind="close")
        assert p.mean_numa_distance_to_local_data() == 1.0

    def test_llc_accounting(self):
        p = place(A64FX, places="ll_caches", proc_bind="spread", num_threads=4)
        assert p.n_llc_used == 4

    def test_single_thread(self):
        p = place(MILAN, num_threads=1)
        assert p.nthreads == 1
        assert p.max_oversubscription == 1
