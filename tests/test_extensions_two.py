"""Tests for interactions, execution traces and bootstrap CIs."""

import json

import numpy as np
import pytest

from repro.arch.machines import MILAN
from repro.core.interactions import interaction_matrix, strongest_interactions
from repro.errors import SchemaError, SimulationError, StatsError
from repro.frame.table import Table
from repro.runtime.icv import EnvConfig
from repro.runtime.trace import trace_execution
from repro.stats.bootstrap import bootstrap_ci, bootstrap_speedup_ratio
from repro.workloads.base import get_workload


@pytest.fixture(scope="module")
def interaction_dataset():
    """A two-factor-design sweep (the grid interactions need)."""
    from repro.core.dataset import enrich_with_speedup, records_to_table
    from repro.core.sweep import SweepPlan, run_sweep

    result = run_sweep(
        SweepPlan(arch="milan", workload_names=("nqueens", "su3bench"),
                  scale="twofactor", repetitions=1)
    )
    return enrich_with_speedup(records_to_table(result.records))


class TestInteractions:
    def test_pairs_present_and_sorted(self, interaction_dataset):
        pairs = interaction_matrix(interaction_dataset)
        assert pairs, "expected some measurable pairs"
        strengths = [p.strength for p in pairs]
        assert strengths == sorted(strengths, reverse=True)
        for p in pairs:
            assert p.strength >= 0.0
            assert p.var_a != p.var_b

    def test_library_blocktime_redundancy_detected(self, interaction_dataset):
        """turnaround and blocktime=infinite buy the SAME active waiting:
        their joint gain is far below the sum of marginals (negative
        interaction) — the canonical redundancy the module must find."""
        pairs = {(p.var_a, p.var_b): p
                 for p in interaction_matrix(interaction_dataset)}
        pair = pairs.get(("library", "blocktime"))
        assert pair is not None
        assert pair.worst_conflict_value < -0.01
        combo = set(pair.worst_conflict)
        assert "turnaround" in combo and "infinite" in combo

    def test_strongest_interactions_k(self, interaction_dataset):
        top = strongest_interactions(interaction_dataset, k=3)
        assert len(top) <= 3

    def test_missing_columns_rejected(self):
        with pytest.raises(SchemaError):
            interaction_matrix(Table({"speedup": [1.0]}))

    def test_independent_knobs_near_zero(self, interaction_dataset):
        """align_alloc and schedule act on disjoint mechanisms: their
        interaction must be far weaker than the wait-policy redundancy."""
        pairs = {(p.var_a, p.var_b): p
                 for p in interaction_matrix(interaction_dataset)}
        lib_bt = pairs[("library", "blocktime")]
        sched_align = pairs.get(("schedule", "align_alloc"))
        if sched_align is not None:
            assert sched_align.strength < lib_bt.strength


class TestTrace:
    def test_events_cover_program(self):
        prog = get_workload("mg").program("W")
        trace = trace_execution(prog, MILAN, EnvConfig())
        assert len(trace.events) == len(prog.phases)
        # Contiguous, ordered timeline.
        clock = 0.0
        for e in trace.events:
            assert e.start_s == pytest.approx(clock)
            assert e.duration_s >= 0
            clock = e.end_s
        assert trace.total_s == pytest.approx(clock)

    def test_total_matches_executor(self):
        from repro.runtime.executor import execute

        prog = get_workload("nqueens").program("small")
        trace = trace_execution(prog, MILAN, EnvConfig())
        assert trace.total_s == pytest.approx(execute(prog, MILAN, EnvConfig()))

    def test_parallel_fraction(self):
        prog = get_workload("ep").program("A")
        trace = trace_execution(prog, MILAN, EnvConfig())
        assert 0.5 < trace.parallel_fraction <= 1.0

    def test_to_table_shares_sum_to_one(self):
        prog = get_workload("cg").program("S")
        table = trace_execution(prog, MILAN, EnvConfig()).to_table()
        assert np.asarray(table["share"], float).sum() == pytest.approx(1.0)

    def test_chrome_trace_valid_json(self, tmp_path):
        prog = get_workload("lu").program("S")
        trace = trace_execution(prog, MILAN, EnvConfig(library="turnaround"))
        path = tmp_path / "trace.json"
        trace.save_chrome_trace(path)
        doc = json.loads(path.read_text())
        assert doc["otherData"]["arch"] == "milan"
        assert doc["otherData"]["config"] == {"KMP_LIBRARY": "turnaround"}
        events = doc["traceEvents"]
        assert len(events) == len(prog.phases)
        for ev in events:
            assert ev["ph"] == "X"
            assert ev["dur"] >= 0


class TestBootstrap:
    def test_ci_contains_true_median_usually(self):
        rng = np.random.default_rng(0)
        sample = rng.normal(10.0, 2.0, size=400)
        ci = bootstrap_ci(sample, np.median, seed=1)
        assert 10.0 in ci
        assert ci.low < ci.estimate < ci.high

    def test_narrower_with_more_data(self):
        rng = np.random.default_rng(1)
        small = bootstrap_ci(rng.normal(size=30), np.mean, seed=2)
        big = bootstrap_ci(rng.normal(size=3000), np.mean, seed=2)
        assert big.width < small.width

    def test_deterministic(self):
        sample = np.arange(50.0)
        a = bootstrap_ci(sample, np.mean, seed=7)
        b = bootstrap_ci(sample, np.mean, seed=7)
        assert a == b

    def test_speedup_ratio_detects_real_difference(self):
        rng = np.random.default_rng(3)
        baseline = rng.lognormal(mean=0.0, sigma=0.05, size=30)
        tuned = baseline * 0.5 * rng.lognormal(sigma=0.05, size=30)
        ci = bootstrap_speedup_ratio(baseline, tuned, seed=4)
        assert ci.low > 1.5  # clearly faster
        assert 1.0 not in ci

    def test_speedup_ratio_null_includes_one(self):
        rng = np.random.default_rng(5)
        a = rng.lognormal(sigma=0.1, size=40)
        b = rng.lognormal(sigma=0.1, size=40)
        ci = bootstrap_speedup_ratio(a, b, seed=6)
        assert 1.0 in ci

    def test_validation(self):
        with pytest.raises(StatsError):
            bootstrap_ci(np.array([]), np.mean)
        with pytest.raises(StatsError):
            bootstrap_ci(np.ones(5), np.mean, confidence=1.5)
        with pytest.raises(StatsError):
            bootstrap_ci(np.ones(5), np.mean, n_resamples=3)
        with pytest.raises(StatsError):
            bootstrap_speedup_ratio(np.array([1.0]), np.array([-1.0]))

    def test_str_rendering(self):
        ci = bootstrap_ci(np.arange(20.0), np.mean, seed=0)
        assert "95% CI" in str(ci)
