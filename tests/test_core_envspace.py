"""Tests for the swept environment-variable space."""

import pytest

from repro.arch.machines import A64FX, MILAN, SKYLAKE
from repro.core.envspace import SWEPT_VARIABLES, EnvSpace, VariableSpec
from repro.errors import ConfigError, UnknownVariable
from repro.runtime.icv import UNSET, EnvConfig, resolve_icvs


@pytest.fixture
def space():
    return EnvSpace()


class TestVariableSpecs:
    def test_seven_variables(self):
        names = [v.env_name for v in SWEPT_VARIABLES]
        assert names == [
            "OMP_PLACES",
            "OMP_PROC_BIND",
            "OMP_SCHEDULE",
            "KMP_LIBRARY",
            "KMP_BLOCKTIME",
            "KMP_FORCE_REDUCTION",
            "KMP_ALIGN_ALLOC",
        ]

    def test_paper_exclusions(self, space):
        # threads/numa_domains places and the serial library mode are not
        # swept (Sec. III).
        places = space.variable("OMP_PLACES").values(MILAN)
        assert "threads" not in places and "numa_domains" not in places
        assert "serial" not in space.variable("KMP_LIBRARY").values(MILAN)

    def test_blocktime_three_points(self, space):
        values = space.variable("KMP_BLOCKTIME").values(MILAN)
        assert set(values) == {UNSET, "0", "infinite"}

    def test_align_values_arch_dependent(self, space):
        var = space.variable("KMP_ALIGN_ALLOC")
        assert var.values(MILAN) == (None, 128, 256, 512)
        assert var.values(A64FX) == (None, 512)

    def test_unknown_variable(self, space):
        with pytest.raises(UnknownVariable):
            space.variable("OMP_STACKSIZE")


class TestGridSizes:
    def test_full_grid_cardinality_matches_paper_scale(self, space):
        # 4 x 6 x 4 x 2 x 3 x 4 x {4 on x86, 2 on a64fx}
        assert space.size(MILAN) == 9216
        assert space.size(SKYLAKE) == 9216
        assert space.size(A64FX) == 4608

    def test_full_grid_enumerates_size(self, space):
        configs = list(space.full_grid(A64FX))
        assert len(configs) == space.size(A64FX)
        assert len({c.key() for c in configs}) == len(configs)

    def test_full_grid_contains_default(self, space):
        keys = {c.key() for c in space.full_grid(A64FX)}
        assert EnvConfig().key() in keys

    def test_all_grid_points_valid(self, space):
        for config in space.grid(MILAN, "medium"):
            config.validate()
            resolve_icvs(config.with_threads(4), MILAN)  # must resolve

    def test_ofat_size(self, space):
        ofat = space.ofat_grid(MILAN)
        # 1 default + sum over vars of (len(values) - 1 default each)
        expected = 1 + (3 + 5 + 3 + 1 + 2 + 3 + 3)
        assert len(ofat) == expected

    def test_scales_are_nested_in_size(self, space):
        small = space.grid(MILAN, "small")
        medium = space.grid(MILAN, "medium")
        assert len(small) < len(medium) < space.size(MILAN)

    def test_scaled_grids_include_ofat(self, space):
        small_keys = {c.key() for c in space.grid(MILAN, "small")}
        for c in space.ofat_grid(MILAN):
            assert c.key() in small_keys

    def test_grids_deduplicated(self, space):
        for scale in ("small", "medium"):
            grid = space.grid(MILAN, scale)
            assert len({c.key() for c in grid}) == len(grid)

    def test_random_grid_deterministic(self, space):
        a = space.random_grid(MILAN, 10, seed=3)
        b = space.random_grid(MILAN, 10, seed=3)
        assert [c.key() for c in a] == [c.key() for c in b]

    def test_unknown_scale(self, space):
        with pytest.raises(ConfigError):
            space.grid(MILAN, "enormous")

    def test_two_factor_grid_design(self, space):
        grid = space.two_factor_grid(MILAN)
        keys = {c.key() for c in grid}
        assert len(keys) == len(grid)  # no duplicates

        from repro.runtime.icv import UNSET

        def deviations(config):
            n = 0
            for var in space.variables:
                if getattr(config, var.field) != var.default():
                    n += 1
            return n

        counts = {}
        for c in grid:
            counts[deviations(c)] = counts.get(deviations(c), 0) + 1
        # Exactly one default, all OFAT points, and every value pair.
        assert counts[0] == 1
        n_values = [len(v.values(MILAN)) - 1 for v in space.variables]
        assert counts[1] == sum(n_values)
        expected_pairs = 0
        for i in range(len(n_values)):
            for j in range(i + 1, len(n_values)):
                expected_pairs += n_values[i] * n_values[j]
        assert counts[2] == expected_pairs
        assert set(counts) == {0, 1, 2}

    def test_twofactor_scale_routes_to_design(self, space):
        grid = space.grid(MILAN, "twofactor")
        assert len(grid) == len(space.two_factor_grid(MILAN))


class TestCustomSpaces:
    def test_subset_space(self):
        sub = EnvSpace([v for v in SWEPT_VARIABLES if v.field == "library"])
        assert sub.size(MILAN) == 2

    def test_empty_space_rejected(self):
        with pytest.raises(ConfigError):
            EnvSpace([])

    def test_duplicate_variables_rejected(self):
        v = SWEPT_VARIABLES[0]
        with pytest.raises(ConfigError):
            EnvSpace([v, v])

    def test_custom_spec_values(self):
        spec = VariableSpec("X", "schedule", (UNSET, "dynamic"))
        assert spec.values(MILAN) == (UNSET, "dynamic")
        assert spec.values(A64FX) == (UNSET, "dynamic")  # no largeline set
        assert spec.default() == UNSET


class TestGridDeterminism:
    """Sweep grids must be byte-identical run to run — the cache keys, the
    equivalence classes, and the lint --stats numbers all hang off grid
    order (see docs/LINTING.md)."""

    def test_repeated_construction_is_identical(self):
        for scale in ("small", "medium", "twofactor", "full"):
            a = EnvSpace().grid(MILAN, scale, seed=7)
            b = EnvSpace().grid(MILAN, scale, seed=7)
            assert [c.key() for c in a] == [c.key() for c in b], scale

    def test_grid_survives_hash_randomization(self):
        # Grid order must not depend on dict/set iteration order: construct
        # the same grid in fresh interpreters under different hash seeds.
        import hashlib
        import os
        import subprocess
        import sys

        snippet = (
            "from repro.arch.machines import MILAN\n"
            "from repro.core.envspace import EnvSpace\n"
            "import hashlib\n"
            "keys = repr([c.key() for c in"
            " EnvSpace().grid(MILAN, 'medium', seed=3)])\n"
            "print(hashlib.sha256(keys.encode()).hexdigest())\n"
        )
        digests = set()
        for hash_seed in ("0", "1", "31337"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in ("src", env.get("PYTHONPATH", "")) if p
            )
            out = subprocess.run(
                [sys.executable, "-c", snippet],
                capture_output=True, text=True, check=True, env=env,
            )
            digests.add(out.stdout.strip())
        assert len(digests) == 1

        keys = repr(
            [c.key() for c in EnvSpace().grid(MILAN, "medium", seed=3)]
        )
        assert hashlib.sha256(keys.encode()).hexdigest() in digests

    def test_ofat_points_exactly_once_in_scaled_grids(self):
        space = EnvSpace()
        ofat = [c.key() for c in space.ofat_grid(MILAN)]
        assert len(ofat) == len(set(ofat))  # OFAT itself is duplicate-free
        for scale in ("small", "medium", "twofactor"):
            grid = [c.key() for c in space.grid(MILAN, scale, seed=0)]
            for point in ofat:
                assert grid.count(point) == 1, (scale, point)

    def test_seed_changes_only_the_random_tail(self):
        space = EnvSpace()
        n_ofat = len(space.ofat_grid(MILAN))
        a = space.grid(MILAN, "small", seed=0)
        b = space.grid(MILAN, "small", seed=99)
        assert [c.key() for c in a[:n_ofat]] == [c.key() for c in b[:n_ofat]]
        assert [c.key() for c in a] != [c.key() for c in b]
