"""End-to-end tests of the repro-omp CLI."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_subcommands_present(self):
        parser = build_parser()
        args = parser.parse_args(["machines"])
        assert args.command == "machines"

    def test_sweep_args(self):
        args = build_parser().parse_args(
            ["sweep", "--arch", "milan", "--scale", "small", "-o", "x.csv"]
        )
        assert args.arch == "milan" and args.output == "x.csv"

    def test_bad_arch_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--arch", "pentium",
                                       "-o", "x.csv"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_machines(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        for name in ("a64fx", "skylake", "milan"):
            assert name in out
        assert "96" in out  # milan cores

    def test_sweep_analyze_recommend_roundtrip(self, tmp_path, capsys):
        csv_path = tmp_path / "ds.csv"
        rc = main(
            ["sweep", "--arch", "a64fx", "--workloads", "nqueens",
             "--scale", "small", "--repetitions", "2",
             "-o", str(csv_path)]
        )
        assert rc == 0
        assert csv_path.exists()
        out = capsys.readouterr().out
        assert "samples" in out

        figdir = tmp_path / "figs"
        rc = main(["analyze", str(csv_path), "--figures-dir", str(figdir)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Best speedup per application" in out
        assert "KMP_LIBRARY" in out
        svgs = list(figdir.glob("*.svg"))
        assert len(svgs) == 3

        rc = main(["recommend", str(csv_path), "--app", "nqueens"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "nqueens" in out

    def test_tune(self, capsys):
        rc = main(["tune", "--arch", "milan", "--workload", "nqueens",
                   "--restarts", "0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "tuned" in out and "x," in out

    def test_tune_unknown_workload_clean_error(self, capsys):
        rc = main(["tune", "--arch", "milan", "--workload", "doom"])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_recommend_missing_file_clean_error(self, capsys, tmp_path):
        rc = main(["recommend", str(tmp_path / "nope.csv")])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_microbench(self, capsys):
        rc = main(["microbench"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "barrier_us" in out and "a64fx" in out

    def test_trace(self, capsys, tmp_path):
        out_json = tmp_path / "trace.json"
        rc = main(["trace", "--arch", "milan", "--workload", "mg",
                   "-o", str(out_json)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "parallel" in out
        assert out_json.exists()

    def test_figures_gallery(self, tmp_path, capsys):
        rc = main(["figures", "-o", str(tmp_path / "g"),
                   "--apps", "strassen", "--repetitions", "1"])
        assert rc == 0
        svgs = sorted(p.name for p in (tmp_path / "g").glob("*.svg"))
        assert "violin_strassen.svg" in svgs
        assert "fig3_by_architecture.svg" in svgs

    def test_workloads_listing(self, capsys):
        rc = main(["workloads", "--arch", "a64fx"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "nqueens" in out and "tasks" in out and "loops" in out

    def test_energy(self, capsys):
        rc = main(["energy", "--arch", "milan", "--workload", "nqueens"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "turnaround" in out and "edp_js" in out

    def test_release_roundtrip(self, tmp_path, capsys):
        csv_path = tmp_path / "ds.csv"
        main(["sweep", "--arch", "a64fx", "--workloads", "strassen",
              "--scale", "small", "--repetitions", "1", "-o", str(csv_path)])
        rc = main(["release", str(csv_path), "-o", str(tmp_path / "rel"),
                   "--version", "2.0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "released" in out
        assert (tmp_path / "rel" / "manifest.json").exists()
        assert (tmp_path / "rel" / "a64fx-strassen.csv").exists()

        from repro.core.release import load_release

        manifest, table = load_release(tmp_path / "rel")
        assert manifest.version == "2.0"
        assert table.num_rows > 0


class TestSweepFlags:
    """The sweep subcommand's fidelity / inputs-limit / cache plumbing."""

    def test_fidelity_and_inputs_limit_parsed(self):
        args = build_parser().parse_args(
            ["sweep", "--arch", "milan", "--fidelity", "des",
             "--inputs-limit", "2", "-o", "x.csv"]
        )
        assert args.fidelity == "des" and args.inputs_limit == 2

    def test_fidelity_defaults_analytic(self):
        args = build_parser().parse_args(
            ["sweep", "--arch", "milan", "-o", "x.csv"]
        )
        assert args.fidelity == "analytic"
        assert args.inputs_limit is None
        assert args.cache_dir is None and not args.resume

    def test_bad_fidelity_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["sweep", "--arch", "milan", "--fidelity", "exact",
                 "-o", "x.csv"]
            )

    def test_fidelity_and_inputs_limit_reach_the_plan(self, tmp_path,
                                                      monkeypatch, capsys):
        """Regression: these flags used to be silently dropped."""
        import repro.cli as cli_mod

        captured = {}
        real = cli_mod.run_sweep

        def spy(plan, **kwargs):
            captured["plan"] = plan
            return real(plan, **kwargs)

        monkeypatch.setattr(cli_mod, "run_sweep", spy)
        rc = main(["sweep", "--arch", "milan", "--workloads", "nqueens",
                   "--scale", "small", "--repetitions", "1",
                   "--fidelity", "des", "--inputs-limit", "1",
                   "-o", str(tmp_path / "ds.csv")])
        assert rc == 0
        assert captured["plan"].fidelity == "des"
        assert captured["plan"].inputs_limit == 1
        # inputs_limit=1 -> exactly one (workload, setting) batch ran.
        assert "[  1/1]" in capsys.readouterr().out


class TestSweepCacheCLI:
    def _sweep(self, tmp_path, *extra):
        return main(["sweep", "--arch", "milan", "--workloads", "nqueens",
                     "--scale", "small", "--repetitions", "1",
                     "-o", str(tmp_path / "ds.csv"), *extra])

    def test_cache_dir_resumes_with_zero_resimulation(self, tmp_path,
                                                      monkeypatch, capsys):
        import repro.core.sweep as sweep_mod

        cache_dir = str(tmp_path / "cache")
        assert self._sweep(tmp_path, "--cache-dir", cache_dir) == 0
        out = capsys.readouterr().out
        assert "0 batches reused, 3 simulated" in out

        calls = []
        real = sweep_mod._execute_batch
        monkeypatch.setattr(
            sweep_mod, "_execute_batch",
            lambda *a: calls.append(a) or real(*a),
        )
        assert self._sweep(tmp_path, "--cache-dir", cache_dir) == 0
        out = capsys.readouterr().out
        assert "3 batches reused, 0 simulated" in out
        assert calls == []
        assert "eta" in out  # progress line carries a batch ETA

    def test_resume_defaults_cache_dir_from_output(self, tmp_path, capsys):
        assert self._sweep(tmp_path, "--resume") == 0
        assert (tmp_path / "ds.csv.cache").is_dir()
        assert self._sweep(tmp_path, "--resume") == 0
        assert "0 simulated" in capsys.readouterr().out

    def test_no_cache_wins(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert self._sweep(tmp_path, "--cache-dir", str(cache_dir),
                           "--no-cache") == 0
        assert not cache_dir.exists()
        assert "reused" not in capsys.readouterr().out

    def test_cached_rerun_writes_identical_csv(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        self._sweep(tmp_path, "--cache-dir", cache_dir)
        first = (tmp_path / "ds.csv").read_bytes()
        self._sweep(tmp_path, "--cache-dir", cache_dir)
        assert (tmp_path / "ds.csv").read_bytes() == first
        capsys.readouterr()


class TestResilienceCLI:
    """The sweep resilience flags and the chaos rehearsal subcommand."""

    pytestmark = pytest.mark.chaos

    def test_resilience_flags_parsed(self):
        args = build_parser().parse_args(
            ["sweep", "--arch", "milan", "-o", "x.csv",
             "--fail-policy", "degrade", "--max-retries", "5",
             "--batch-timeout-s", "2.5", "--fsync-cache",
             "--failure-report", "rep.json"]
        )
        assert args.fail_policy == "degrade" and args.max_retries == 5
        assert args.batch_timeout_s == 2.5 and args.fsync_cache
        assert args.failure_report == "rep.json"

    def test_fail_policy_defaults_strict(self):
        args = build_parser().parse_args(
            ["sweep", "--arch", "milan", "-o", "x.csv"]
        )
        assert args.fail_policy == "raise" and not args.fsync_cache

    def test_chaos_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.command == "chaos"
        assert args.crashes == args.hangs == args.poison == 1
        assert args.cache_faults == 1 and args.fmt == "text"

    def test_chaos_serve_flags_parsed(self):
        args = build_parser().parse_args(
            ["chaos", "--serve", "--serve-requests", "8",
             "--slow-clients", "2", "--backend-deaths", "0",
             "--drain-kills", "2", "--artifact-dir", "arts"]
        )
        assert args.serve and args.serve_requests == 8
        assert args.slow_clients == 2 and args.backend_deaths == 0
        assert args.drain_kills == 2 and args.artifact_dir == "arts"

    def test_chaos_serve_defaults_off(self):
        args = build_parser().parse_args(["chaos"])
        assert not args.serve
        assert args.serve_requests == 6
        assert args.slow_clients == args.backend_deaths == 1
        assert args.drain_kills == 1 and args.artifact_dir is None

    def test_sweep_failure_report_written(self, tmp_path, capsys):
        report = tmp_path / "rep.json"
        assert main(["sweep", "--arch", "milan", "--workloads", "nqueens",
                     "--scale", "small", "--repetitions", "1",
                     "--fail-policy", "degrade",
                     "--failure-report", str(report),
                     "-o", str(tmp_path / "ds.csv")]) == 0
        capsys.readouterr()
        payload = json.loads(report.read_text())
        assert payload["failure_report"]["n_failed_batches"] == 0
        assert payload["failure_report"]["fail_policy"] == "degrade"

    def test_chaos_scenario_end_to_end(self, tmp_path, capsys):
        """The CI rehearsal: seeded faults in, parity verdict out."""
        report = tmp_path / "chaos.json"
        assert main(["chaos", "--seed", "0",
                     "--report", str(report)]) == 0
        out = capsys.readouterr().out
        assert "resume parity vs fault-free sweep: IDENTICAL" in out
        assert "1/1 injected cache fault(s) caught by checksum" in out
        payload = json.loads(report.read_text())
        assert payload["chaos"]["resume_parity"] is True
        assert payload["chaos"]["cache_faults_detected"] == 1
        assert payload["failure_report"]["n_quarantined"] == 1
        assert len(payload["chaos"]["chaos_plan"]["faults"]) == 5


class TestShardedBackendCLI:
    """The backend/shard axis on the sweep and chaos subcommands."""

    pytestmark = pytest.mark.chaos

    def test_backend_flags_parsed_with_defaults(self):
        args = build_parser().parse_args(
            ["sweep", "--arch", "milan", "-o", "x.csv"]
        )
        assert args.backend == "auto" and args.shards == 1
        args = build_parser().parse_args(
            ["sweep", "--arch", "milan", "-o", "x.csv",
             "--backend", "nodes", "--shards", "4"]
        )
        assert args.backend == "nodes" and args.shards == 4

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["sweep", "--arch", "milan", "-o", "x.csv",
                 "--backend", "mainframe"]
            )

    def test_chaos_node_fault_flags_parsed(self):
        args = build_parser().parse_args(
            ["chaos", "--backend", "nodes", "--shards", "3",
             "--node-lost", "1", "--shard-partitions", "1"]
        )
        assert args.backend == "nodes" and args.shards == 3
        assert args.node_lost == 1 and args.shard_partitions == 1
        defaults = build_parser().parse_args(["chaos"])
        assert defaults.backend == "auto" and defaults.shards == 1
        assert defaults.node_lost == 0 and defaults.shard_partitions == 0

    def test_sharded_sweep_matches_serial_csv(self, tmp_path, capsys):
        base = ["sweep", "--arch", "milan", "--workloads", "nqueens",
                "--scale", "small", "--repetitions", "1"]
        assert main(base + ["-o", str(tmp_path / "serial.csv")]) == 0
        assert main(base + ["--backend", "nodes", "--shards", "2",
                            "--processes", "2",
                            "-o", str(tmp_path / "nodes.csv")]) == 0
        out = capsys.readouterr().out
        assert "2 lane(s) on the nodes backend" in out
        assert ((tmp_path / "nodes.csv").read_text()
                == (tmp_path / "serial.csv").read_text())

    def test_nodes_chaos_scenario_end_to_end(self, tmp_path, capsys):
        """The CI nodes rehearsal: node loss + shard partition in, exit
        0 and a shard report out."""
        report = tmp_path / "chaos_nodes.json"
        assert main(["chaos", "--backend", "nodes", "--shards", "3",
                     "--seed", "0", "--node-lost", "1",
                     "--shard-partitions", "1",
                     "--workloads", "cg", "ep", "nqueens", "xsbench",
                     "--report", str(report)]) == 0
        out = capsys.readouterr().out
        assert "resume parity vs fault-free sweep: IDENTICAL" in out
        assert "shards: 3 lane(s)" in out
        payload = json.loads(report.read_text())
        assert payload["chaos"]["backend"] == "nodes"
        assert payload["chaos"]["n_shards"] == 3
        assert payload["chaos"]["resume_parity"] is True
        assert payload["chaos"]["shard_report"]["n_shards"] == 3
        kinds = {f["kind"]
                 for f in payload["chaos"]["chaos_plan"]["faults"]}
        assert {"node-lost", "shard-partition"} <= kinds


class TestServeCLI:
    """The ``serve`` subcommand parser (daemon behavior lives in
    tests/test_serve_http.py; process-level scenarios in ``chaos
    --serve``)."""

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1" and args.port == 8077
        assert args.backend == "serial" and args.shards == 1
        assert args.max_inflight == 2 and args.max_queued == 16
        assert args.deadline_s == 60.0 and args.drain_grace_s == 5.0
        assert args.header_timeout_s == 5.0
        assert args.rate == 50.0 and args.burst == 100
        assert args.cache_dir is None and args.state_dir is None
        assert args.breaker_threshold == 3
        assert args.breaker_cooldown_s == 30.0
        assert args.port_file is None and not args.fsync

    def test_serve_flags_parsed(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--backend", "pool",
             "--max-inflight", "4", "--max-queued", "2",
             "--deadline-s", "1.5", "--drain-grace-s", "0.2",
             "--rate", "10", "--burst", "5", "--cache-dir", "c",
             "--state-dir", "s", "--breaker-threshold", "1",
             "--port-file", "p.txt", "--fsync"]
        )
        assert args.port == 0 and args.backend == "pool"
        assert args.max_inflight == 4 and args.max_queued == 2
        assert args.deadline_s == 1.5 and args.drain_grace_s == 0.2
        assert args.rate == 10.0 and args.burst == 5
        assert args.cache_dir == "c" and args.state_dir == "s"
        assert args.breaker_threshold == 1 and args.port_file == "p.txt"
        assert args.fsync

    def test_serve_rejects_unknown_backend(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--backend", "fax"])
        capsys.readouterr()
