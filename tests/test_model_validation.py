"""Systematic validation of the analytic runtime models against the
discrete-event simulators, across the parameter regimes the sweeps visit."""

import numpy as np
import pytest

from repro.arch.machines import MILAN, SKYLAKE
from repro.desim.loopsim import simulate_loop
from repro.desim.stealing import TaskGraph, WorkStealingSimulator
from repro.runtime.affinity import compute_placement
from repro.runtime.costs import get_costs
from repro.runtime.icv import EnvConfig, resolve_icvs
from repro.runtime.kernel import RegionEngine, task_acquire_seconds
from repro.runtime.program import LoadPattern, LoopRegion, TaskRegion


def price(region, machine=MILAN, **env):
    icvs = resolve_icvs(EnvConfig(**env), machine)
    placement = compute_placement(icvs, machine)
    engine = RegionEngine(machine, icvs, placement, get_costs(machine.name))
    return engine.loop_region_seconds(region)


def iter_costs(region, machine, seed=0):
    """Materialize the region's iteration costs in seconds."""
    from repro.runtime.costs import work_seconds

    rng = np.random.default_rng(seed)
    mean = work_seconds(region.iter_work, machine)
    n = region.n_iters
    if region.pattern is LoadPattern.UNIFORM:
        return np.full(n, mean)
    if region.pattern is LoadPattern.LINEAR:
        return mean * (1.0 + region.imbalance * (np.arange(n) / n - 0.5))
    return np.maximum(
        rng.normal(mean, region.imbalance * mean, size=n), 0.0
    )


class TestLoopModelVsChunkDES:
    """The analytic loop pricing vs the per-chunk DES, regime by regime.

    The analytic model omits memory effects and sync here (bw=0,
    reductions=0), so the comparison isolates scheduling."""

    @pytest.mark.parametrize(
        "n,iter_work,schedule,chunk",
        [
            (20_000, 1e-6, "dynamic", 1),
            (20_000, 1e-6, "dynamic", 64),
            (100_000, 5e-8, "dynamic", 1),     # dispatch-bound regime
            (100_000, 5e-8, "dynamic", 1000),  # rescued by chunking
            (20_000, 1e-6, "guided", 1),
        ],
    )
    def test_dynamic_guided_tracks_des(self, n, iter_work, schedule, chunk):
        machine = SKYLAKE
        region = LoopRegion(
            "l", n_iters=n, iter_work=iter_work,
            fixed_schedule=schedule, fixed_chunk=chunk,
        )
        analytic = price(region, machine=machine)

        costs = iter_costs(region, machine)
        icvs = resolve_icvs(EnvConfig(), machine)
        # The grab cost includes the shared counter's line bouncing (the
        # analytic model's (1 + 0.02 T) factor); the DES lock serializes
        # whatever per-grab holding time it is given.
        dispatch = (
            get_costs(machine.name).dispatch_ns * 1e-9
            * (1.0 + 0.02 * icvs.nthreads)
        )
        des = simulate_loop(
            costs, icvs.nthreads, schedule=schedule, chunk=chunk,
            dispatch_time=dispatch,
        )
        # Subtract the analytic join cost (the DES has no barrier).
        from repro.runtime.barrier import join_seconds

        placement = compute_placement(icvs, machine)
        body = analytic - join_seconds(icvs, placement,
                                       get_costs(machine.name))
        assert body == pytest.approx(des.makespan, rel=0.35), (
            f"analytic {body:.2e} vs DES {des.makespan:.2e}"
        )

    @pytest.mark.parametrize("imbalance", [0.3, 0.8])
    def test_random_pattern_static_tracks_des(self, imbalance):
        machine = SKYLAKE
        region = LoopRegion(
            "l", n_iters=20_000, iter_work=1e-6,
            pattern=LoadPattern.RANDOM, imbalance=imbalance,
        )
        analytic = price(region, machine=machine)
        makespans = []
        for seed in range(8):
            costs = iter_costs(region, machine, seed=seed)
            res = simulate_loop(costs, 40, schedule="static")
            makespans.append(res.makespan)
        des = float(np.mean(makespans))
        from repro.runtime.barrier import join_seconds

        icvs = resolve_icvs(EnvConfig(), machine)
        placement = compute_placement(icvs, machine)
        body = analytic - join_seconds(icvs, placement,
                                       get_costs(machine.name))
        assert body == pytest.approx(des, rel=0.15)

    def test_schedule_preference_agrees_between_models(self):
        """Both models must agree on WHICH schedule wins per regime."""
        machine = SKYLAKE
        regimes = {
            # (pattern, imbalance, n, iter_work) -> coarse+imbalanced
            "imbalanced": (LoadPattern.RANDOM, 1.0, 4_000, 2e-5),
            # fine-grained uniform: static wins, dynamic,1 catastrophic
            "fine": (LoadPattern.UNIFORM, 0.0, 200_000, 5e-8),
        }
        for name, (pattern, imb, n, iw) in regimes.items():
            analytic_times = {}
            des_times = {}
            for schedule in ("static", "dynamic", "guided"):
                region = LoopRegion(
                    "l", n_iters=n, iter_work=iw, pattern=pattern,
                    imbalance=imb, fixed_schedule=None,
                )
                analytic_times[schedule] = price(
                    region, machine=machine, schedule=schedule
                )
                costs = iter_costs(region, machine, seed=1)
                dispatch = (
                    get_costs(machine.name).dispatch_ns * 1e-9 * 1.8
                )
                des_times[schedule] = simulate_loop(
                    costs, 40, schedule=schedule, chunk=1,
                    dispatch_time=dispatch,
                ).makespan
            analytic_best = min(analytic_times, key=analytic_times.get)
            des_best = min(des_times, key=des_times.get)
            analytic_worst = max(analytic_times, key=analytic_times.get)
            des_worst = max(des_times, key=des_times.get)
            assert analytic_worst == des_worst, (name, analytic_times,
                                                 des_times)
            # Best can tie between static/guided; require agreement on the
            # static-vs-dynamic direction instead of exact identity.
            assert (analytic_times["dynamic"] > analytic_times["static"]) == (
                des_times["dynamic"] > des_times["static"]
            ), name
            del analytic_best, des_best


class TestTaskModelRegimes:
    """Analytic task model vs the work-stealing DES across granularities."""

    @pytest.mark.parametrize(
        "depth,branching,leaf_work,rel_tol",
        [
            (4, 4, 1e-4, 0.25),   # coarse tasks: throughput bound
            (6, 3, 1e-5, 0.35),   # medium
            (8, 2, 2e-6, 0.50),   # fine: overhead-dominated, roughest
        ],
    )
    def test_makespan_tracks_des(self, depth, branching, leaf_work, rel_tol):
        machine = MILAN
        region = TaskRegion("t", depth=depth, branching=branching,
                            leaf_work=leaf_work, node_work=leaf_work / 10)
        icvs = resolve_icvs(EnvConfig(library="turnaround"), machine)
        placement = compute_placement(icvs, machine)
        engine = RegionEngine(machine, icvs, placement,
                              get_costs(machine.name))
        analytic = engine._task_analytic(region)
        des = engine._task_des(region, seed=3)
        assert analytic == pytest.approx(des, rel=rel_tol)

    def test_speedup_scaling_direction(self):
        """Adding workers helps in both models, saturating near the
        tree's parallelism."""
        machine = MILAN
        region = TaskRegion("t", depth=7, branching=2, leaf_work=2e-5)
        times_analytic = []
        times_des = []
        for threads in (4, 16, 64):
            icvs = resolve_icvs(
                EnvConfig(num_threads=threads, library="turnaround"), machine
            )
            placement = compute_placement(icvs, machine)
            engine = RegionEngine(machine, icvs, placement,
                                  get_costs(machine.name))
            times_analytic.append(engine._task_analytic(region))
            times_des.append(engine._task_des(region, seed=1))
        assert times_analytic == sorted(times_analytic, reverse=True)
        assert times_des == sorted(times_des, reverse=True)
