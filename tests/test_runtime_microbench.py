"""Tests for the EPCC-style microbenchmark probes."""

import numpy as np
import pytest

from repro.arch.machines import A64FX, MILAN, SKYLAKE
from repro.runtime.icv import EnvConfig
from repro.runtime.microbench import overhead_table, run_microbench


class TestMicrobench:
    def test_report_fields_positive(self):
        rep = run_microbench(MILAN)
        assert rep.parallel_us > 0
        assert rep.barrier_us > 0
        assert rep.wake_us > 0
        assert rep.reduction_tree_us > 0
        assert rep.dynamic_per_iter_ns > 0

    def test_parallel_includes_barrier(self):
        rep = run_microbench(MILAN)
        assert rep.parallel_us > rep.barrier_us

    def test_turnaround_barrier_cheaper(self):
        passive = run_microbench(MILAN)
        active = run_microbench(MILAN, EnvConfig(library="turnaround"))
        assert active.barrier_us < passive.barrier_us
        # Active waiting never sleeps: the wake probe costs nothing extra.
        assert active.wake_us == 0.0

    def test_tree_beats_critical_at_full_team(self):
        for machine in (A64FX, SKYLAKE, MILAN):
            rep = run_microbench(machine)
            assert rep.reduction_tree_us < rep.reduction_critical_us, (
                machine.name
            )

    def test_dynamic_costs_more_per_iter_than_guided(self):
        rep = run_microbench(MILAN)
        assert rep.dynamic_per_iter_ns > rep.guided_per_iter_ns
        assert rep.guided_per_iter_ns >= 0.0

    def test_a64fx_has_heaviest_os_paths(self):
        reports = {m.name: run_microbench(m) for m in (A64FX, SKYLAKE, MILAN)}
        assert reports["a64fx"].wake_us > reports["skylake"].wake_us
        assert reports["a64fx"].wake_us > reports["milan"].wake_us
        assert reports["a64fx"].parallel_us > reports["skylake"].parallel_us

    def test_small_team_cheaper_barrier(self):
        full = run_microbench(MILAN)
        small = run_microbench(MILAN, EnvConfig(num_threads=8))
        assert small.barrier_us < full.barrier_us

    def test_overhead_table_covers_all_machines(self):
        table = overhead_table()
        assert set(table.unique("arch")) == {"a64fx", "skylake", "milan"}
        assert table.num_rows == 3
        assert (np.asarray(table["barrier_us"], float) > 0).all()
