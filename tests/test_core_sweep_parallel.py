"""Regression tests for the streaming multiprocess sweep path.

The historical bug: ``run_sweep(n_processes > 1)`` used ``pool.map`` — a
full barrier — so the ``progress`` callback documented as incremental
fired only after the entire sweep had completed, and every batch payload
re-pickled the full configuration grid.  These tests pin the streaming
contract — results are consumed (and progress emitted) as each batch
lands, and workers receive only a lightweight :class:`BatchSpec` — now
through the supervised executor that replaced the bare pool.
"""

import pytest

import repro.core.sweep as sweep_mod
from repro.core.sweep import BatchSpec, SweepPlan, plan_batches, run_sweep


class _LazyFakeSupervisor:
    """In-process Supervisor stand-in whose ``stream`` computes lazily.

    Each task is computed only when the consumer asks for the next
    result, so the event log distinguishes streaming consumption
    (compute/progress interleaved) from a barrier (all computes, then
    all progress).
    """

    def __init__(self, plan, space, log):
        sweep_mod._init_worker(plan, space)
        self.log = log
        self.tasks = []
        self.worker_respawns = 0

    def stream(self, tasks, ledger=None):
        self.tasks = list(tasks)
        for task in self.tasks:
            batch = task.payload[1]
            self.log.append(("compute", batch.app, batch.input_size))
            yield sweep_mod._supervised_run_batch(task.payload, 0)

    def completed_unyielded(self):
        return []

    def close(self):
        pass


@pytest.fixture
def two_batch_plan():
    return SweepPlan(arch="milan", workload_names=("cg",), scale="small",
                     repetitions=2, inputs_limit=4)


class TestStreamingProgress:
    def test_progress_interleaves_with_batch_arrival(self, monkeypatch,
                                                     two_batch_plan):
        log = []
        monkeypatch.setattr(
            sweep_mod, "_make_supervisor",
            lambda n, plan, space, chaos, policy, fail_policy:
            _LazyFakeSupervisor(plan, space, log),
        )

        def progress(done, total, app, inp, threads):
            log.append(("progress", done, total))

        result = run_sweep(two_batch_plan, n_processes=2, progress=progress)
        assert result.n_samples > 0

        kinds = [e[0] for e in log]
        n = len(plan_batches(two_batch_plan))
        assert n >= 2
        # Strict interleaving: compute_i is immediately followed by
        # progress_i.  Under a barrier dispatch the log would have been
        # n computes followed by n progress calls.
        assert kinds == ["compute", "progress"] * n
        dones = [e[1] for e in log if e[0] == "progress"]
        assert dones == list(range(1, n + 1))

    def test_worker_payload_is_batchspec_only(self, monkeypatch,
                                              two_batch_plan):
        """The grid must live in worker state, not in batch payloads."""
        log = []
        supervisors = []

        def make_supervisor(n, plan, space, chaos, policy, fail_policy):
            sup = _LazyFakeSupervisor(plan, space, log)
            supervisors.append(sup)
            return sup

        monkeypatch.setattr(sweep_mod, "_make_supervisor", make_supervisor)
        run_sweep(two_batch_plan, n_processes=2)
        (sup,) = supervisors
        batches = plan_batches(two_batch_plan)
        assert [t.payload[1] for t in sup.tasks] == batches
        assert all(type(t.payload[1]) is BatchSpec for t in sup.tasks)
        # Task ids are the contiguous stream order; indices address the
        # full batch list (here no cache, so they coincide).
        assert [t.task_id for t in sup.tasks] == list(range(len(batches)))
        assert [t.index for t in sup.tasks] == list(range(len(batches)))
        # The initializer materialized the grid once for the process.
        assert len(sweep_mod._WORKER_STATE["configs"]) > 1

    def test_real_supervisor_progress_fires_per_batch_in_order(self):
        plan = SweepPlan(arch="milan", workload_names=("cg", "nqueens"),
                         scale="small", repetitions=2)
        calls = []
        run_sweep(plan, n_processes=2,
                  progress=lambda *args: calls.append(args))
        batches = plan_batches(plan)
        assert [c[0] for c in calls] == list(range(1, len(batches) + 1))
        assert all(c[1] == len(batches) for c in calls)
        assert [(c[2], c[3], c[4]) for c in calls] == [
            (b.app, b.input_size, b.nthreads) for b in batches
        ]


class TestParallelParity:
    def test_parallel_bit_identical_to_serial(self):
        plan = SweepPlan(arch="skylake", workload_names=("alignment", "ep"),
                         scale="small", repetitions=2, inputs_limit=2)
        serial = run_sweep(plan, n_processes=1)
        parallel = run_sweep(plan, n_processes=3)
        assert parallel.records == serial.records

    def test_parallel_des_fidelity(self):
        plan = SweepPlan(arch="milan", workload_names=("nqueens",),
                         scale="small", repetitions=1, inputs_limit=2,
                         fidelity="des")
        serial = run_sweep(plan)
        parallel = run_sweep(plan, n_processes=2)
        assert parallel.records == serial.records


class TestDispatchTuning:
    def test_batch_timeout_scales_with_batch_size(self):
        small = sweep_mod._batch_timeout_s(10, 2)
        large = sweep_mod._batch_timeout_s(1000, 4)
        assert small >= sweep_mod.BASE_BATCH_TIMEOUT_S
        assert large > small

    def test_invalid_fidelity_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            SweepPlan(arch="milan", fidelity="quantum")

    def test_invalid_fail_policy_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            run_sweep(SweepPlan(arch="milan", workload_names=("cg",),
                                inputs_limit=1),
                      fail_policy="retry-forever")
