"""Flow lint (plane 4): call-graph construction, effect summaries, and
fault-injection proofs that each FLOW pass fires on a crafted violation
— plus the real-tree gate (zero unwaived findings on src/repro)."""

import textwrap

import pytest

from repro.lint import Severity, unwaived
from repro.lint.flow import (
    build_callgraph,
    check_frame_protocol,
    check_resource_safety,
    check_transitive_nondeterminism,
    compute_summaries,
    flow_lint,
)
from repro.lint.flow.summaries import direct_effects

pytestmark = pytest.mark.lint


def make_tree(tmp_path, files):
    """Materialize ``{rel_path: source}`` under a package root named
    ``repro`` so qualnames look like the shipped tree's."""
    root = tmp_path / "repro"
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


def by_rule(findings, rule):
    return [f for f in findings if f.rule == rule]


# ----------------------------------------------------------------------
# Call graph
# ----------------------------------------------------------------------
class TestCallGraph:
    def test_resolves_imported_and_relative_calls(self, tmp_path):
        root = make_tree(tmp_path, {
            "util.py": """
                def helper():
                    return 1
            """,
            "a.py": """
                from repro.util import helper as h
                def caller():
                    return h()
            """,
            "b.py": """
                from .util import helper
                def caller():
                    return helper()
            """,
        })
        graph = build_callgraph(root)
        for mod in ("a", "b"):
            sites = graph.calls[f"repro.{mod}.caller"]
            assert [s.callee for s in sites] == ["repro.util.helper"]

    def test_resolves_self_and_inferred_method_dispatch(self, tmp_path):
        root = make_tree(tmp_path, {
            "box.py": """
                class Box:
                    def get(self):
                        return self._load()
                    def _load(self):
                        return 0

                def use(box: Box):
                    return box.get()

                def construct():
                    b = Box()
                    return b.get()
            """,
        })
        graph = build_callgraph(root)
        assert [s.callee for s in graph.calls["repro.box.Box.get"]] == [
            "repro.box.Box._load"
        ]
        assert [s.callee for s in graph.calls["repro.box.use"]] == [
            "repro.box.Box.get"
        ]
        assert "repro.box.Box.get" in [
            s.callee for s in graph.calls["repro.box.construct"]
        ]

    def test_constructor_edges_and_reverse_adjacency(self, tmp_path):
        root = make_tree(tmp_path, {
            "c.py": """
                class Conn:
                    def __init__(self):
                        self.n = 0

                def make():
                    return Conn()
            """,
        })
        graph = build_callgraph(root)
        assert [s.callee for s in graph.calls["repro.c.make"]] == [
            "repro.c.Conn.__init__"
        ]
        callers = graph.callers()["repro.c.Conn.__init__"]
        assert [c for c, _ in callers] == ["repro.c.make"]

    def test_externals_keep_canonical_names(self, tmp_path):
        root = make_tree(tmp_path, {
            "x.py": """
                import numpy as np
                def draw(seed):
                    return np.random.default_rng(seed)
            """,
        })
        graph = build_callgraph(root)
        (site,) = graph.calls["repro.x.draw"]
        assert site.callee is None
        assert site.external == "numpy.random.default_rng"


# ----------------------------------------------------------------------
# Effect summaries
# ----------------------------------------------------------------------
class TestSummaries:
    def test_direct_effects_all_kinds(self, tmp_path):
        root = make_tree(tmp_path, {
            "m.py": """
                import os
                import random
                import time

                def noisy():
                    t = time.monotonic()
                    r = random.random()
                    e = os.environ["HOME"]
                    if t < 0:
                        raise ValueError(r, e)
            """,
        })
        graph = build_callgraph(root)
        kinds = {s.kind for s in direct_effects(graph, "repro.m.noisy")}
        assert kinds == {"wall-clock", "unseeded-rng", "env-read", "raises"}

    def test_seeded_rng_is_not_an_effect(self, tmp_path):
        root = make_tree(tmp_path, {
            "m.py": """
                import random
                import numpy as np

                def quiet(seed):
                    a = np.random.default_rng(seed)
                    b = random.Random(seed)
                    return a, b
            """,
        })
        graph = build_callgraph(root)
        summaries = compute_summaries(graph)
        assert summaries.effects("repro.m.quiet") == frozenset()

    def test_transitive_propagation_with_witness_chain(self, tmp_path):
        root = make_tree(tmp_path, {
            "chain.py": """
                import time

                def leaf():
                    return time.perf_counter()

                def middle():
                    return leaf()

                def top():
                    return middle()
            """,
        })
        graph = build_callgraph(root)
        summaries = compute_summaries(graph)
        assert "wall-clock" in summaries.effects("repro.chain.top")
        chain = summaries.witness_chain("repro.chain.top", "wall-clock")
        assert len(chain) == 3  # top -> middle -> leaf -> the call itself
        assert "time.perf_counter" in chain[-1]


# ----------------------------------------------------------------------
# FLOW001 — transitive nondeterminism (fault injection: >= 2 call hops)
# ----------------------------------------------------------------------
class TestFlow001:
    TREE = {
        "pipeline.py": """
            from repro.stats import summarize

            def pack_records(values):
                return [summarize(v) for v in values]
        """,
        "stats.py": """
            from repro.jitter import fuzz

            def summarize(v):
                return v + fuzz()
        """,
        "jitter.py": """
            import random

            def fuzz():
                return random.random()
        """,
    }

    def test_fires_through_two_call_hops(self, tmp_path):
        root = make_tree(tmp_path, self.TREE)
        graph = build_callgraph(root)
        findings = check_transitive_nondeterminism(
            graph, compute_summaries(graph),
            roots=("repro.pipeline.pack_records",),
        )
        (f,) = findings
        assert f.severity is Severity.ERROR
        assert f.path == "pipeline.py"
        # The witness chain must name every laundering hop.
        for hop in ("pack_records", "summarize", "fuzz", "random.random"):
            assert hop in f.message

    def test_silent_when_the_chain_is_seeded(self, tmp_path):
        tree = dict(self.TREE)
        tree["jitter.py"] = """
            import random

            def fuzz(seed=7):
                return random.Random(seed).random()
        """
        root = make_tree(tmp_path, tree)
        graph = build_callgraph(root)
        findings = check_transitive_nondeterminism(
            graph, compute_summaries(graph),
            roots=("repro.pipeline.pack_records",),
        )
        assert findings == []

    def test_missing_root_is_a_warning(self, tmp_path):
        root = make_tree(tmp_path, {"empty.py": "X = 1\n"})
        graph = build_callgraph(root)
        (f,) = check_transitive_nondeterminism(
            graph, compute_summaries(graph),
            roots=("repro.gone.function",),
        )
        assert f.severity is Severity.WARNING
        assert "gone.function" in f.subject


# ----------------------------------------------------------------------
# FLOW002 — resource safety (fault injection: leak on exception path)
# ----------------------------------------------------------------------
def flow002(tmp_path, source, rel="resilience/net.py"):
    root = make_tree(tmp_path, {rel: source})
    return check_resource_safety(build_callgraph(root))


class TestFlow002:
    def test_fires_on_unreleased_socket_on_exception_path(self, tmp_path):
        findings = flow002(tmp_path, """
            import socket

            def risky():
                pass

            def leaky():
                s = socket.socket()
                risky()
                s.close()
        """)
        (f,) = findings
        assert f.severity is Severity.ERROR
        assert "leaks if" in f.message and "risky" in f.message

    def test_fires_when_never_released(self, tmp_path):
        findings = flow002(tmp_path, """
            import socket

            def forgetful():
                s = socket.socket()
                return None
        """)
        (f,) = findings
        assert "never released" in f.message

    def test_finally_guard_is_safe(self, tmp_path):
        assert flow002(tmp_path, """
            import socket

            def risky():
                pass

            def guarded():
                s = socket.socket()
                try:
                    risky()
                finally:
                    s.close()
        """) == []

    def test_context_manager_is_safe(self, tmp_path):
        assert flow002(tmp_path, """
            import socket

            def managed():
                with socket.socket() as s:
                    return s.fileno()
        """) == []

    def test_escape_transfers_ownership(self, tmp_path):
        assert flow002(tmp_path, """
            import socket

            def register(s):
                pass

            def handed_off():
                s = socket.socket()
                register(s)

            def returned():
                s = socket.socket()
                return s
        """) == []

    def test_out_of_scope_path_is_silent(self, tmp_path):
        assert flow002(tmp_path, """
            import socket

            def leaky():
                s = socket.socket()
                return None
        """, rel="core/net.py") == []

    def test_mkstemp_only_tracks_the_fd(self, tmp_path):
        # (fd, path): the str path needs no release; os.close(fd) under
        # finally covers the fd.
        assert flow002(tmp_path, """
            import os
            import tempfile

            def spool(data):
                fd, path = tempfile.mkstemp()
                try:
                    os.write(fd, data)
                finally:
                    os.close(fd)
                return path
        """) == []


# ----------------------------------------------------------------------
# FLOW003 — frame protocol (fault injection: sent-but-undispatched kind)
# ----------------------------------------------------------------------
TRANSPORT = """
    def send_frame(sock, message):
        pass

    def send_truncated_frame(sock, message):
        pass

    def recv_frame(sock, timeout=None):
        return ("task", 1)
"""


class TestFlow003:
    def test_fires_on_sent_but_undispatched_kind(self, tmp_path):
        root = make_tree(tmp_path, {
            "resilience/transport.py": TRANSPORT,
            "resilience/coordinator.py": """
                from repro.resilience.transport import send_frame

                def dispatch(sock):
                    send_frame(sock, ("task", 1, "payload"))
                    send_frame(sock, ("poison", 0))
            """,
            "resilience/node.py": """
                from repro.resilience.transport import recv_frame

                def serve(sock):
                    message = recv_frame(sock)
                    if message[0] == "task":
                        return message[1]
            """,
        })
        findings = check_frame_protocol(build_callgraph(root))
        (f,) = findings
        assert f.severity is Severity.ERROR
        assert f.subject == "frame-kind:poison"
        assert "no receiver dispatch arm" in f.message

    def test_fires_on_dead_dispatch_arm(self, tmp_path):
        root = make_tree(tmp_path, {
            "resilience/transport.py": TRANSPORT,
            "resilience/coordinator.py": """
                from repro.resilience.transport import send_frame

                def dispatch(sock):
                    send_frame(sock, ("task", 1))
            """,
            "resilience/node.py": """
                from repro.resilience.transport import recv_frame

                def serve(sock):
                    message = recv_frame(sock)
                    kind = message[0]
                    if kind == "task":
                        return message[1]
                    if kind == "retired":
                        return None
            """,
        })
        findings = check_frame_protocol(build_callgraph(root))
        (f,) = findings
        assert f.subject == "frame-kind:retired"
        assert "nothing ever sends it" in f.message

    def test_fires_on_non_literal_payload(self, tmp_path):
        root = make_tree(tmp_path, {
            "resilience/transport.py": TRANSPORT,
            "resilience/coordinator.py": """
                from repro.resilience.transport import send_frame

                def dispatch(sock, message):
                    send_frame(sock, message)
            """,
        })
        findings = check_frame_protocol(build_callgraph(root))
        (f,) = findings
        assert "not statically decidable" in f.message

    def test_balanced_protocol_is_silent(self, tmp_path):
        root = make_tree(tmp_path, {
            "resilience/transport.py": TRANSPORT,
            "resilience/coordinator.py": """
                from repro.resilience.transport import recv_frame, send_frame

                def dispatch(sock):
                    send_frame(sock, ("task", 1))
                    reply = recv_frame(sock)
                    if reply[0] == "result":
                        return reply[1]
            """,
            "resilience/node.py": """
                from repro.resilience.transport import recv_frame, send_frame

                def serve(sock):
                    message = recv_frame(sock)
                    if message[0] == "task":
                        send_frame(sock, ("result", message[1]))
            """,
        })
        assert check_frame_protocol(build_callgraph(root)) == []


# ----------------------------------------------------------------------
# Waiver integration and the real-tree gate
# ----------------------------------------------------------------------
class TestFlowWaivers:
    def test_flow_waiver_covers_a_finding(self, tmp_path):
        root = make_tree(tmp_path, TestFlow001.TREE)
        waivers = tmp_path / "waivers.toml"
        waivers.write_text(textwrap.dedent("""
            [[waiver]]
            rule = "FLOW001"
            path = "pipeline.py"
            reason = "intentional in this synthetic tree"
        """), encoding="utf-8")
        findings = flow_lint(
            src_root=root, waivers_path=waivers,
            roots=("repro.pipeline.pack_records",),
        )
        assert unwaived(findings) == []
        assert [f.waived for f in by_rule(findings, "FLOW001")] == [True]

    def test_stale_flow_waiver_reports_sim000_with_line(self, tmp_path):
        root = make_tree(tmp_path, {"quiet.py": "X = 1\n"})
        waivers = tmp_path / "waivers.toml"
        waivers.write_text(
            "# header comment\n"
            "[[waiver]]\n"
            'rule = "FLOW002"\n'
            'path = "nowhere.py"\n'
            'reason = "stale"\n',
            encoding="utf-8",
        )
        findings = flow_lint(src_root=root, waivers_path=waivers, roots=())
        (f,) = by_rule(findings, "SIM000")
        assert f.line == 2  # the [[waiver]] header line, clickable

    def test_sim_waivers_are_not_flow_plane_rot(self, tmp_path):
        # A SIM004 waiver belongs to plane 3; the flow plane must not
        # report it as unused (and vice versa for FLOW entries).
        root = make_tree(tmp_path, {"quiet.py": "X = 1\n"})
        waivers = tmp_path / "waivers.toml"
        waivers.write_text(
            '[[waiver]]\nrule = "SIM004"\npath = "a.py"\nreason = "r"\n',
            encoding="utf-8",
        )
        findings = flow_lint(src_root=root, waivers_path=waivers, roots=())
        assert findings == []


class TestRealTree:
    def test_src_repro_has_zero_unwaived_findings(self):
        findings = flow_lint()
        assert unwaived(findings) == [], (
            "unwaived flow violations in src/repro:\n"
            + "\n".join(f"  {f.rule} {f.location()}: {f.message}"
                        for f in unwaived(findings))
        )

    def test_every_result_root_exists(self):
        # A renamed root function must fail loudly, not silently drop
        # coverage: assert no FLOW001 stale-root warnings on the tree.
        findings = flow_lint()
        assert not [f for f in by_rule(findings, "FLOW001")
                    if f.severity is Severity.WARNING]

    def test_shipped_frame_protocol_is_balanced(self):
        from repro.lint.selflint import DEFAULT_SRC_ROOT

        graph = build_callgraph(DEFAULT_SRC_ROOT)
        assert check_frame_protocol(graph) == []

    def test_flow_lint_is_deterministic(self):
        assert flow_lint() == flow_lint()
