"""Tests for frame aggregation helpers and CSV round-tripping."""

import numpy as np
import pytest

from repro.errors import FrameError
from repro.frame.io import (
    read_csv,
    table_from_csv_text,
    table_to_csv_text,
    write_csv,
)
from repro.frame.ops import AGGREGATORS, aggregate_column, concat_tables
from repro.frame.table import Table


class TestAggregators:
    @pytest.mark.parametrize(
        "agg,expected",
        [
            ("mean", 2.5),
            ("median", 2.5),
            ("min", 1.0),
            ("max", 4.0),
            ("sum", 10.0),
            ("count", 4),
            ("nunique", 4),
            ("first", 1.0),
            ("last", 4.0),
        ],
    )
    def test_named(self, agg, expected):
        arr = np.array([1.0, 2.0, 3.0, 4.0])
        assert aggregate_column(arr, agg) == expected

    def test_std_single_sample_zero(self):
        assert aggregate_column(np.array([5.0]), "std") == 0.0

    def test_std_matches_numpy_ddof1(self):
        arr = np.array([1.0, 2.0, 4.0])
        assert aggregate_column(arr, "std") == pytest.approx(np.std(arr, ddof=1))

    def test_unknown_aggregator(self):
        with pytest.raises(FrameError):
            aggregate_column(np.array([1.0]), "bogus")

    def test_empty_column_rejected(self):
        with pytest.raises(FrameError):
            aggregate_column(np.array([]), "mean")

    def test_count_of_empty_is_zero(self):
        assert aggregate_column(np.array([]), "count") == 0

    def test_non_numeric_mean_rejected(self):
        arr = np.array(["a", "b"], dtype=object)
        with pytest.raises(FrameError):
            aggregate_column(arr, "mean")

    def test_all_registered_aggregators_callable(self):
        arr = np.array([1.0, 2.0])
        for name in AGGREGATORS:
            aggregate_column(arr, name)  # must not raise


class TestNuniqueMissing:
    """Regression: ``nan != nan``, so a set of raw cells used to count
    every nan occurrence as a distinct value."""

    def test_repeated_nan_counts_once(self):
        arr = np.array([1.0, np.nan, np.nan, np.nan, 2.0])
        assert aggregate_column(arr, "nunique") == 3

    def test_none_and_nan_share_one_sentinel(self):
        arr = np.empty(4, dtype=object)
        arr[:] = [None, float("nan"), "a", "a"]
        assert aggregate_column(arr, "nunique") == 2

    def test_np_float_nan_normalized_too(self):
        arr = np.empty(3, dtype=object)
        arr[:] = [np.float64("nan"), float("nan"), 1.0]
        assert aggregate_column(arr, "nunique") == 2

    def test_distinct_values_still_distinct(self):
        arr = np.array([1.0, 2.0, 1.0])
        assert aggregate_column(arr, "nunique") == 2


class TestConcat:
    def test_concat_basic(self):
        a = Table({"x": [1, 2], "s": ["a", "b"]})
        b = Table({"x": [3], "s": ["c"]})
        c = concat_tables([a, b])
        assert c.num_rows == 3
        assert list(c["s"]) == ["a", "b", "c"]

    def test_concat_column_order_from_first(self):
        a = Table({"x": [1], "y": [2]})
        b = Table({"y": [3], "x": [4]})
        c = concat_tables([a, b])
        assert c.column_names == ["x", "y"]
        assert list(c["x"]) == [1, 4]

    def test_concat_mismatched_columns_rejected(self):
        with pytest.raises(FrameError):
            concat_tables([Table({"x": [1]}), Table({"y": [1]})])

    def test_concat_empty_list(self):
        assert concat_tables([]).num_rows == 0

    def test_concat_mixed_dtypes_promotes_to_object(self):
        a = Table({"x": [1, 2]})
        b = Table({"x": ["s"]})
        c = concat_tables([a, b])
        assert c.num_rows == 3


class TestCSV:
    def test_roundtrip_types(self, tmp_path):
        t = Table(
            {
                "name": ["cg", "bt"],
                "count": [3, 4],
                "val": [1.5, np.nan],
            }
        )
        path = tmp_path / "t.csv"
        write_csv(t, path)
        back = read_csv(path)
        assert back.column("count").dtype.kind == "i"
        assert back.column("val").dtype.kind == "f"
        assert np.isnan(back["val"][1])
        assert list(back["name"]) == ["cg", "bt"]

    def test_empty_cells_in_int_column_promote_to_float(self):
        t = table_from_csv_text("a,b\n1,x\n,y\n3,z\n")
        assert t.column("a").dtype.kind == "f"
        assert np.isnan(t["a"][1])

    def test_blank_lines_skipped(self):
        t = table_from_csv_text("a\n1\n\n3\n")
        assert t.num_rows == 2

    def test_string_column_keeps_none_for_empty(self):
        t = table_from_csv_text("a,b\nx,1\n,2\n")
        assert t["a"][1] is None

    def test_header_only(self):
        t = table_from_csv_text("a,b\n")
        assert t.num_rows == 0
        assert t.column_names == ["a", "b"]

    def test_empty_input_rejected(self):
        with pytest.raises(FrameError):
            table_from_csv_text("")

    def test_duplicate_header_rejected(self):
        with pytest.raises(FrameError):
            table_from_csv_text("a,a\n1,2\n")

    def test_ragged_row_rejected(self):
        with pytest.raises(FrameError):
            table_from_csv_text("a,b\n1\n")

    def test_quoting_roundtrip(self):
        t = Table({"s": ['with,comma', 'with "quote"']})
        assert table_from_csv_text(table_to_csv_text(t)) == t

    def test_float_precision_roundtrip(self):
        t = Table({"v": [0.1 + 0.2, 1e-300, 1e300]})
        back = table_from_csv_text(table_to_csv_text(t))
        assert list(back["v"]) == list(t["v"])
