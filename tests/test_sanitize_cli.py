"""The ``repro-omp sanitize`` surface (suites, exit codes, --format,
--report), the shared report renderer across all three analysis planes,
and the tie-break stability gate on the golden-trace bless flow."""

import json

import pytest

from repro.check.differential import (
    bless_golden_traces,
    verify_bless_stability,
)
from repro.cli import build_parser, main
from repro.desim import ambient_tiebreak_seed
from repro.errors import CheckFailure
from repro.lint.findings import Finding, Severity
from repro.reporting import render_report, report_payload
from repro.sanitize import run_sanitize

pytestmark = pytest.mark.sanitize


class TestParser:
    def test_sanitize_subcommand_present(self):
        args = build_parser().parse_args(["sanitize", "--suite", "hb"])
        assert args.command == "sanitize" and args.suite == "hb"
        assert args.seeds == 5 and args.fmt == "text"

    def test_arch_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sanitize", "--arch", "pentium"])

    def test_all_planes_share_format_flag(self):
        for cmd in (["check"], ["lint"], ["sanitize"]):
            args = build_parser().parse_args(cmd + ["--format", "json"])
            assert args.fmt == "json"


class TestRunner:
    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError, match="unknown sanitize suite"):
            run_sanitize(suites=("static", "tsan"))

    def test_error_findings_fail_the_gate(self):
        report = run_sanitize(
            suites=("static",), archs=("milan",),
            env={"OMP_NUM_THREADS": "192", "KMP_LIBRARY": "turnaround"},
        )
        assert not report.passed
        assert all(f.rule == "DLK001" for f in report.failures())

    def test_warnings_do_not_fail_the_gate(self):
        # Manifest mode over one arch: plenty of WARN/INFO findings, none
        # ERROR — the sanitize gate (unlike lint's) must still pass.
        report = run_sanitize(suites=("static",), archs=("milan",))
        assert report.findings and report.passed
        assert report.stats["static"]["n_machines"] == 1


class TestCliExitCodes:
    def test_clean_run_exits_zero(self, capsys):
        assert main(["sanitize", "--suite", "fuzz", "--seeds", "2"]) == 0
        out = capsys.readouterr().out
        assert "sanitize gate (fuzz): PASS" in out
        assert "identical" in out

    def test_error_findings_exit_one(self, capsys):
        code = main([
            "sanitize", "--suite", "static", "--arch", "milan",
            "--env", "OMP_NUM_THREADS=192",
            "--env", "KMP_LIBRARY=turnaround",
        ])
        assert code == 1
        assert "DLK001" in capsys.readouterr().out

    def test_malformed_env_exits_two(self, capsys):
        assert main(["sanitize", "--env", "OMP_NUM_THREADS"]) == 2
        assert "VAR=VALUE" in capsys.readouterr().err


class TestCliJsonAndReport:
    def test_json_stdout_parses_with_plane_metadata(self, capsys):
        assert main([
            "sanitize", "--suite", "static", "--arch", "milan",
            "--workloads", "xsbench", "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["passed"] is True
        assert payload["suites"] == ["static"]
        assert payload["n_findings"] == len(payload["findings"])

    def test_report_artifact_matches_stdout_payload(self, tmp_path, capsys):
        report = tmp_path / "sanitize.json"
        assert main([
            "sanitize", "--suite", "fuzz", "--seeds", "2",
            "--format", "json", "--report", str(report),
        ]) == 0
        stdout_payload = json.loads(capsys.readouterr().out)
        file_payload = json.loads(report.read_text(encoding="utf-8"))
        assert file_payload == stdout_payload
        assert {o["identical"] for o in file_payload["fuzz"]} == {True}

    def test_lint_and_check_speak_json_too(self, capsys):
        assert main(["lint", "--env", "OMP_SCHEDULE=static",
                     "--format", "json"]) == 0
        lint_payload = json.loads(capsys.readouterr().out)
        assert lint_payload["planes"] == ["env:milan"]
        assert main(["check", "--suite", "invariants",
                     "--format", "json"]) == 0
        check_payload = json.loads(capsys.readouterr().out)
        assert check_payload["n_failed"] == 0
        assert len(check_payload["checks"]) == check_payload["n_checks"]


class TestSharedReporting:
    def test_payload_merges_findings_checks_and_extra(self):
        finding = Finding("RACE100", Severity.ERROR, "x", "boom")
        payload = report_payload(findings=[finding], suites=["hb"])
        assert payload["n_findings"] == 1
        assert payload["n_unwaived_failures"] == 1
        assert payload["suites"] == ["hb"]

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="unknown report format"):
            render_report("yaml", findings=[])


class TestBlessStabilityGate:
    def test_current_golden_cases_are_stable(self):
        verified = verify_bless_stability(seeds=(1,))
        assert all(n == 1 for n in verified.values())

    def test_unstable_model_refuses_to_bless(self, tmp_path, monkeypatch):
        from repro.check import differential
        from repro.runtime.trace import ExecutionTrace, TraceEvent

        def unstable_trace(case_id):
            # A model whose timing depends on the ambient tie-break seed —
            # exactly what the gate exists to keep out of fixtures.
            wobble = (ambient_tiebreak_seed() or 0) * 1e-3
            return ExecutionTrace(
                program=case_id, arch="milan", config={},
                events=(TraceEvent("p", "serial", 0.0, 1.0 + wobble, 1),),
            )

        monkeypatch.setattr(differential, "_compute_trace", unstable_trace)
        with pytest.raises(CheckFailure, match="tie-break-unstable"):
            bless_golden_traces(tmp_path)
        assert not list(tmp_path.iterdir()), "unstable bless wrote fixtures"

    def test_stability_check_can_be_bypassed_explicitly(self, tmp_path,
                                                        monkeypatch):
        from repro.check import differential
        from repro.runtime.trace import ExecutionTrace, TraceEvent

        monkeypatch.setattr(
            differential, "_compute_trace",
            lambda case_id: ExecutionTrace(
                program=case_id, arch="milan", config={},
                events=(TraceEvent("p", "serial", 0.0, 1.0, 1),),
            ),
        )
        written = bless_golden_traces(tmp_path, verify_stability=False)
        assert len(written) == len(differential.GOLDEN_CASES)
