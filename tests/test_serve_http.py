"""End-to-end HTTP tests for the tuning daemon.

Each test talks to a real :class:`~repro.serve.app.TuningDaemon` over a
real socket via the in-process harness — the same daemon object
``repro-omp serve`` runs.  A module-scoped daemon with a shared cache
keeps the suite fast (the first sweep computes, the rest hit cache);
behaviors that need special tuning (tight deadlines, tiny rate limits,
full queues) get their own short-lived daemons.
"""

import json
import socket
import threading

import pytest

from repro.core.sweep import SweepPlan, run_sweep
from repro.serve.app import DaemonConfig, TuningDaemon
from repro.serve.harness import DaemonHandle
from repro.serve.render import records_payload

#: The one plan every test serves (single batch; cache-warm after the
#: first computation).
PLAN_PAYLOAD = {
    "arch": "milan",
    "workloads": ["nqueens"],
    "scale": "small",
    "repetitions": 2,
    "inputs_limit": 1,
}
PLAN = SweepPlan(arch="milan", workload_names=("nqueens",), scale="small",
                 repetitions=2, inputs_limit=1)


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve-http")
    handle = DaemonHandle(DaemonConfig(
        cache_dir=str(root / "cache"),
        state_dir=str(root / "state"),
        deadline_s=300.0,
        max_inflight=2,
    ))
    yield handle
    handle.drain()


@pytest.fixture(scope="module")
def truth():
    return records_payload(run_sweep(PLAN).records)


def submit(handle, **overrides):
    body = {"plan": PLAN_PAYLOAD, "client": "tests", **overrides}
    return handle.request("POST", "/sweep", body=body)


class TestHealth:
    def test_healthz_snapshot(self, daemon):
        status, body = daemon.request("GET", "/healthz")
        assert status == 200 and body["status"] == "ok"
        for section in ("queue", "breakers", "limiter", "coalescer",
                        "cache"):
            assert section in body
        assert [b["backend"] for b in body["breakers"]] == [
            "nodes", "pool", "serial",
        ]

    def test_readyz_when_accepting(self, daemon):
        assert daemon.request("GET", "/readyz") == (200, {"ready": True})


class TestSweepLifecycle:
    def test_served_records_match_direct_run_sweep(self, daemon, truth):
        status, resp = submit(daemon)
        assert status == 202 and resp["state"] in ("queued", "running")
        final = daemon.wait_for_state(
            resp["job_id"], ("done", "failed"), timeout_s=300.0
        )
        assert final["state"] == "done"
        assert final["backend_requested"] == "serial"
        assert final["backend_used"] == "serial"
        assert final["degraded"] is False
        status, served = daemon.request(
            "GET", f"/jobs/{resp['job_id']}/records"
        )
        assert status == 200 and served == truth

    def test_records_conflict_before_done(self, daemon):
        status, resp = submit(daemon, throttle_s=0.3)
        job_id = resp["job_id"]
        status, body = daemon.request("GET", f"/jobs/{job_id}/records")
        assert status in (200, 409)   # 409 unless it already finished
        daemon.wait_for_state(job_id, ("done",), timeout_s=300.0)

    def test_events_stream_ends_with_final_state(self, daemon):
        status, resp = submit(daemon)
        events = daemon.stream_events(resp["job_id"], timeout=300.0)
        assert events[-1] == {"state": "done", "final": True}
        progress = [e for e in events if "batches_done" in e]
        for event in progress:
            assert event["backend"] == "serial"

    def test_unknown_job_404(self, daemon):
        assert daemon.request("GET", "/jobs/j999999")[0] == 404

    def test_cancel_settled_job_conflicts(self, daemon):
        status, resp = submit(daemon)
        daemon.wait_for_state(resp["job_id"], ("done",), timeout_s=300.0)
        status, body = daemon.request(
            "POST", f"/jobs/{resp['job_id']}/cancel"
        )
        assert status == 409


class TestCoalescing:
    def test_concurrent_identical_requests_share_one_job(
        self, daemon, truth
    ):
        barrier = threading.Barrier(6)
        responses = []

        def client():
            barrier.wait()
            responses.append(submit(daemon, throttle_s=0.2))

        threads = [threading.Thread(target=client) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(status == 202 for status, _body in responses)
        job_ids = {body["job_id"] for _status, body in responses}
        assert len(job_ids) == 1
        coalesced = [b for _s, b in responses if b["coalesced"]]
        assert len(coalesced) == len(responses) - 1
        job_id = job_ids.pop()
        daemon.wait_for_state(job_id, ("done",), timeout_s=300.0)
        # every requester polls the same id and reads identical bodies
        bodies = [
            daemon.request("GET", f"/jobs/{job_id}/records")[1]
            for _ in responses
        ]
        assert all(body == truth for body in bodies)

    def test_different_knobs_do_not_coalesce(self, daemon):
        status_a, a = submit(daemon, throttle_s=0.2)
        status_b, b = submit(daemon, throttle_s=0.2, fail_policy="degrade")
        assert a["job_id"] != b["job_id"]
        daemon.wait_for_state(a["job_id"], ("done",), timeout_s=300.0)
        daemon.wait_for_state(b["job_id"], ("done",), timeout_s=300.0)


class TestRecommend:
    def test_recommendations_from_served_sweep(self, daemon):
        status, body = daemon.request(
            "GET",
            "/recommend?arch=milan&workload=nqueens&scale=small"
            "&repetitions=2&inputs_limit=1&deadline_s=300",
            timeout=300.0,
        )
        assert status == 200
        assert body["n_recommendations"] == len(body["recommendations"])
        for rec in body["recommendations"]:
            assert rec["app"] == "nqueens" and rec["lift"] >= 1.3
        assert body["job"]["state"] == "done"

    def test_missing_arch_is_400(self, daemon):
        assert daemon.request("GET", "/recommend")[0] == 400

    def test_deadline_maps_to_504_with_job_id(self, tmp_path):
        handle = DaemonHandle(DaemonConfig(
            cache_dir=str(tmp_path / "cache"),
            state_dir=str(tmp_path / "state"),
            max_inflight=1,
        ))
        try:
            # wedge the only worker so the recommend job stays queued
            # past its (tiny) request deadline
            status, blocker = submit(handle, throttle_s=0.5)
            assert status == 202
            status, body = handle.request(
                "GET",
                "/recommend?arch=milan&workload=cg&scale=small"
                "&repetitions=2&inputs_limit=1&deadline_s=0.05",
                timeout=60.0,
            )
            assert status == 504 and body["job_id"].startswith("j")
            # the job was NOT cancelled: it finishes and warms the cache
            handle.wait_for_state(
                body["job_id"], ("done",), timeout_s=300.0
            )
        finally:
            handle.drain()


class TestAdmission:
    def test_rate_limit_429_with_retry_hint(self, tmp_path):
        handle = DaemonHandle(DaemonConfig(
            cache_dir=str(tmp_path / "cache"), rate_per_s=0.5, burst=1,
        ))
        try:
            assert submit(handle, throttle_s=0.2)[0] == 202
            status, body = submit(handle)
            assert status == 429
            assert body["retry_after_s"] > 0.0
            # an unrelated client key is not throttled
            status, body = handle.request("POST", "/sweep", body={
                "plan": PLAN_PAYLOAD, "client": "other",
            })
            assert status == 202
        finally:
            handle.drain()

    def test_queue_capacity_429(self, tmp_path):
        handle = DaemonHandle(DaemonConfig(
            cache_dir=str(tmp_path / "cache"),
            max_inflight=1, max_queued=1,
        ))
        try:
            # distinct plans so coalescing cannot absorb the overflow
            submissions = []
            for seed in range(4):
                payload = {**PLAN_PAYLOAD, "seed": seed}
                submissions.append(handle.request("POST", "/sweep", body={
                    "plan": payload, "client": "flood",
                    "throttle_s": 0.5,
                }))
            statuses = [status for status, _body in submissions]
            assert 429 in statuses
            rejected = [body for status, body in submissions
                        if status == 429]
            assert all("capacity" in body["error"] for body in rejected)
        finally:
            handle.drain()

    def test_deadline_expires_served_sweep(self, tmp_path):
        handle = DaemonHandle(DaemonConfig(
            cache_dir=str(tmp_path / "cache"),
        ))
        try:
            # a multi-batch plan: the deadline is observed cooperatively
            # *between* batches, so a single-batch sweep would finish
            multi = {**PLAN_PAYLOAD, "workloads": ["nqueens", "cg"],
                     "inputs_limit": 2}
            status, resp = handle.request("POST", "/sweep", body={
                "plan": multi, "client": "tests",
                "throttle_s": 0.3, "deadline_s": 0.05,
            })
            assert status == 202
            final = handle.wait_for_state(
                resp["job_id"], ("expired",), timeout_s=60.0
            )
            assert final["state"] == "expired"
        finally:
            handle.drain()


class TestProtocolEdges:
    def test_slow_client_shed_with_408(self, daemon):
        with socket.create_connection(
            ("127.0.0.1", daemon.port), timeout=30.0
        ) as sock:
            sock.sendall(b"POST /sweep HTTP/1.1\r\n")   # ...and stall
            sock.settimeout(30.0)
            raw = sock.recv(4096)
        assert b"408" in raw.split(b"\r\n", 1)[0]

    def test_malformed_json_400(self, daemon):
        import http.client

        conn = http.client.HTTPConnection(
            "127.0.0.1", daemon.port, timeout=30.0
        )
        try:
            conn.request("POST", "/sweep", body=b"{not json",
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            assert response.status == 400
            assert b"invalid JSON" in response.read()
        finally:
            conn.close()

    def test_non_object_body_400(self, daemon):
        status, body = daemon.request("POST", "/sweep", body=[1, 2])
        assert status == 400

    def test_unknown_route_404(self, daemon):
        assert daemon.request("GET", "/nope")[0] == 404

    def test_wrong_method_404(self, daemon):
        assert daemon.request("DELETE", "/sweep")[0] == 404

    def test_oversized_body_413(self, tmp_path):
        handle = DaemonHandle(DaemonConfig(body_limit=64))
        try:
            status, _body = handle.request("POST", "/sweep", body={
                "plan": PLAN_PAYLOAD, "pad": "x" * 256,
            })
            assert status == 413
        finally:
            handle.drain()

    def test_unknown_plan_field_400(self, daemon):
        status, body = daemon.request("POST", "/sweep", body={
            "plan": {**PLAN_PAYLOAD, "turbo": True},
        })
        assert status == 400 and "turbo" in body["error"]


class TestLintEndpoint:
    def test_environment_findings(self, daemon):
        status, body = daemon.request("POST", "/lint", body={
            "arch": "milan",
            "env": {"OMP_NUM_THREADS": "1000"},
        })
        assert status == 200 and body["n_findings"] >= 1
        assert body["n_errors"] >= 1
        parsed = json.loads(json.dumps(body))   # JSON-ready end to end
        assert parsed["findings"][0]["rule"]

    def test_clean_environment(self, daemon):
        status, body = daemon.request("POST", "/lint", body={
            "arch": "milan", "env": {"OMP_NUM_THREADS": "48"},
        })
        assert status == 200 and body["n_errors"] == 0

    def test_missing_arch_400(self, daemon):
        assert daemon.request("POST", "/lint", body={"env": {}})[0] == 400


class TestDrainAndResume:
    def test_drain_interrupts_then_restart_resumes(self, tmp_path):
        config = DaemonConfig(
            cache_dir=str(tmp_path / "cache"),
            state_dir=str(tmp_path / "state"),
            drain_grace_s=0.1,
        )
        handle = DaemonHandle(config)
        interrupted = []
        multi = {**PLAN_PAYLOAD, "workloads": ["nqueens", "cg"],
                 "inputs_limit": 2}
        try:
            status, resp = handle.request("POST", "/sweep", body={
                "plan": multi, "client": "tests", "throttle_s": 0.4,
            })
            job_id = resp["job_id"]
            handle.wait_for_events(job_id, 1, timeout_s=300.0)
        finally:
            interrupted = handle.drain().get("interrupted", [])
        assert interrupted == [job_id]

        revived = DaemonHandle(config)
        try:
            assert revived.daemon.resumed_job_ids == [job_id]
            final = revived.wait_for_state(
                job_id, ("done",), timeout_s=300.0
            )
            assert final["state"] == "done"
            status, served = revived.request(
                "GET", f"/jobs/{job_id}/records"
            )
            multi_plan = SweepPlan(
                arch="milan", workload_names=("nqueens", "cg"),
                scale="small", repetitions=2, inputs_limit=2,
            )
            assert served == records_payload(run_sweep(multi_plan).records)
            # fresh ids continue past the resumed one after restart
            status, newer = submit(revived)
            assert newer["job_id"] > job_id
            revived.wait_for_state(newer["job_id"], ("done",),
                                   timeout_s=300.0)
        finally:
            revived.drain()


class TestDaemonLifecycle:
    def test_port_file_is_published(self, tmp_path):
        port_file = tmp_path / "port"
        handle = DaemonHandle(DaemonConfig(port_file=str(port_file)))
        try:
            assert int(port_file.read_text()) == handle.port
        finally:
            handle.drain()

    def test_run_requires_no_dirs(self):
        # cache/state-less daemon still serves health and lint
        handle = DaemonHandle(DaemonConfig())
        try:
            status, body = handle.request("GET", "/healthz")
            assert status == 200 and "cache" not in body
        finally:
            handle.drain()

    def test_plan_payload_matches_direct_plan(self):
        # guards the test suite itself: the payload and SweepPlan used
        # for ground truth must describe the same sweep
        from repro.serve.app import _plan_from_payload

        assert _plan_from_payload(PLAN_PAYLOAD) == PLAN
