"""Unit tests for the columnar Table."""

import numpy as np
import pytest

from repro.errors import ColumnError, LengthMismatch
from repro.frame.ops import concat_tables
from repro.frame.table import Table


@pytest.fixture
def simple():
    return Table(
        {
            "app": ["cg", "cg", "bt", "bt", "mg"],
            "arch": ["milan", "a64fx", "milan", "milan", "a64fx"],
            "runtime": [1.0, 2.0, 3.0, 4.0, 5.0],
        }
    )


class TestConstruction:
    def test_shape(self, simple):
        assert simple.shape == (5, 3)
        assert simple.num_rows == 5
        assert simple.num_columns == 3
        assert len(simple) == 5

    def test_column_names_in_order(self, simple):
        assert simple.column_names == ["app", "arch", "runtime"]

    def test_length_mismatch_rejected(self):
        with pytest.raises(LengthMismatch):
            Table({"a": [1, 2], "b": [1, 2, 3]})

    def test_2d_column_rejected(self):
        with pytest.raises(LengthMismatch):
            Table({"a": np.zeros((2, 2))})

    def test_strings_become_object_dtype(self, simple):
        assert simple.column("app").dtype == object

    def test_numbers_keep_numeric_dtype(self, simple):
        assert simple.column("runtime").dtype.kind == "f"

    def test_from_records_missing_keys(self):
        t = Table.from_records([{"a": 1, "b": 2}, {"a": 3}])
        # Numeric-except-missing columns become float with nan (as the
        # docstring promises), not object columns holding None.
        assert t.column("b").dtype.kind == "f"
        assert t.column("b")[0] == 2.0
        assert np.isnan(t.column("b")[1])

    def test_from_records_missing_keys_non_numeric_stay_none(self):
        t = Table.from_records([{"a": "x", "b": "y"}, {"a": "z"}])
        assert t.column("b").dtype == object
        assert t.column("b")[1] is None

    def test_from_records_all_missing_stays_object(self):
        t = Table.from_records([{"a": 1, "b": None}, {"a": 2}])
        assert t.column("b").dtype == object

    def test_from_records_column_order_first_appearance(self):
        t = Table.from_records([{"b": 1}, {"a": 2, "b": 3}])
        assert t.column_names == ["b", "a"]

    def test_empty(self):
        t = Table.empty(["x", "y"])
        assert t.num_rows == 0
        assert t.column_names == ["x", "y"]


class TestAccess:
    def test_missing_column_raises(self, simple):
        with pytest.raises(ColumnError):
            simple.column("nope")

    def test_getitem(self, simple):
        assert simple["runtime"][0] == 1.0

    def test_contains(self, simple):
        assert "app" in simple
        assert "nope" not in simple

    def test_row_returns_python_scalars(self, simple):
        row = simple.row(0)
        assert row == {"app": "cg", "arch": "milan", "runtime": 1.0}
        assert isinstance(row["runtime"], float)

    def test_row_negative_index(self, simple):
        assert simple.row(-1)["app"] == "mg"

    def test_row_out_of_range(self, simple):
        with pytest.raises(IndexError):
            simple.row(5)

    def test_to_records_roundtrip(self, simple):
        assert Table.from_records(simple.to_records()) == simple

    def test_to_dict(self, simple):
        d = simple.to_dict()
        assert d["app"] == ["cg", "cg", "bt", "bt", "mg"]


class TestTransforms:
    def test_with_column_adds(self, simple):
        t = simple.with_column("x", [1, 2, 3, 4, 5])
        assert "x" in t
        assert "x" not in simple  # original untouched

    def test_with_column_replaces(self, simple):
        t = simple.with_column("runtime", [0.0] * 5)
        assert t["runtime"].sum() == 0.0

    def test_with_column_wrong_length(self, simple):
        with pytest.raises(LengthMismatch):
            simple.with_column("x", [1, 2])

    def test_without_columns(self, simple):
        t = simple.without_columns(["arch"])
        assert t.column_names == ["app", "runtime"]

    def test_without_missing_raises(self, simple):
        with pytest.raises(ColumnError):
            simple.without_columns(["nope"])

    def test_select_reorders(self, simple):
        t = simple.select(["runtime", "app"])
        assert t.column_names == ["runtime", "app"]

    def test_rename(self, simple):
        t = simple.rename({"runtime": "sec"})
        assert "sec" in t and "runtime" not in t

    def test_rename_collision_raises(self, simple):
        with pytest.raises(ColumnError):
            simple.rename({"runtime": "app"})

    def test_map_column(self, simple):
        t = simple.map_column("app", str.upper)
        assert t["app"][0] == "CG"


class TestFilterSort:
    def test_filter(self, simple):
        t = simple.filter(simple["runtime"] > 2.5)
        assert t.num_rows == 3

    def test_filter_wrong_length(self, simple):
        with pytest.raises(LengthMismatch):
            simple.filter([True, False])

    def test_take_order(self, simple):
        t = simple.take([4, 0])
        assert list(t["app"]) == ["mg", "cg"]

    def test_head(self, simple):
        assert simple.head(2).num_rows == 2
        assert simple.head(100).num_rows == 5

    def test_sort_numeric_descending(self, simple):
        t = simple.sort_by("runtime", descending=True)
        assert list(t["runtime"]) == [5.0, 4.0, 3.0, 2.0, 1.0]

    def test_sort_multi_key(self, simple):
        t = simple.sort_by(["arch", "runtime"])
        assert list(t["arch"]) == ["a64fx", "a64fx", "milan", "milan", "milan"]
        assert list(t["runtime"])[:2] == [2.0, 5.0]

    def test_unique_preserves_first_appearance(self, simple):
        assert simple.unique("app") == ["cg", "bt", "mg"]


class TestGroupAggregate:
    def test_group_by_single(self, simple):
        groups = dict(simple.group_by("arch"))
        assert set(groups) == {("milan",), ("a64fx",)}
        assert groups[("milan",)].num_rows == 3

    def test_group_by_multi(self, simple):
        groups = simple.group_by(["app", "arch"])
        assert len(groups) == 4

    def test_aggregate_mean(self, simple):
        t = simple.aggregate("arch", {"runtime": "mean"})
        by = dict(zip(t["arch"], t["runtime_mean"]))
        assert by["milan"] == pytest.approx((1 + 3 + 4) / 3)

    def test_aggregate_callable(self, simple):
        t = simple.aggregate("arch", {"runtime": lambda a: float(a.max())})
        by = dict(zip(t["arch"], t["runtime"]))
        assert by["a64fx"] == 5.0

    def test_pivot(self, simple):
        p = simple.pivot(index="app", columns="arch", values="runtime")
        assert p.column_names == ["app", "milan", "a64fx"]
        row = {r["app"]: r for r in p.iter_rows()}
        assert row["bt"]["milan"] == pytest.approx(3.5)
        assert row["bt"]["a64fx"] is None


class TestJoin:
    def test_inner_join(self, simple):
        meta = Table({"arch": ["milan", "a64fx"], "cores": [96, 48]})
        j = simple.join(meta, on="arch")
        assert j.num_rows == 5
        assert set(j["cores"]) == {96, 48}

    def test_left_join_fills_nan(self, simple):
        meta = Table({"arch": ["milan"], "cores": [96]})
        j = simple.join(meta, on="arch", how="left")
        assert j.num_rows == 5
        # Numeric right column: unmatched rows fill with nan, not None.
        assert j["cores"].dtype.kind == "f"
        assert np.isnan(np.asarray(j["cores"], float)).any()

    def test_inner_join_drops_unmatched(self, simple):
        meta = Table({"arch": ["milan"], "cores": [96]})
        j = simple.join(meta, on="arch")
        assert j.num_rows == 3

    def test_join_suffixes_overlap(self, simple):
        other = Table({"arch": ["milan", "a64fx"], "runtime": [9.0, 8.0]})
        j = simple.join(other, on="arch")
        assert "runtime_right" in j

    def test_join_bad_how(self, simple):
        with pytest.raises(ValueError):
            simple.join(simple, on="arch", how="outer")


class TestDescribe:
    def test_numeric_columns_only(self, simple):
        d = simple.describe()
        assert d.unique("column") == ["runtime"]
        row = d.row(0)
        assert row["mean"] == pytest.approx(3.0)
        assert row["min"] == 1.0 and row["max"] == 5.0

    def test_empty_numeric_set(self):
        t = Table({"s": ["a", "b"]})
        assert t.describe().num_rows == 0


class TestRendering:
    def test_to_text_contains_headers_and_rows(self, simple):
        text = simple.to_text()
        assert "app" in text and "cg" in text

    def test_to_text_truncates(self, simple):
        text = simple.to_text(max_rows=2)
        assert "3 more rows" in text

    def test_repr(self, simple):
        assert "5 rows" in repr(simple)

    def test_equality(self, simple):
        assert simple == Table(simple.to_dict())
        assert simple != simple.head(2)


class TestMissingKeyCSVRoundTrip:
    """from_records' nan-filled float columns survive CSV serialization."""

    def test_roundtrip_preserves_float_dtype_and_nan(self, tmp_path):
        from repro.frame.io import read_csv, write_csv

        t = Table.from_records(
            [{"app": "cg", "runtime": 1.5, "extra": 2},
             {"app": "bt", "runtime": 2.5}]
        )
        assert t.column("extra").dtype.kind == "f"
        path = tmp_path / "t.csv"
        write_csv(t, path)
        back = read_csv(path)
        assert back.column("extra").dtype.kind == "f"
        assert back.column("extra")[0] == 2.0
        assert np.isnan(back.column("extra")[1])
        assert back == t


class TestSortStability:
    """Regression: ``descending=True`` used to reverse the ascending
    order array, which also reversed tied rows — breaking the
    stable-sort contract."""

    def test_descending_numeric_ties_keep_original_order(self):
        t = Table({"k": [2, 1, 2, 1, 2], "id": [0, 1, 2, 3, 4]})
        d = t.sort_by("k", descending=True)
        assert list(d["k"]) == [2, 2, 2, 1, 1]
        assert list(d["id"]) == [0, 2, 4, 1, 3]

    def test_descending_string_ties_keep_original_order(self):
        t = Table({"k": ["b", "a", "b", "a"], "id": [0, 1, 2, 3]})
        assert list(t.sort_by("k", descending=True)["id"]) == [0, 2, 1, 3]

    def test_multi_key_descending_stable(self):
        t = Table({"a": ["x", "y", "x", "y", "x"],
                   "b": [1, 2, 1, 2, 1], "id": [0, 1, 2, 3, 4]})
        assert list(t.sort_by(["a", "b"], descending=True)["id"]) == \
            [1, 3, 0, 2, 4]

    def test_ascending_ties_unchanged(self):
        t = Table({"k": [2, 1, 2], "id": [0, 1, 2]})
        assert list(t.sort_by("k")["id"]) == [1, 0, 2]

    def test_descending_nan_sorts_last(self):
        t = Table({"k": [1.0, float("nan"), 2.0]})
        vals = list(t.sort_by("k", descending=True)["k"])
        assert vals[0] == 2.0 and vals[1] == 1.0 and np.isnan(vals[2])


class TestVectorizedParity:
    """The factorize-and-gather fast paths agree with the hash-based
    python reference implementations, and unsafe keys fall back."""

    def test_group_by_matches_python(self, simple):
        fast = simple.group_by(["app", "arch"])
        ref = simple._group_by_python(["app", "arch"])
        assert [k for k, _ in fast] == [k for k, _ in ref]
        for (_, a), (_, b) in zip(fast, ref):
            assert a.to_records() == b.to_records()

    def test_group_keys_are_python_scalars(self, simple):
        for key, _ in simple.group_by(["app", "runtime"]):
            assert type(key[0]) is str and type(key[1]) is float

    def test_nan_keys_fall_back_to_python(self):
        t = Table({"k": [1.0, float("nan"), 1.0], "v": [1, 2, 3]})
        groups = t.group_by("k")
        assert [list(s["v"]) for _, s in groups] == [[1, 3], [2]]

    def test_mixed_object_keys_fall_back(self):
        k = np.empty(3, dtype=object)
        k[:] = ["a", 1, "a"]
        t = Table({"k": k, "v": [1, 2, 3]})
        assert [list(s["v"]) for _, s in t.group_by("k")] == [[1, 3], [2]]

    def test_join_matches_python(self, simple):
        meta = Table({"arch": ["milan", "a64fx"], "cores": [96, 48]})
        for how in ("inner", "left"):
            fast = simple._join_fast(meta, ["arch"], how)
            ref = simple._join_python(meta, ["arch"], how)
            assert fast is not None
            assert fast.column_names == ref.column_names
            assert fast.to_records() == ref.to_records()

    def test_join_duplicate_right_keys_expand_in_order(self):
        left = Table({"k": ["a", "b"], "x": [1, 2]})
        right = Table({"k": ["a", "a"], "y": [10, 20]})
        assert left.join(right, on="k").to_records() == [
            {"k": "a", "x": 1, "y": 10},
            {"k": "a", "x": 1, "y": 20},
        ]

    def test_left_join_empty_right_matches_python(self):
        """Regression: gathering right values from a zero-row table
        indexed out of bounds instead of filling every row missing."""
        left = Table({"k": ["a"], "x": [1]})
        right = Table.empty(["k", "y"])
        fast = left._join_fast(right, ["k"], "left")
        ref = left._join_python(right, ["k"], "left")
        assert fast is not None
        assert fast.to_records() == ref.to_records()
        assert left.join(right, on="k", how="inner").num_rows == 0

    def test_join_nan_key_never_matches(self):
        left = Table({"k": [1.0, float("nan")], "x": [1, 2]})
        right = Table({"k": [1.0, float("nan")], "y": [3, 4]})
        assert left.join(right, on="k").to_records() == [
            {"k": 1.0, "x": 1, "y": 3}
        ]


RECORDS_BOTH_PATHS = [
    {"app": "cg", "arch": "milan", "runtime": 1.0},
    {"app": "cg", "arch": "a64fx", "runtime": 2.0},
    {"app": "bt", "arch": "milan", "runtime": 3.0},
    {"app": "bt", "arch": "milan", "runtime": 4.0},
]
SCHEMA_BOTH_PATHS = {"app": "str", "arch": "str", "runtime": "f8"}


@pytest.fixture(params=["records", "block"])
def build(request):
    """Build one logical table via the dict path or the block path."""
    from repro.frame.columns import RecordBlock

    def _build(records, schema):
        if request.param == "records":
            return Table.from_records(records)
        return Table.from_block(RecordBlock.from_records(records, schema))

    return _build


class TestEdgeCasesBothPaths:
    """The frame edge cases hold identically for dict-built and
    block-built tables."""

    def test_multi_key_group_order_is_first_appearance(self, build):
        t = build(RECORDS_BOTH_PATHS, SCHEMA_BOTH_PATHS)
        keys = [k for k, _ in t.group_by(["app", "arch"])]
        assert keys == [("cg", "milan"), ("cg", "a64fx"), ("bt", "milan")]

    def test_left_join_none_becomes_nan(self, build):
        t = build(RECORDS_BOTH_PATHS, SCHEMA_BOTH_PATHS)
        meta = build([{"arch": "a64fx", "cores": 48}],
                     {"arch": "str", "cores": "i8"})
        j = t.join(meta, on="arch", how="left")
        assert j["cores"].dtype.kind == "f"
        cores = np.asarray(j["cores"], dtype=float)
        assert int(np.isnan(cores).sum()) == 3 and cores[1] == 48.0

    def test_concat_with_empty(self, build):
        t = build(RECORDS_BOTH_PATHS, SCHEMA_BOTH_PATHS)
        empty = t.head(0)
        out = concat_tables([empty, t, empty])
        assert out.to_records() == t.to_records()
        assert concat_tables([]).num_rows == 0

    def test_disjoint_key_sets_match_explicit_none_block(self):
        """from_records fills disjoint keys with None/nan; a block built
        with explicit nulls must produce the same table."""
        from repro.frame.columns import RecordBlock

        via_records = Table.from_records(
            [{"a": "x", "b": 1.0}, {"a": "y", "c": "z"}]
        )
        assert via_records.column("b").dtype.kind == "f"  # nan-filled
        via_block = Table.from_block(RecordBlock.from_records(
            [{"a": "x", "b": 1.0, "c": None},
             {"a": "y", "b": float("nan"), "c": "z"}],
            {"a": "str", "b": "f8", "c": "str"},
        ))
        assert via_records.column_names == via_block.column_names
        assert via_records == via_block
