"""Program-spec lint rules (plane 1b): positive and negative case per
rule, plus the manifest runner over the shipped workloads."""

import pytest

from repro.lint import Severity, dedupe_findings, lint_manifests, lint_program
from repro.runtime.program import (
    LoadPattern,
    LoopRegion,
    Program,
    SerialPhase,
    TaskRegion,
)

pytestmark = pytest.mark.lint


def loop(**kwargs):
    base = dict(name="l", n_iters=10_000, iter_work=1.0)
    base.update(kwargs)
    return LoopRegion(**base)


def program(*phases):
    return Program("p", tuple(phases))


def by_rule(findings, rule):
    return [f for f in findings if f.rule == rule]


class TestPrg001DeadImbalance:
    def test_fires_on_uniform_with_imbalance(self):
        (f,) = by_rule(
            lint_program(program(loop(imbalance=0.5))), "PRG001"
        )
        assert f.subject == "p/l" and "uniform" in f.message

    def test_silent_on_linear(self):
        findings = lint_program(
            program(loop(pattern=LoadPattern.LINEAR, imbalance=0.5))
        )
        assert not by_rule(findings, "PRG001")

    def test_silent_on_zero_imbalance(self):
        assert not by_rule(lint_program(program(loop())), "PRG001")


class TestPrg002TrivialReductionLoop:
    def test_fires_on_single_iteration_reduction(self):
        (f,) = by_rule(
            lint_program(program(loop(n_iters=1, n_reductions=3))), "PRG002"
        )
        assert "3 reduction(s)" in f.message

    def test_silent_on_real_loop(self):
        findings = lint_program(program(loop(n_reductions=3)))
        assert not by_rule(findings, "PRG002")


class TestPrg003DeadRandomAccess:
    def test_fires_without_memory_fraction(self):
        (f,) = by_rule(
            lint_program(program(loop(random_access=True))), "PRG003"
        )
        assert "mem_intensity" in f.message

    def test_fires_on_task_regions_too(self):
        region = TaskRegion("t", depth=3, branching=2, leaf_work=1.0,
                            random_access=True)
        assert by_rule(lint_program(program(region)), "PRG003")

    def test_silent_with_memory_fraction(self):
        findings = lint_program(
            program(loop(random_access=True, mem_intensity=0.4))
        )
        assert not by_rule(findings, "PRG003")


class TestPrg004DeadBandwidth:
    def test_fires_without_memory_fraction(self):
        (f,) = by_rule(
            lint_program(program(loop(bw_per_thread_gbps=4.0))), "PRG004"
        )
        assert "bandwidth" in f.fixit

    def test_silent_with_memory_fraction(self):
        findings = lint_program(
            program(loop(bw_per_thread_gbps=4.0, mem_intensity=0.4))
        )
        assert not by_rule(findings, "PRG004")


class TestPrg005EmptySerialPhase:
    def test_fires_on_zero_work(self):
        (f,) = by_rule(
            lint_program(program(SerialPhase(0.0, name="init"), loop())),
            "PRG005",
        )
        assert f.severity is Severity.INFO and f.subject == "p/init"

    def test_silent_on_real_work(self):
        findings = lint_program(program(SerialPhase(1.0), loop()))
        assert not by_rule(findings, "PRG005")


class TestPrg006UnderfilledLoop:
    def test_fires_below_team_width(self):
        (f,) = by_rule(lint_program(program(loop(n_iters=12))), "PRG006")
        assert f.severity is Severity.INFO

    def test_silent_on_wide_loops_and_single_iteration(self):
        assert not by_rule(lint_program(program(loop(n_iters=96))), "PRG006")
        # n_iters == 1 means "not a worksharing loop" (serial region),
        # not an underfilled one.
        assert not by_rule(lint_program(program(loop(n_iters=1))), "PRG006")


class TestPrg007DeadFixedChunk:
    def test_fires_on_chunk_without_schedule(self):
        (f,) = by_rule(
            lint_program(program(loop(fixed_chunk=64))), "PRG007"
        )
        assert f.severity is Severity.ERROR

    def test_silent_with_fixed_schedule(self):
        findings = lint_program(
            program(loop(fixed_schedule="dynamic", fixed_chunk=64))
        )
        assert not by_rule(findings, "PRG007")


class TestManifestRunner:
    def test_shipped_manifests_have_no_failures(self):
        # Every registered benchmark on every machine: info-level findings
        # are fine (small inputs under-fill big machines by design), but
        # nothing at warning or error severity.
        for arch in ("milan", "skylake", "a64fx"):
            findings = lint_manifests(arch)
            bad = [f for f in findings if f.severity is not Severity.INFO]
            assert bad == [], f"{arch}: {bad}"

    def test_workload_subset_selection(self):
        findings = lint_manifests("milan", workload_names=["cg"])
        assert all(f.subject.startswith("cg.") for f in findings)

    def test_dedupe_drops_exact_repeats(self):
        findings = lint_manifests("milan", workload_names=["bt"])
        assert findings == dedupe_findings(findings)
        assert len(set(findings)) == len(findings)
