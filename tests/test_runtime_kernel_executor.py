"""Tests for region pricing and whole-program execution — including the
analytic-vs-DES task model cross-validation."""

import numpy as np
import pytest

from repro.arch.machines import A64FX, MILAN, SKYLAKE
from repro.errors import SimulationError
from repro.runtime.affinity import compute_placement
from repro.runtime.costs import get_costs, work_seconds
from repro.runtime.executor import RuntimeExecutor, execute, observe
from repro.runtime.icv import EnvConfig, resolve_icvs
from repro.runtime.kernel import RegionEngine, task_acquire_seconds
from repro.runtime.program import (
    LoadPattern,
    LoopRegion,
    Program,
    SerialPhase,
    TaskRegion,
)
from repro.workloads.generator import synthetic_task_workload


def engine(machine=MILAN, **env):
    icvs = resolve_icvs(EnvConfig(**env), machine)
    placement = compute_placement(icvs, machine)
    return RegionEngine(machine, icvs, placement, get_costs(machine.name))


class TestTaskAcquire:
    def test_active_cheapest(self):
        c = get_costs("milan")
        active = task_acquire_seconds(
            resolve_icvs(EnvConfig(library="turnaround"), MILAN), c
        )
        passive = task_acquire_seconds(resolve_icvs(EnvConfig(), MILAN), c)
        blocktime0 = task_acquire_seconds(
            resolve_icvs(EnvConfig(blocktime="0"), MILAN), c
        )
        assert active < passive < blocktime0

    def test_infinite_blocktime_counts_as_active(self):
        c = get_costs("milan")
        inf = task_acquire_seconds(
            resolve_icvs(EnvConfig(blocktime="infinite"), MILAN), c
        )
        active = task_acquire_seconds(
            resolve_icvs(EnvConfig(library="turnaround"), MILAN), c
        )
        assert inf == active


class TestLoopRegionPricing:
    def test_more_threads_faster_when_parallel(self):
        region = LoopRegion("l", n_iters=100_000, iter_work=1e-6)
        t4 = engine(num_threads=4).loop_region_seconds(region)
        t32 = engine(num_threads=32).loop_region_seconds(region)
        assert t4 > 2 * t32

    def test_reduction_heavy_region_slower(self):
        base = LoopRegion("l", n_iters=1000, iter_work=1e-7)
        red = LoopRegion("l", n_iters=1000, iter_work=1e-7, n_reductions=4)
        e = engine()
        assert e.loop_region_seconds(red) > e.loop_region_seconds(base)

    def test_mem_intensity_exposes_bandwidth(self):
        cpu = LoopRegion("l", n_iters=100_000, iter_work=1e-6,
                         mem_intensity=0.0, bw_per_thread_gbps=4.5)
        mem = LoopRegion("l", n_iters=100_000, iter_work=1e-6,
                         mem_intensity=0.9, bw_per_thread_gbps=4.5)
        e = engine()  # unbound milan team: saturated
        assert e.loop_region_seconds(mem) > 1.5 * e.loop_region_seconds(cpu)

    def test_alignment_discount_applies_to_sync(self):
        region = LoopRegion("l", n_iters=1000, iter_work=1e-7, n_reductions=2)
        base = engine().loop_region_seconds(region)
        padded = engine(align_alloc=512).loop_region_seconds(region)
        assert padded < base


class TestTaskModelValidation:
    """The analytic work-stealing estimate must track the DES."""

    @pytest.mark.parametrize("env", [
        {},  # default: passive
        {"library": "turnaround"},  # active
        {"num_threads": 8},
        {"num_threads": 48, "library": "turnaround"},
    ])
    def test_analytic_within_factor_of_des(self, env):
        region = TaskRegion("t", depth=6, branching=3, leaf_work=2e-5,
                            node_work=2e-6, leaf_sigma=0.3)
        e = engine(**env)
        analytic = e.task_region_seconds(region, fidelity="analytic")
        des = e.task_region_seconds(region, fidelity="des", seed=1)
        assert analytic == pytest.approx(des, rel=0.45)

    def test_both_modes_agree_on_policy_ordering(self):
        # Whatever the absolute numbers, turnaround must beat default in
        # both fidelity modes for fine-grained tasking.
        region = TaskRegion("t", depth=7, branching=3, leaf_work=8e-7,
                            node_work=2e-7)
        for fidelity in ("analytic", "des"):
            slow = engine().task_region_seconds(region, fidelity=fidelity)
            fast = engine(library="turnaround").task_region_seconds(
                region, fidelity=fidelity
            )
            assert fast < slow, fidelity

    def test_analytic_respects_critical_path(self):
        region = TaskRegion("t", depth=12, branching=1, leaf_work=1e-4,
                            node_work=1e-4)  # a chain: no parallelism
        e = engine(library="turnaround")
        t = e.task_region_seconds(region)
        assert t >= work_seconds(region.critical_path_work, MILAN)

    def test_unknown_fidelity_rejected(self):
        region = TaskRegion("t", depth=2, branching=2, leaf_work=1e-6)
        with pytest.raises(SimulationError):
            engine().task_region_seconds(region, fidelity="quantum")


class TestProgramStructures:
    def test_task_counts(self):
        r = TaskRegion("t", depth=3, branching=2, leaf_work=1.0)
        assert r.n_leaves == 8
        assert r.n_tasks == 15
        assert r.total_work == pytest.approx(8.0)
        assert r.critical_path_work == pytest.approx(1.0)

    def test_branching_one_chain(self):
        r = TaskRegion("t", depth=5, branching=1, leaf_work=1.0, node_work=0.5)
        assert r.n_tasks == 6
        assert r.critical_path_work == pytest.approx(3.5)

    def test_program_total_work(self):
        prog = Program(
            "p",
            (
                SerialPhase(work=1.0),
                LoopRegion("l", n_iters=10, iter_work=0.1, trips=2,
                           gap_work=0.5),
            ),
        )
        assert prog.total_work == pytest.approx(1.0 + 2 * (1.0 + 0.5))
        assert not prog.uses_tasks
        assert len(prog.parallel_regions) == 1

    def test_empty_program_rejected(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            Program("p", ())


class TestExecutor:
    def test_execute_deterministic(self):
        prog = synthetic_task_workload()
        a = execute(prog, MILAN, EnvConfig())
        b = execute(prog, MILAN, EnvConfig())
        assert a == b

    def test_phase_costs_sum_to_execute(self):
        prog = synthetic_task_workload()
        ex = RuntimeExecutor(MILAN, EnvConfig())
        costs = ex.phase_costs(prog)
        assert sum(c.seconds for c in costs) == pytest.approx(ex.execute(prog))
        assert [c.kind for c in costs] == ["serial", "task"]

    def test_observe_applies_arch_noise(self):
        prog = synthetic_task_workload()
        true = execute(prog, MILAN, EnvConfig())
        obs0 = observe(prog, MILAN, EnvConfig(), run_index=0)
        obs1 = observe(prog, MILAN, EnvConfig(), run_index=1)
        # Milan's first run is ~22% slower by drift.
        assert obs0 / true > 1.1
        assert obs0 > obs1

    def test_observe_deterministic_per_identity(self):
        prog = synthetic_task_workload()
        a = observe(prog, SKYLAKE, EnvConfig(), run_index=2)
        b = observe(prog, SKYLAKE, EnvConfig(), run_index=2)
        assert a == b

    def test_blocktime_zero_pays_wakes_on_forky_program(self):
        prog = Program(
            "forky",
            (
                SerialPhase(work=1e-4),
                LoopRegion("l", n_iters=5000, iter_work=1e-7, trips=400,
                           gap_work=1e-5),
            ),
        )
        default = execute(prog, A64FX, EnvConfig())
        bt0 = execute(prog, A64FX, EnvConfig(blocktime="0"))
        assert bt0 > default * 1.02

    def test_master_binding_catastrophe(self):
        prog = synthetic_task_workload(depth=7, branching=3)
        good = execute(prog, MILAN, EnvConfig())
        bad = execute(prog, MILAN, EnvConfig(proc_bind="master"))
        assert bad > 5 * good

    def test_bad_fidelity_rejected(self):
        with pytest.raises(SimulationError):
            RuntimeExecutor(MILAN, EnvConfig(), fidelity="wrong")

    def test_runtime_positive_for_all_machines(self):
        prog = synthetic_task_workload()
        for m in (A64FX, SKYLAKE, MILAN):
            assert execute(prog, m, EnvConfig()) > 0
