"""Tests for SVG primitives, violin plots, heat maps and text renderings."""

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.errors import VizError
from repro.viz.heatmap import heatmap, influence_heatmap
from repro.viz.svg import SVGCanvas
from repro.viz.text import text_heatmap, text_histogram
from repro.viz.violin import violin_plot


def parse_svg(canvas: SVGCanvas) -> ET.Element:
    return ET.fromstring(canvas.to_string())


SVGNS = "{http://www.w3.org/2000/svg}"


class TestSVGCanvas:
    def test_document_well_formed(self):
        c = SVGCanvas(100, 50)
        c.rect(0, 0, 10, 10, fill="red")
        c.line(0, 0, 100, 50)
        c.circle(5, 5, 2)
        c.polygon([(0, 0), (10, 0), (5, 8)])
        c.text(10, 20, "hello & <goodbye>")
        root = parse_svg(c)
        assert root.tag == f"{SVGNS}svg"
        assert root.get("width") == "100"

    def test_text_escaped(self):
        c = SVGCanvas(10, 10)
        c.text(0, 0, "a<b>&c")
        assert "a<b>" not in c.to_string()
        assert "a&lt;b&gt;&amp;c" in c.to_string()

    def test_tooltip_title(self):
        c = SVGCanvas(10, 10)
        c.rect(0, 0, 5, 5, title="cell info")
        root = parse_svg(c)
        titles = root.findall(f".//{SVGNS}title")
        assert [t.text for t in titles] == ["cell info"]

    def test_rotation_transform(self):
        c = SVGCanvas(10, 10)
        c.text(3, 4, "x", rotate=-90)
        assert 'transform="rotate(-90 3 4)"' in c.to_string()

    def test_save(self, tmp_path):
        c = SVGCanvas(10, 10)
        path = tmp_path / "out.svg"
        c.save(str(path))
        assert path.read_text().startswith("<svg")

    def test_invalid_size(self):
        with pytest.raises(VizError):
            SVGCanvas(0, 10)

    def test_polygon_needs_three_points(self):
        with pytest.raises(VizError):
            SVGCanvas(10, 10).polygon([(0, 0), (1, 1)])


class TestViolinPlot:
    def test_basic_render(self):
        rng = np.random.default_rng(0)
        samples = [rng.lognormal(0, 0.3, 200) for _ in range(3)]
        c = violin_plot(samples, ["a64fx", "milan", "skylake"],
                        title="Fig 1", log_scale=True)
        root = parse_svg(c)
        polys = root.findall(f".//{SVGNS}polygon")
        assert len(polys) == 3  # one violin body each
        text = c.to_string()
        assert "Fig 1" in text and "n=200" in text

    def test_markers(self):
        samples = [np.linspace(1, 2, 50)]
        c = violin_plot(samples, ["x"], markers=[1.5])
        root = parse_svg(c)
        circles = root.findall(f".//{SVGNS}circle")
        assert len(circles) == 2  # median dot + marker

    def test_mismatched_labels(self):
        with pytest.raises(VizError):
            violin_plot([np.ones(5)], ["a", "b"])

    def test_log_scale_requires_positive(self):
        with pytest.raises(VizError):
            violin_plot([np.array([-1.0, 1.0, 2.0])], ["x"], log_scale=True)

    def test_empty_sample_rejected(self):
        with pytest.raises(VizError):
            violin_plot([np.array([])], ["x"])

    def test_marker_count_checked(self):
        with pytest.raises(VizError):
            violin_plot([np.ones(5)], ["x"], markers=[1.0, 2.0])

    def test_extra_markers_render_diamonds(self):
        samples = [np.linspace(1, 2, 40), np.linspace(2, 3, 40)]
        c = violin_plot(samples, ["a", "b"], markers=[1.0, 2.0],
                        extra_markers=[1.5, None])
        root = parse_svg(c)
        # 2 violin bodies + 1 diamond polygon.
        polys = root.findall(f".//{SVGNS}polygon")
        assert len(polys) == 3

    def test_extra_markers_length_checked(self):
        with pytest.raises(VizError):
            violin_plot([np.ones(5)], ["x"], extra_markers=[1.0, 2.0])


class TestHeatmap:
    def test_cells_and_labels(self):
        m = np.array([[0.1, 0.9], [0.5, 0.2], [0.0, 1.0]])
        c = heatmap(m, ["r1", "r2", "r3"], ["c1", "c2"], title="T")
        root = parse_svg(c)
        # background + 6 cells
        rects = root.findall(f".//{SVGNS}rect")
        assert len(rects) == 7
        text = c.to_string()
        for label in ("r1", "r2", "r3", "c1", "c2", "T"):
            assert label in text

    def test_shading_monotone(self):
        m = np.array([[0.0, 0.5, 1.0]])
        c = heatmap(m, ["r"], ["a", "b", "c"], annotate=False)
        root = parse_svg(c)
        fills = [r.get("fill") for r in root.findall(f".//{SVGNS}rect")][1:]

        def brightness(color):
            return sum(int(color[i:i + 2], 16) for i in (1, 3, 5))

        assert brightness(fills[0]) > brightness(fills[1]) > brightness(fills[2])

    def test_label_mismatch(self):
        with pytest.raises(VizError):
            heatmap(np.ones((2, 2)), ["r"], ["a", "b"])

    def test_non_2d_rejected(self):
        with pytest.raises(VizError):
            heatmap(np.ones(3), ["r"], ["a", "b", "c"])

    def test_influence_heatmap_integration(self, milan_dataset):
        from repro.core.influence import influence_by_application

        inf = influence_by_application(milan_dataset)
        c = influence_heatmap(inf)
        text = c.to_string()
        assert "KMP_LIBRARY" in text
        assert "nqueens" in text


class TestTextRenderings:
    def test_text_heatmap_contains_values(self):
        m = np.array([[0.25, 0.75]])
        out = text_heatmap(m, ["row"], ["colA", "colB"])
        assert "0.25" in out and "0.75" in out and "row" in out

    def test_text_heatmap_denser_glyph_for_larger(self):
        m = np.array([[0.0, 1.0]])
        out = text_heatmap(m, ["r"], ["a", "b"])
        row = out.splitlines()[2]
        assert " 0.00" in row and "@1.00" in row

    def test_text_heatmap_legend_has_full_names(self):
        m = np.array([[0.5, 0.5]])
        out = text_heatmap(m, ["r"], ["KMP_FORCE_REDUCTION", "OMP_PLACES"])
        assert "KMP_FORCE_REDUCTION" in out.splitlines()[0]

    def test_text_heatmap_mismatch(self):
        with pytest.raises(VizError):
            text_heatmap(np.ones((1, 2)), ["r"], ["a"])

    def test_histogram(self):
        out = text_histogram(np.concatenate([np.zeros(90), np.ones(10)]),
                             bins=2, title="dist")
        lines = out.splitlines()
        assert lines[0] == "dist"
        assert "90" in out and "10" in out

    def test_histogram_empty_rejected(self):
        with pytest.raises(VizError):
            text_histogram(np.array([]))
