"""Configuration-lint rules (plane 1a): one positive and one negative
case per rule, fault-injection style — a rule that cannot fire is not a
rule."""

import pytest

from repro.arch.machines import A64FX, MILAN
from repro.lint import Severity, lint_config
from repro.runtime.icv import EnvConfig
from repro.runtime.program import LoopRegion, Program, TaskRegion

pytestmark = pytest.mark.lint


def rules_fired(findings):
    return {f.rule for f in findings}


def by_rule(findings, rule):
    return [f for f in findings if f.rule == rule]


class TestEnv001DeadBlocktime:
    def test_fires_on_blocktime_under_turnaround(self):
        findings = lint_config(
            EnvConfig(library="turnaround", blocktime="0"), MILAN
        )
        (f,) = by_rule(findings, "ENV001")
        assert f.severity is Severity.WARNING
        assert f.subject == "KMP_BLOCKTIME"
        assert "turnaround" in f.message and f.fixit and f.icv_rule

    def test_silent_under_throughput(self):
        findings = lint_config(
            EnvConfig(library="throughput", blocktime="0"), MILAN
        )
        assert "ENV001" not in rules_fired(findings)

    def test_silent_when_blocktime_unset(self):
        findings = lint_config(EnvConfig(library="turnaround"), MILAN)
        assert "ENV001" not in rules_fired(findings)


class TestEnv002ShadowedBindDefault:
    def test_fires_on_places_without_bind(self):
        findings = lint_config(EnvConfig(places="cores"), MILAN)
        (f,) = by_rule(findings, "ENV002")
        assert "spread" in f.message

    def test_silent_with_explicit_bind(self):
        findings = lint_config(
            EnvConfig(places="cores", proc_bind="spread"), MILAN
        )
        assert "ENV002" not in rules_fired(findings)


class TestEnv003DeadPlaces:
    def test_fires_on_places_with_bind_false(self):
        findings = lint_config(
            EnvConfig(places="sockets", proc_bind="false"), MILAN
        )
        (f,) = by_rule(findings, "ENV003")
        assert f.subject == "OMP_PLACES"

    def test_silent_when_bound(self):
        findings = lint_config(
            EnvConfig(places="sockets", proc_bind="close"), MILAN
        )
        assert "ENV003" not in rules_fired(findings)


class TestEnv004Oversubscription:
    def test_fires_above_core_count(self):
        findings = lint_config(EnvConfig(num_threads=97), MILAN)
        (f,) = by_rule(findings, "ENV004")
        assert f.severity is Severity.ERROR
        assert "96" in f.fixit

    def test_silent_at_core_count(self):
        findings = lint_config(EnvConfig(num_threads=96), MILAN)
        assert "ENV004" not in rules_fired(findings)

    def test_threshold_is_per_machine(self):
        assert by_rule(lint_config(EnvConfig(num_threads=49), A64FX), "ENV004")
        assert not by_rule(
            lint_config(EnvConfig(num_threads=49), MILAN), "ENV004"
        )


class TestEnv005BoundOversubscription:
    def test_fires_on_master_pileup(self):
        # proc_bind=master pins the whole 96-thread team onto core 0's
        # place (one core under per-core places).
        findings = lint_config(
            EnvConfig(proc_bind="master", num_threads=96), MILAN
        )
        (f,) = by_rule(findings, "ENV005")
        assert "master" in f.message

    def test_silent_for_spread(self):
        findings = lint_config(
            EnvConfig(proc_bind="spread", num_threads=96), MILAN
        )
        assert "ENV005" not in rules_fired(findings)

    def test_machine_oversubscription_defers_to_env004(self):
        findings = lint_config(
            EnvConfig(proc_bind="master", num_threads=200), MILAN
        )
        assert by_rule(findings, "ENV004")
        assert not by_rule(findings, "ENV005")


class TestEnv006AlignBelowLine:
    def test_fires_below_cache_line(self):
        findings = lint_config(EnvConfig(align_alloc=64), A64FX)
        (f,) = by_rule(findings, "ENV006")
        assert "256" in f.message

    def test_silent_at_or_above_line(self):
        assert not by_rule(lint_config(EnvConfig(align_alloc=256), A64FX),
                           "ENV006")
        assert not by_rule(lint_config(EnvConfig(align_alloc=64), MILAN),
                           "ENV006")


class TestEnv007RedundantDefaults:
    def test_fires_per_redundant_variable(self):
        findings = lint_config(
            EnvConfig(library="throughput", blocktime="200",
                      schedule="static", num_threads=96),
            MILAN,
        )
        hits = by_rule(findings, "ENV007")
        assert {f.subject for f in hits} == {
            "KMP_LIBRARY", "KMP_BLOCKTIME", "OMP_SCHEDULE", "OMP_NUM_THREADS",
        }
        assert all(f.severity is Severity.INFO for f in hits)

    def test_force_reduction_matching_heuristic(self):
        findings = lint_config(
            EnvConfig(force_reduction="tree", num_threads=8), MILAN
        )
        assert any(
            f.subject == "KMP_FORCE_REDUCTION"
            for f in by_rule(findings, "ENV007")
        )
        findings = lint_config(
            EnvConfig(force_reduction="critical", num_threads=8), MILAN
        )
        assert not by_rule(findings, "ENV007")

    def test_silent_on_all_defaults_unset(self):
        assert lint_config(EnvConfig(), MILAN) == []


class TestEnv008SerialThreadsIgnored:
    def test_fires_on_serial_with_threads(self):
        findings = lint_config(
            EnvConfig(library="serial", num_threads=8), MILAN
        )
        (f,) = by_rule(findings, "ENV008")
        assert "serial" in f.message

    def test_silent_without_explicit_threads(self):
        findings = lint_config(EnvConfig(library="serial"), MILAN)
        assert "ENV008" not in rules_fired(findings)


@pytest.fixture
def fixed_schedule_program():
    return Program(
        "xs",
        (LoopRegion("lookup", n_iters=10_000, iter_work=1.0,
                    fixed_schedule="dynamic", fixed_chunk=100),),
    )


@pytest.fixture
def task_only_program():
    return Program("fib", (TaskRegion("spawn", depth=4, branching=2,
                                      leaf_work=1.0),))


class TestEnv009DeadSchedule:
    def test_fires_when_all_loops_fixed(self, fixed_schedule_program):
        findings = lint_config(
            EnvConfig(schedule="guided"), MILAN, fixed_schedule_program
        )
        (f,) = by_rule(findings, "ENV009")
        assert "schedule()" in f.message

    def test_fires_when_no_loops(self, task_only_program):
        findings = lint_config(
            EnvConfig(schedule="guided"), MILAN, task_only_program
        )
        (f,) = by_rule(findings, "ENV009")
        assert "no worksharing loops" in f.message

    def test_silent_with_env_following_loop(self):
        program = Program(
            "cg", (LoopRegion("spmv", n_iters=10_000, iter_work=1.0),)
        )
        findings = lint_config(EnvConfig(schedule="guided"), MILAN, program)
        assert "ENV009" not in rules_fired(findings)

    def test_silent_without_program(self):
        findings = lint_config(EnvConfig(schedule="guided"), MILAN)
        assert "ENV009" not in rules_fired(findings)


class TestEnv010DeadForceReduction:
    def test_fires_without_reductions(self, task_only_program):
        findings = lint_config(
            EnvConfig(force_reduction="atomic"), MILAN, task_only_program
        )
        (f,) = by_rule(findings, "ENV010")
        assert f.subject == "KMP_FORCE_REDUCTION"

    def test_silent_with_reductions(self):
        program = Program(
            "cg",
            (LoopRegion("dot", n_iters=10_000, iter_work=1.0,
                        n_reductions=2),),
        )
        findings = lint_config(
            EnvConfig(force_reduction="atomic"), MILAN, program
        )
        assert "ENV010" not in rules_fired(findings)


class TestFindingShape:
    def test_config_findings_carry_icv_rules(self):
        findings = lint_config(
            EnvConfig(places="cores", library="turnaround", blocktime="0"),
            MILAN,
        )
        assert findings and all(f.icv_rule for f in findings)

    def test_findings_are_hashable_and_frozen(self):
        (f,) = by_rule(
            lint_config(EnvConfig(num_threads=1000), MILAN), "ENV004"
        )
        assert hash(f)
        with pytest.raises(AttributeError):
            f.rule = "X"
