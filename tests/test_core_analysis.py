"""Tests for influence analysis, recommendations and pruning."""

import numpy as np
import pytest

from repro.arch.machines import MILAN
from repro.core.envspace import EnvSpace
from repro.core.influence import (
    FEATURE_COLUMNS,
    influence_by_application,
    influence_by_arch_application,
    influence_by_architecture,
    linear_fit_quality,
)
from repro.core.pruning import hill_climb, prune_space
from repro.core.recommend import best_variable_values, recommend, worst_trends
from repro.errors import SchemaError
from repro.frame.table import Table
from repro.workloads.base import get_workload


class TestInfluence:
    def test_rows_and_features_per_grouping(self, milan_dataset):
        by_app = influence_by_application(milan_dataset)
        assert set(by_app.row_labels) == {"xsbench", "cg", "nqueens"}
        assert "Architecture" in by_app.feature_names
        assert "Application" not in by_app.feature_names

        by_arch = influence_by_architecture(milan_dataset)
        assert by_arch.row_labels == ["milan"]
        assert "Application" in by_arch.feature_names

        by_both = influence_by_arch_application(milan_dataset)
        assert len(by_both.rows) == 3
        assert "Application" not in by_both.feature_names
        assert "Architecture" not in by_both.feature_names

    def test_importances_are_distributions(self, milan_dataset):
        for inf in (
            influence_by_application(milan_dataset),
            influence_by_architecture(milan_dataset),
            influence_by_arch_application(milan_dataset),
        ):
            m = inf.matrix()
            assert (m >= 0).all()
            assert np.allclose(m.sum(axis=1), 1.0)

    def test_single_arch_dataset_zero_arch_influence(self, milan_dataset):
        """Sort/Strassen effect: a constant feature gets zero influence."""
        inf = influence_by_application(milan_dataset)
        idx = inf.feature_names.index("Architecture")
        assert np.allclose(inf.matrix()[:, idx], 0.0)

    def test_multi_arch_dataset_nonzero_arch_influence(self, tri_arch_dataset):
        inf = influence_by_application(tri_arch_dataset)
        row = {r.label[0]: r for r in inf.rows}
        # XSBench's tuning headroom is milan-specific -> architecture matters.
        assert row["xsbench"].as_dict()["Architecture"] > 0.05

    def test_alignment_architecture_independent(self, tri_arch_dataset):
        """Fig. 2: BOTS apps show low reliance on architecture."""
        inf = influence_by_application(tri_arch_dataset)
        row = {r.label[0]: r for r in inf.rows}
        assert (
            row["alignment"].as_dict()["Architecture"]
            < row["xsbench"].as_dict()["Architecture"]
        )

    def test_nqueens_library_dominates(self, milan_dataset):
        inf = influence_by_arch_application(milan_dataset)
        row = {r.label: r for r in inf.rows}[("milan", "nqueens")]
        scores = row.as_dict()
        active_signal = scores["KMP_LIBRARY"] + scores["KMP_BLOCKTIME"]
        assert active_signal > scores["OMP_SCHEDULE"]
        assert active_signal > scores["KMP_ALIGN_ALLOC"]

    def test_threads_matter_for_thread_swept_app(self, milan_dataset):
        inf = influence_by_arch_application(milan_dataset)
        row = {r.label: r for r in inf.rows}[("milan", "xsbench")]
        assert row.as_dict()["OMP_NUM_THREADS"] > 0.15

    def test_accuracy_beats_chance(self, milan_dataset):
        inf = influence_by_architecture(milan_dataset)
        assert inf.mean_accuracy() > 0.55

    def test_to_table_roundtrip(self, milan_dataset):
        inf = influence_by_application(milan_dataset)
        t = inf.to_table()
        assert t.num_rows == 3
        assert "accuracy" in t and "n_samples" in t

    def test_top_features(self, milan_dataset):
        inf = influence_by_architecture(milan_dataset)
        top = inf.rows[0].top_features(3)
        assert len(top) == 3
        scores = inf.rows[0].as_dict()
        assert scores[top[0]] >= scores[top[1]] >= scores[top[2]]

    def test_missing_columns_rejected(self):
        with pytest.raises(SchemaError):
            influence_by_application(Table({"app": ["x"], "optimal": [1]}))

    def test_degenerate_single_class_group(self):
        t = Table(
            {
                "arch": ["m"] * 4,
                "app": ["a"] * 4,
                "input_size": ["s"] * 4,
                "num_threads": [1, 2, 3, 4],
                "places": ["unset"] * 4,
                "proc_bind": ["unset"] * 4,
                "schedule": ["unset"] * 4,
                "library": ["unset"] * 4,
                "blocktime": ["unset"] * 4,
                "force_reduction": ["unset"] * 4,
                "align_alloc": [0] * 4,
                "optimal": [0, 0, 0, 0],
            }
        )
        inf = influence_by_application(t)
        assert np.allclose(inf.rows[0].importances, 0.0)
        assert inf.rows[0].accuracy == 1.0

    def test_linear_fit_is_poor(self, milan_dataset):
        """The paper's motivation for switching to classification."""
        r2 = linear_fit_quality(milan_dataset)
        assert r2 < 0.6

    def test_feature_columns_mapping_complete(self):
        assert set(FEATURE_COLUMNS.values()) >= {
            "OMP_NUM_THREADS", "OMP_PLACES", "OMP_PROC_BIND", "OMP_SCHEDULE",
            "KMP_LIBRARY", "KMP_BLOCKTIME", "KMP_FORCE_REDUCTION",
            "KMP_ALIGN_ALLOC", "Architecture", "Application", "Input Size",
        }


class TestRecommend:
    def test_nqueens_turnaround_recommended(self, milan_dataset):
        recs = recommend(milan_dataset, app="nqueens", arch="milan")
        by_var = {r.variable: r for r in recs}
        active = set()
        if "library" in by_var:
            active |= set(by_var["library"].values)
        if "blocktime" in by_var:
            active |= set(by_var["blocktime"].values)
        assert "turnaround" in active or "infinite" in active

    def test_recommendations_have_positive_lift(self, milan_dataset):
        for r in best_variable_values(milan_dataset):
            if r.variable != "defaults":
                assert r.lift >= 1.3
            assert r.best_speedup >= 1.0

    def test_worst_trend_is_master_binding(self, milan_dataset):
        trends = worst_trends(milan_dataset)
        assert trends, "expected at least one worst trend"
        assert trends[0].variable == "proc_bind"
        assert trends[0].value == "master"
        assert trends[0].mean_speedup < 0.5

    def test_requires_speedup_column(self):
        with pytest.raises(SchemaError):
            best_variable_values(Table({"app": ["x"], "arch": ["m"]}))
        with pytest.raises(SchemaError):
            worst_trends(Table({"app": ["x"]}))


class TestPruning:
    def test_prune_keeps_influential_variables(self, milan_dataset):
        space = EnvSpace()
        inf = influence_by_architecture(milan_dataset).rows[0]
        pruned = prune_space(space, inf, threshold=0.05)
        assert 1 <= len(pruned.variables) < len(space.variables)

    def test_prune_never_empty(self, milan_dataset):
        space = EnvSpace()
        inf = influence_by_architecture(milan_dataset).rows[0]
        pruned = prune_space(space, inf, threshold=0.99)
        assert len(pruned.variables) == 1

    def test_hill_climb_improves_nqueens(self):
        program = get_workload("nqueens").program("large")
        result = hill_climb(program, MILAN, EnvSpace(), restarts=1, seed=0)
        assert result.speedup > 1.5
        assert result.best_runtime <= result.start_runtime
        assert result.evaluations > 10

    def test_hill_climb_deterministic(self):
        program = get_workload("alignment").program("small")
        a = hill_climb(program, MILAN, EnvSpace(), restarts=0, seed=3)
        b = hill_climb(program, MILAN, EnvSpace(), restarts=0, seed=3)
        assert a == b

    def test_pruned_hill_climb_cheaper_and_close(self, milan_dataset):
        """The paper's pruning claim: near-optimal at a fraction of the
        evaluations."""
        program = get_workload("nqueens").program("large")
        space = EnvSpace()
        inf_rows = {
            r.label: r
            for r in influence_by_arch_application(milan_dataset).rows
        }
        pruned = prune_space(space, inf_rows[("milan", "nqueens")],
                             threshold=0.08)
        full = hill_climb(program, MILAN, space, restarts=1, seed=0)
        cheap = hill_climb(program, MILAN, pruned, restarts=1, seed=0)
        assert cheap.evaluations < full.evaluations
        assert cheap.best_runtime <= full.best_runtime * 1.3
