"""Smoke tests: the example scripts must keep running end to end.

The two sweep-heavy examples (reproduce_paper_analysis, extensions_tour)
are exercised by the benchmark suite's equivalents and skipped here to
keep the test suite fast.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "Speedup over the default configuration" in result.stdout
        # The example's three headline readings appear in its output.
        assert "nqueens" in result.stdout
        assert "master" in result.stdout

    def test_runtime_anatomy(self):
        result = run_example("runtime_anatomy.py")
        assert result.returncode == 0, result.stderr
        assert "phase breakdown" in result.stdout
        assert "ICV resolution" in result.stdout
        assert "task-model fidelity" in result.stdout

    def test_tune_new_application(self):
        result = run_example("tune_new_application.py")
        assert result.returncode == 0, result.stderr
        assert "pruned space keeps" in result.stdout
        assert "retaining" in result.stdout

    def test_examples_directory_complete(self):
        names = sorted(p.name for p in EXAMPLES.glob("*.py"))
        assert names == [
            "extensions_tour.py",
            "quickstart.py",
            "reproduce_paper_analysis.py",
            "runtime_anatomy.py",
            "tune_new_application.py",
        ]
