"""Tests for standardization and encoders."""

import numpy as np
import pytest

from repro.errors import FitError, NotFittedError
from repro.mlkit.preprocess import LabelEncoder, OneHotEncoder, Standardizer


class TestStandardizer:
    def test_zero_mean_unit_std(self):
        rng = np.random.default_rng(0)
        X = rng.normal(5.0, 3.0, size=(200, 4))
        Z = Standardizer().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-12)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-12)

    def test_constant_column_maps_to_zero(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        Z = Standardizer().fit_transform(X)
        assert np.allclose(Z[:, 0], 0.0)
        assert np.isfinite(Z).all()

    def test_inverse_transform_roundtrip(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(50, 3))
        sc = Standardizer().fit(X)
        assert np.allclose(sc.inverse_transform(sc.transform(X)), X)

    def test_transform_before_fit(self):
        with pytest.raises(NotFittedError):
            Standardizer().transform(np.ones((2, 2)))

    def test_1d_rejected(self):
        with pytest.raises(FitError):
            Standardizer().fit(np.ones(5))

    def test_zero_samples_rejected(self):
        with pytest.raises(FitError):
            Standardizer().fit(np.empty((0, 3)))

    def test_transform_unseen_data_uses_train_stats(self):
        train = np.array([[0.0], [2.0]])
        sc = Standardizer().fit(train)
        assert sc.transform(np.array([[4.0]]))[0, 0] == pytest.approx(3.0)


class TestLabelEncoder:
    def test_first_appearance_order(self):
        enc = LabelEncoder().fit(["b", "a", "b", "c"])
        assert enc.classes_ == ["b", "a", "c"]
        assert list(enc.transform(["a", "c", "b"])) == [1, 2, 0]

    def test_inverse(self):
        enc = LabelEncoder().fit(["x", "y"])
        assert enc.inverse_transform([1, 0]) == ["y", "x"]

    def test_unknown_raises(self):
        enc = LabelEncoder().fit(["x"])
        with pytest.raises(FitError):
            enc.transform(["zzz"])

    def test_unknown_code_fallback(self):
        enc = LabelEncoder(unknown_code=-1).fit(["x"])
        assert list(enc.transform(["zzz"])) == [-1]

    def test_numpy_scalars_normalized(self):
        enc = LabelEncoder().fit(np.array(["a", "b"], dtype=object))
        assert list(enc.transform(["b"])) == [1]

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            LabelEncoder().transform(["a"])

    def test_inverse_out_of_range(self):
        enc = LabelEncoder().fit(["a"])
        with pytest.raises(FitError):
            enc.inverse_transform([5])

    def test_mixed_type_categories(self):
        enc = LabelEncoder().fit([1, "a", 2.5])
        assert list(enc.transform([2.5, 1])) == [2, 0]


class TestOneHotEncoder:
    def test_indicator_matrix(self):
        enc = OneHotEncoder().fit(["r", "g", "b"])
        M = enc.transform(["g", "g", "r"])
        assert M.shape == (3, 3)
        assert M.sum() == 3
        assert M[0, 1] == 1.0 and M[2, 0] == 1.0

    def test_feature_names(self):
        enc = OneHotEncoder().fit(["x", "y"])
        assert enc.feature_names("col") == ["col=x", "col=y"]

    def test_unknown_rejected(self):
        enc = OneHotEncoder().fit(["x"])
        with pytest.raises(FitError):
            enc.transform(["q"])

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            OneHotEncoder().transform(["a"])
        with pytest.raises(NotFittedError):
            OneHotEncoder().feature_names("c")
