"""Property-based tests (hypothesis) on core data structures and model
invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.machines import A64FX, MILAN, SKYLAKE
from repro.frame.io import table_from_csv_text, table_to_csv_text
from repro.frame.table import Table
from repro.mlkit.preprocess import LabelEncoder, Standardizer
from repro.runtime.affinity import compute_placement
from repro.runtime.executor import execute
from repro.runtime.icv import EnvConfig, resolve_icvs
from repro.runtime.program import LoadPattern
from repro.runtime.schedule import static_balance_factor
from repro.stats.wilcoxon import rankdata
from repro.workloads.generator import random_program

MACHINES = (A64FX, SKYLAKE, MILAN)


# ---------------------------------------------------------------------------
# Frame invariants
# ---------------------------------------------------------------------------
@st.composite
def small_tables(draw):
    n = draw(st.integers(1, 20))
    names = draw(
        st.lists(
            st.text(alphabet="abcdefg_", min_size=1, max_size=6),
            min_size=1, max_size=4, unique=True,
        )
    )
    cols = {}
    for name in names:
        kind = draw(st.sampled_from(["int", "float", "str"]))
        if kind == "int":
            cols[name] = draw(
                st.lists(st.integers(-1000, 1000), min_size=n, max_size=n)
            )
        elif kind == "float":
            cols[name] = draw(
                st.lists(
                    st.floats(-1e6, 1e6, allow_nan=False), min_size=n,
                    max_size=n,
                )
            )
        else:
            cols[name] = draw(
                st.lists(
                    st.text(alphabet="xyz", min_size=1, max_size=4),
                    min_size=n, max_size=n,
                )
            )
    return Table(cols)


@given(small_tables())
@settings(max_examples=60, deadline=None)
def test_csv_roundtrip_property(table):
    back = table_from_csv_text(table_to_csv_text(table))
    assert back.num_rows == table.num_rows
    assert back.column_names == table.column_names
    for name in table.column_names:
        a, b = table.column(name), back.column(name)
        for x, y in zip(a, b):
            if isinstance(x, float):
                assert y == pytest.approx(x)
            else:
                assert str(x) == str(y)


@given(small_tables(), st.integers(0, 3))
@settings(max_examples=40, deadline=None)
def test_groupby_partitions_rows(table, col_pick):
    name = table.column_names[col_pick % table.num_columns]
    groups = table.group_by(name)
    total = sum(sub.num_rows for _, sub in groups)
    assert total == table.num_rows
    # Each group's key matches all its rows.
    for (key,), sub in groups:
        assert all(v == key for v in sub.column(name))


@given(small_tables())
@settings(max_examples=40, deadline=None)
def test_sort_is_permutation(table):
    name = table.column_names[0]
    sorted_t = table.sort_by(name)
    assert sorted_t.num_rows == table.num_rows
    a = sorted(str(v) for v in table.column(name))
    b = [str(v) for v in sorted_t.column(name)]
    if table.column(name).dtype != object:
        b = sorted(b)  # numeric sort != lexicographic; just compare sets
        a = sorted(a)
    assert a == b


# ---------------------------------------------------------------------------
# Stats invariants
# ---------------------------------------------------------------------------
@given(
    st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=200)
)
@settings(max_examples=60, deadline=None)
def test_rankdata_properties(values):
    ranks = rankdata(np.asarray(values))
    n = len(values)
    # Rank sum is invariant: n(n+1)/2.
    assert ranks.sum() == pytest.approx(n * (n + 1) / 2)
    assert ranks.min() >= 1.0 and ranks.max() <= n


@given(
    st.integers(1, 5000),
    st.integers(1, 128),
    st.sampled_from(list(LoadPattern)),
    st.floats(0.0, 1.5),
)
@settings(max_examples=80, deadline=None)
def test_static_balance_factor_bounds(n_iters, nthreads, pattern, imbalance):
    if pattern is LoadPattern.LINEAR and imbalance >= 2.0:
        imbalance = 1.5
    f = static_balance_factor(pattern, imbalance, n_iters, nthreads)
    assert f >= 1.0
    T = min(nthreads, n_iters)
    # No block can exceed T times the average.
    assert f <= T * (1.0 + 4 * imbalance) + 1.0


# ---------------------------------------------------------------------------
# ML invariants
# ---------------------------------------------------------------------------
@given(
    st.integers(2, 60),
    st.integers(1, 5),
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_standardizer_idempotent_stats(n, p, seed):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, p)) * rng.uniform(0.5, 10) + rng.uniform(-5, 5)
    Z = Standardizer().fit_transform(X)
    assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-9)
    # Re-standardizing an already standardized matrix is a no-op.
    Z2 = Standardizer().fit_transform(Z)
    assert np.allclose(Z, Z2, atol=1e-9)


@given(st.lists(st.sampled_from("abcde"), min_size=1, max_size=60))
@settings(max_examples=60, deadline=None)
def test_label_encoder_roundtrip(values):
    enc = LabelEncoder().fit(values)
    codes = enc.transform(values)
    assert enc.inverse_transform(codes) == values
    assert codes.max() < len(enc.classes_)


# ---------------------------------------------------------------------------
# Runtime-model invariants over the whole config space
# ---------------------------------------------------------------------------
@st.composite
def env_configs(draw):
    from repro.core.envspace import SWEPT_VARIABLES

    kwargs = {}
    for var in SWEPT_VARIABLES:
        value = draw(st.sampled_from(var.values_x86))
        if var.field == "align_alloc":
            kwargs[var.field] = value
        else:
            kwargs[var.field] = value
    kwargs["num_threads"] = draw(st.sampled_from([1, 4, 24, 40, 96, 128]))
    return EnvConfig(**kwargs)


@given(env_configs(), st.integers(0, 2))
@settings(max_examples=60, deadline=None)
def test_every_config_resolves_and_places(config, machine_idx):
    machine = MACHINES[machine_idx]
    icvs = resolve_icvs(config, machine)
    assert icvs.nthreads >= 1
    placement = compute_placement(icvs, machine)
    assert placement.nthreads == icvs.nthreads
    assert (placement.cores >= 0).all()
    assert (placement.cores < machine.n_cores).all()
    assert placement.max_oversubscription >= 1


@given(st.integers(0, 40), env_configs(), st.integers(0, 2))
@settings(max_examples=50, deadline=None)
def test_execution_is_positive_finite_deterministic(seed, config, machine_idx):
    machine = MACHINES[machine_idx]
    program = random_program(seed, max_regions=3)
    a = execute(program, machine, config)
    b = execute(program, machine, config)
    assert a == b
    assert np.isfinite(a) and a > 0


@given(st.integers(0, 25), st.integers(0, 2))
@settings(max_examples=30, deadline=None)
def test_single_thread_never_faster_than_full_machine_would_allow(
    seed, machine_idx
):
    """Serial execution is an upper bound on... nothing in general, but
    runtime must not *increase* super-linearly when adding threads with
    default binding on a parallel-only program."""
    machine = MACHINES[machine_idx]
    program = random_program(seed, max_regions=2)
    serial = execute(program, machine, EnvConfig(num_threads=1))
    full = execute(program, machine, EnvConfig())
    # The parallel run can be slower (overheads) but not absurdly so
    # relative to serial work.
    assert full < serial * 20 + 1e-3


# ---------------------------------------------------------------------------
# Tree-model invariants
# ---------------------------------------------------------------------------
@given(
    st.integers(10, 120),
    st.integers(1, 4),
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=30, deadline=None)
def test_tree_training_accuracy_beats_majority(n, p, seed):
    from repro.mlkit.tree import DecisionTreeClassifier

    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, p))
    y = rng.integers(0, 2, size=n).astype(float)
    tree = DecisionTreeClassifier(max_depth=6, min_samples_split=2).fit(X, y)
    majority = max(y.mean(), 1 - y.mean())
    assert tree.score(X, y) >= majority - 1e-12
    proba = tree.predict_proba(X)
    assert ((proba >= 0) & (proba <= 1)).all()
    assert np.allclose(proba.sum(axis=1), 1.0)


@given(st.integers(0, 30))
@settings(max_examples=25, deadline=None)
def test_loopsim_work_conservation_property(seed):
    from repro.desim.loopsim import simulate_loop

    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 400))
    costs = rng.uniform(0.0, 1e-3, size=n)
    workers = int(rng.integers(1, 17))
    schedule = ["static", "dynamic", "guided"][int(rng.integers(3))]
    res = simulate_loop(costs, workers, schedule=schedule,
                        chunk=int(rng.integers(1, 8)),
                        dispatch_time=float(rng.uniform(0, 1e-6)))
    assert res.total_work == pytest.approx(costs.sum())
    # Makespan can never beat the aggregate-work bound or the largest
    # single iteration.
    assert res.makespan >= costs.sum() / workers - 1e-12
    assert res.makespan >= costs.max() - 1e-12


@given(st.integers(0, 20), st.floats(1.5, 8.0))
@settings(max_examples=20, deadline=None)
def test_runtime_scales_with_work(seed, factor):
    """Scaling every region's work scales the compute-dominated runtime
    by at most that factor (overheads do not grow)."""
    from dataclasses import replace as dc_replace

    from repro.runtime.program import LoopRegion, Program, SerialPhase

    rng = np.random.default_rng(seed)
    region = LoopRegion(
        "l",
        n_iters=int(rng.integers(100, 10_000)),
        iter_work=float(rng.uniform(1e-7, 1e-5)),
        trips=int(rng.integers(1, 5)),
    )
    base_prog = Program("p", (SerialPhase(work=1e-5), region))
    scaled_prog = Program(
        "p", (SerialPhase(work=1e-5 * factor),
              dc_replace(region, iter_work=region.iter_work * factor)),
    )
    machine = MACHINES[seed % 3]
    base = execute(base_prog, machine, EnvConfig())
    scaled = execute(scaled_prog, machine, EnvConfig())
    assert base < scaled <= base * factor * 1.0001


@given(small_tables(), st.integers(0, 3))
@settings(max_examples=30, deadline=None)
def test_join_row_count_matches_key_multiplicity(table, col_pick):
    """|A inner-join B on k| = sum over keys of count_A(k) * count_B(k)."""
    name = table.column_names[col_pick % table.num_columns]
    left = table.select([name]).with_column("_lval", list(range(len(table))))
    right = table.select([name]).with_column("_rval", list(range(len(table))))
    joined = left.join(right, on=name)
    from collections import Counter

    counts = Counter(str(v) for v in table.column(name))
    expected = sum(c * c for c in counts.values())
    assert joined.num_rows == expected


@given(small_tables())
@settings(max_examples=30, deadline=None)
def test_left_join_preserves_left_rows(table):
    name = table.column_names[0]
    empty_right = Table({name: [], "extra": []})
    joined = table.join(empty_right, on=name, how="left")
    assert joined.num_rows == table.num_rows
    assert all(v is None for v in joined["extra"])


@given(small_tables(), st.integers(0, 5))
@settings(max_examples=30, deadline=None)
def test_pivot_conserves_cells(table, seed):
    """Every (index, column) pair of the source appears in the pivot."""
    if table.num_columns < 2:
        return
    index, columns = table.column_names[0], table.column_names[1]
    numeric = [n for n in table.column_names
               if table.column(n).dtype.kind in "if"]
    if not numeric:
        return
    values = numeric[0]
    pivoted = table.pivot(index=index, columns=columns, values=values,
                          agg="count")
    total = 0
    for name in pivoted.column_names[1:]:
        col = pivoted[name]
        total += sum(int(v) for v in col if v is not None)
    assert total == table.num_rows


# ---------------------------------------------------------------------------
# Seeded stdlib-random property tests (no hypothesis involvement): randomly
# generated tables through CSV round-trip, join, filter and sort identities.
# Each failure reproduces from its printed seed alone.
# ---------------------------------------------------------------------------
import math
import random


def _random_table(rng: random.Random, *, with_nan: bool = True,
                  min_rows: int = 1) -> Table:
    """A random table with int / float(+NaN) / str columns."""
    n = rng.randint(min_rows, 25)
    cols = {}
    n_cols = rng.randint(1, 4)
    for i in range(n_cols):
        kind = rng.choice(("int", "float", "str"))
        name = f"{kind[0]}{i}"
        if kind == "int":
            cols[name] = [rng.randint(-999, 999) for _ in range(n)]
        elif kind == "float":
            cols[name] = [
                float("nan") if with_nan and rng.random() < 0.15
                else round(rng.uniform(-1e4, 1e4), rng.randint(0, 6))
                for _ in range(n)
            ]
        else:
            cols[name] = [
                "".join(rng.choices("abcxyz", k=rng.randint(1, 5)))
                for _ in range(n)
            ]
    return Table(cols)


@pytest.mark.parametrize("seed", range(25))
def test_random_csv_roundtrip_preserves_dtype_and_nan(seed):
    rng = random.Random(seed)
    table = _random_table(rng)
    back = table_from_csv_text(table_to_csv_text(table))
    assert back.column_names == table.column_names
    assert back.num_rows == table.num_rows
    for name in table.column_names:
        a, b = table.column(name), back.column(name)
        # dtype kind survives: int64 stays integer, float stays float,
        # strings stay object.
        assert a.dtype.kind == b.dtype.kind, (name, a.dtype, b.dtype)
        for x, y in zip(a, b):
            if isinstance(x, float) and math.isnan(x):
                assert isinstance(y, float) and math.isnan(y)
            elif isinstance(x, float):
                assert y == pytest.approx(x, rel=0, abs=0)  # repr round-trip
            else:
                assert x == y


@pytest.mark.parametrize("seed", range(15))
def test_random_join_identity_on_unique_keys(seed):
    """Joining two tables on a unique key recovers the row pairing."""
    rng = random.Random(1000 + seed)
    n = rng.randint(1, 20)
    keys = rng.sample(range(10000), n)
    left = Table({"k": keys, "a": [rng.randint(0, 99) for _ in range(n)]})
    right_keys = keys[:]
    rng.shuffle(right_keys)
    right = Table(
        {"k": right_keys, "b": [k * 2 for k in right_keys]}
    )
    joined = left.join(right, on="k")
    assert joined.num_rows == n
    for row in joined.iter_rows():
        assert row["b"] == row["k"] * 2
    # Self-join on the key preserves the left column values.
    self_joined = left.join(left.rename({"a": "a2"}), on="k")
    assert self_joined.num_rows == n
    assert all(r["a"] == r["a2"] for r in self_joined.iter_rows())


@pytest.mark.parametrize("seed", range(15))
def test_random_filter_partitions_rows(seed):
    """A mask and its complement split the table without loss, and
    filtering is idempotent under mask conjunction."""
    rng = random.Random(2000 + seed)
    table = _random_table(rng, with_nan=False)
    n = table.num_rows
    mask = np.asarray([rng.random() < 0.5 for _ in range(n)])
    kept, dropped = table.filter(mask), table.filter(~mask)
    assert kept.num_rows + dropped.num_rows == n
    name = table.column_names[0]
    combined = sorted(
        [str(v) for v in kept.column(name)]
        + [str(v) for v in dropped.column(name)]
    )
    assert combined == sorted(str(v) for v in table.column(name))
    mask2 = np.asarray([rng.random() < 0.5 for _ in range(n)])
    twice = table.filter(mask).filter(mask2[mask])
    at_once = table.filter(mask & mask2)
    assert twice == at_once


@pytest.mark.parametrize("seed", range(15))
def test_random_sort_identities(seed):
    """Sorting is idempotent, a permutation, and ordered."""
    rng = random.Random(3000 + seed)
    table = _random_table(rng, with_nan=False, min_rows=2)
    name = table.column_names[-1]
    once = table.sort_by(name)
    assert once.sort_by(name) == once  # idempotent
    values = list(once.column(name))
    assert all(values[i] <= values[i + 1] for i in range(len(values) - 1))
    for col in table.column_names:
        assert sorted(map(str, table.column(col))) == sorted(
            map(str, once.column(col))
        )
