"""Tests for the per-chunk loop simulator, including cross-validation of
the analytic schedule model against it."""

import numpy as np
import pytest

from repro.desim.loopsim import simulate_loop
from repro.errors import SimulationError
from repro.runtime.schedule import static_balance_factor
from repro.runtime.program import LoadPattern


class TestBasics:
    def test_static_uniform_perfect_balance(self):
        costs = np.full(100, 0.01)
        res = simulate_loop(costs, n_workers=10, schedule="static")
        assert res.makespan == pytest.approx(0.1)
        assert res.imbalance == pytest.approx(1.0)
        assert res.n_chunks == 10
        assert res.dispatch_wait == 0.0

    def test_work_conserved(self):
        rng = np.random.default_rng(0)
        costs = rng.uniform(0.001, 0.01, size=200)
        for schedule in ("static", "dynamic", "guided"):
            res = simulate_loop(costs, 8, schedule=schedule)
            assert res.total_work == pytest.approx(costs.sum())

    def test_single_worker_serial(self):
        costs = np.full(50, 0.02)
        for schedule in ("static", "dynamic", "guided"):
            res = simulate_loop(costs, 1, schedule=schedule)
            assert res.makespan == pytest.approx(1.0)

    def test_dynamic_chunk_count(self):
        costs = np.full(100, 0.001)
        res = simulate_loop(costs, 4, schedule="dynamic", chunk=10)
        assert res.n_chunks == 10

    def test_guided_fewer_chunks_than_dynamic(self):
        costs = np.full(1000, 1e-4)
        dyn = simulate_loop(costs, 8, schedule="dynamic", chunk=1)
        gui = simulate_loop(costs, 8, schedule="guided", chunk=1)
        assert gui.n_chunks < dyn.n_chunks

    def test_more_iterations_than_nothing(self):
        with pytest.raises(SimulationError):
            simulate_loop(np.array([]), 4)
        with pytest.raises(SimulationError):
            simulate_loop(np.ones(4), 0)
        with pytest.raises(SimulationError):
            simulate_loop(np.ones(4), 2, schedule="chaotic")
        with pytest.raises(SimulationError):
            simulate_loop(np.ones(4), 2, chunk=0)
        with pytest.raises(SimulationError):
            simulate_loop(-np.ones(4), 2)

    def test_slow_worker_hurts_static_more(self):
        costs = np.full(400, 1e-3)
        speeds = np.array([1.0, 1.0, 1.0, 0.25])
        st = simulate_loop(costs, 4, schedule="static",
                           worker_speeds=speeds)
        dy = simulate_loop(costs, 4, schedule="dynamic", chunk=4,
                           worker_speeds=speeds)
        assert st.makespan > 1.5 * dy.makespan


class TestDispatchContention:
    def test_dispatch_serializes_tiny_iterations(self):
        # Iterations far cheaper than the dispatch: the counter dominates.
        costs = np.full(2000, 1e-7)
        res = simulate_loop(costs, 16, schedule="dynamic", chunk=1,
                            dispatch_time=1e-5)
        assert res.makespan >= 2000 * 1e-5  # serial dispatch floor
        assert res.dispatch_wait > 0

    def test_chunking_relieves_contention(self):
        costs = np.full(2000, 1e-7)
        fine = simulate_loop(costs, 16, "dynamic", chunk=1,
                             dispatch_time=1e-5)
        coarse = simulate_loop(costs, 16, "dynamic", chunk=100,
                               dispatch_time=1e-5)
        assert coarse.makespan < fine.makespan / 5

    def test_no_dispatch_cost_no_wait(self):
        costs = np.full(100, 1e-3)
        res = simulate_loop(costs, 4, "dynamic", chunk=1, dispatch_time=0.0)
        assert res.dispatch_wait == pytest.approx(0.0)


class TestAnalyticValidation:
    """The schedule model's closed forms vs the per-chunk DES."""

    def test_static_balance_factor_tracks_des(self):
        rng = np.random.default_rng(1)
        n, T, sigma = 4000, 16, 0.7
        ratios = []
        for trial in range(10):
            costs = np.maximum(
                rng.normal(1e-4, sigma * 1e-4, size=n), 0.0
            )
            res = simulate_loop(costs, T, schedule="static")
            ideal = costs.sum() / T
            ratios.append(res.makespan / ideal)
        des_balance = float(np.mean(ratios))
        model = static_balance_factor(LoadPattern.RANDOM, sigma, n, T)
        assert model == pytest.approx(des_balance, rel=0.1)

    def test_dynamic_beats_static_on_linear_ramp_in_both_models(self):
        n, T = 2000, 8
        costs = 1e-4 * (1.0 + 1.0 * (np.arange(n) / n - 0.5))
        st = simulate_loop(costs, T, schedule="static")
        dy = simulate_loop(costs, T, schedule="dynamic", chunk=8,
                           dispatch_time=1e-8)
        assert dy.makespan < st.makespan
        # The analytic model agrees on the direction.
        st_model = static_balance_factor(LoadPattern.LINEAR, 1.0, n, T)
        assert st_model > 1.2

    def test_dispatch_bound_regime_matches_contention_floor(self):
        """The analytic model's `contention_floor = n_chunks * serial_grab`
        must match the DES when iterations are negligible."""
        n, T = 1000, 12
        dispatch = 2e-6
        costs = np.full(n, 1e-9)
        res = simulate_loop(costs, T, "dynamic", chunk=1,
                            dispatch_time=dispatch)
        floor = n * dispatch
        assert res.makespan == pytest.approx(floor, rel=0.05)

    def test_guided_balances_ramp_like_model_predicts(self):
        n, T = 3000, 10
        costs = 1e-4 * (1.0 + 0.8 * (np.arange(n) / n - 0.5))
        gui = simulate_loop(costs, T, schedule="guided", dispatch_time=1e-8)
        ideal = costs.sum() / T
        assert gui.makespan / ideal < 1.15  # guided smooths the ramp
