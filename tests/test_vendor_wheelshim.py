"""Tests for the vendored offline wheel shim.

The shim makes ``pip install -e .`` possible in this wheel-less
environment (see DESIGN.md §8); these tests pin its spec compliance:
RECORD hashes, name parsing, and archive layout.
"""

import base64
import hashlib
import sys
import zipfile
from pathlib import Path

import pytest

VENDOR = Path(__file__).parent.parent / "vendor"
sys.path.insert(0, str(VENDOR))

from wheel.wheelfile import WheelError, WheelFile  # noqa: E402


@pytest.fixture
def wheel_path(tmp_path):
    return tmp_path / "demo-1.2.3-py3-none-any.whl"


class TestNameParsing:
    def test_fields(self, wheel_path):
        wf = WheelFile(wheel_path, "w")
        assert wf.dist_info_path == "demo-1.2.3.dist-info"
        assert wf.record_path == "demo-1.2.3.dist-info/RECORD"
        wf.close()

    def test_build_tag(self, tmp_path):
        wf = WheelFile(tmp_path / "demo-1.2.3-4-py3-none-any.whl", "w")
        assert wf.parsed_filename.group("build") == "4"
        wf.close()

    def test_bad_name_rejected(self, tmp_path):
        with pytest.raises(WheelError):
            WheelFile(tmp_path / "not-a-wheel.zip", "w")


class TestRecordGeneration:
    def test_record_format_and_hashes(self, wheel_path):
        payload = b"print('hello')\n"
        with WheelFile(wheel_path, "w") as wf:
            wf.writestr("demo/__init__.py", payload)
            wf.writestr("demo-1.2.3.dist-info/METADATA",
                        "Metadata-Version: 2.1\nName: demo\n")

        with zipfile.ZipFile(wheel_path) as zf:
            record = zf.read("demo-1.2.3.dist-info/RECORD").decode()
        lines = dict(
            (line.split(",")[0], line) for line in record.strip().splitlines()
        )
        # RECORD lists itself with empty hash and size.
        assert lines["demo-1.2.3.dist-info/RECORD"].endswith(",,")
        # Payload hash matches the spec encoding.
        digest = hashlib.sha256(payload).digest()
        expected = base64.urlsafe_b64encode(digest).rstrip(b"=").decode()
        path, hash_part, size = lines["demo/__init__.py"].split(",")
        assert hash_part == f"sha256={expected}"
        assert int(size) == len(payload)

    def test_write_files_walks_tree(self, wheel_path, tmp_path):
        src = tmp_path / "unpacked"
        (src / "pkg").mkdir(parents=True)
        (src / "pkg" / "mod.py").write_text("x = 1\n")
        (src / "demo-1.2.3.dist-info").mkdir()
        (src / "demo-1.2.3.dist-info" / "METADATA").write_text("Name: demo\n")
        with WheelFile(wheel_path, "w") as wf:
            wf.write_files(str(src))
        with zipfile.ZipFile(wheel_path) as zf:
            names = set(zf.namelist())
        assert "pkg/mod.py" in names
        assert "demo-1.2.3.dist-info/METADATA" in names
        assert "demo-1.2.3.dist-info/RECORD" in names

    def test_archive_is_valid_zip(self, wheel_path):
        with WheelFile(wheel_path, "w") as wf:
            wf.writestr("a.py", "pass\n")
        assert zipfile.is_zipfile(wheel_path)
        with zipfile.ZipFile(wheel_path) as zf:
            assert zf.testzip() is None


class TestMetadataConversion:
    def test_requires_txt_to_requires_dist(self, tmp_path):
        from wheel.metadata import pkginfo_to_metadata

        egg = tmp_path / "demo.egg-info"
        egg.mkdir()
        (egg / "PKG-INFO").write_text(
            "Metadata-Version: 1.0\nName: demo\nVersion: 1.2.3\n"
        )
        (egg / "requires.txt").write_text(
            "numpy>=1.22\n\n[test]\npytest\n"
        )
        msg = pkginfo_to_metadata(str(egg), str(egg / "PKG-INFO"))
        assert msg["Metadata-Version"] == "2.1"
        requires = msg.get_all("Requires-Dist")
        assert "numpy>=1.22" in requires
        assert 'pytest ; extra == "test"' in requires
        assert msg.get_all("Provides-Extra") == ["test"]

    def test_installed_shim_importable(self):
        # The real environment uses the installed copy; both must exist.
        import wheel

        assert hasattr(wheel, "__version__")
