"""Tests for descriptive statistics and KDE/violin shapes."""

import numpy as np
import pytest
import scipy.stats

from repro.errors import StatsError
from repro.stats.descriptive import (
    coefficient_of_variation,
    geometric_mean,
    summarize,
)
from repro.stats.distribution import GaussianKDE, violin_stats


class TestSummarize:
    def test_known_values(self):
        s = summarize(np.array([1.0, 2.0, 3.0, 4.0, 5.0]))
        assert s.mean == 3.0
        assert s.median == 3.0
        assert s.minimum == 1.0
        assert s.maximum == 5.0
        assert s.q1 == 2.0
        assert s.q3 == 4.0
        assert s.iqr == 2.0
        assert s.range == 4.0
        assert s.n == 5

    def test_std_ddof1(self):
        x = np.array([1.0, 2.0, 4.0])
        assert summarize(x).std == pytest.approx(np.std(x, ddof=1))

    def test_single_value_std_zero(self):
        assert summarize(np.array([3.0])).std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(StatsError):
            summarize(np.array([]))

    def test_nan_rejected(self):
        with pytest.raises(StatsError):
            summarize(np.array([1.0, np.nan]))

    def test_as_dict_keys(self):
        d = summarize(np.arange(1.0, 10.0)).as_dict()
        assert set(d) == {"n", "mean", "std", "min", "q1", "median", "q3", "max"}


class TestGeometricMean:
    def test_known(self):
        assert geometric_mean(np.array([1.0, 4.0])) == pytest.approx(2.0)

    def test_matches_scipy(self):
        x = np.array([1.2, 0.8, 2.5, 1.0])
        assert geometric_mean(x) == pytest.approx(scipy.stats.gmean(x))

    def test_nonpositive_rejected(self):
        with pytest.raises(StatsError):
            geometric_mean(np.array([1.0, 0.0]))


class TestCoefficientOfVariation:
    def test_scale_invariance(self):
        x = np.array([1.0, 1.1, 0.9, 1.05])
        assert coefficient_of_variation(x) == pytest.approx(
            coefficient_of_variation(10 * x)
        )

    def test_zero_mean_rejected(self):
        with pytest.raises(StatsError):
            coefficient_of_variation(np.array([-1.0, 1.0]))


class TestKDE:
    def test_density_integrates_to_one(self):
        rng = np.random.default_rng(0)
        kde = GaussianKDE(rng.normal(size=400))
        lo, hi = kde.support(cut=6.0)
        grid = np.linspace(lo, hi, 4000)
        integral = np.trapezoid(kde(grid), grid)
        assert integral == pytest.approx(1.0, abs=1e-3)

    def test_density_nonnegative(self):
        kde = GaussianKDE(np.array([1.0, 2.0, 5.0]))
        grid = np.linspace(-10, 20, 100)
        assert (kde(grid) >= 0).all()

    def test_peak_near_mode(self):
        rng = np.random.default_rng(1)
        sample = np.concatenate([rng.normal(0, 0.2, 500), rng.normal(5, 0.2, 50)])
        kde = GaussianKDE(sample)
        grid = np.linspace(-2, 7, 500)
        dens = kde(grid)
        assert abs(grid[np.argmax(dens)]) < 0.5  # main mode near 0

    def test_degenerate_sample_finite(self):
        kde = GaussianKDE(np.array([2.0, 2.0, 2.0]))
        assert np.isfinite(kde(np.array([2.0]))).all()
        assert kde.bandwidth > 0

    def test_scott_bandwidth(self):
        rng = np.random.default_rng(2)
        sample = rng.normal(size=200)
        kde = GaussianKDE(sample)
        expected = np.std(sample, ddof=1) * 200 ** (-0.2)
        assert kde.bandwidth == pytest.approx(expected)

    def test_empty_rejected(self):
        with pytest.raises(StatsError):
            GaussianKDE(np.array([]))


class TestViolinStats:
    def test_quartiles_and_extremes(self):
        sample = np.arange(1.0, 101.0)
        v = violin_stats(sample, label="x")
        assert v.median == pytest.approx(50.5)
        assert v.minimum == 1.0 and v.maximum == 100.0
        assert v.n == 100
        assert v.label == "x"

    def test_grid_covers_sample(self):
        sample = np.array([3.0, 4.0, 5.0])
        v = violin_stats(sample)
        assert v.grid.min() <= 3.0 and v.grid.max() >= 5.0

    def test_grid_points_respected(self):
        v = violin_stats(np.arange(10.0), grid_points=64)
        assert v.grid.shape == (64,) and v.density.shape == (64,)

    def test_too_few_grid_points_rejected(self):
        with pytest.raises(StatsError):
            violin_stats(np.arange(10.0), grid_points=2)

    def test_peak_density_positive(self):
        v = violin_stats(np.arange(50.0))
        assert v.peak_density > 0
