"""ICV-equivalence classes (plane 2): signature merges mandated by the
derivation rules, class partitioning, grid-level pruning statistics, and
record-identity of the pruned sweep path (including cache interop)."""

import pytest

from repro.arch.machines import A64FX, MILAN, machine_names
from repro.core.cache import SweepCache
from repro.core.envspace import EnvSpace
from repro.core.sweep import SweepPlan, equivalence_groups, run_sweep
from repro.lint import (
    EquivalenceClass,
    equivalence_classes,
    grid_prune_stats,
    icv_signature,
)
from repro.runtime.icv import EnvConfig

pytestmark = pytest.mark.lint


def sig(machine=MILAN, nthreads=None, **kwargs):
    return icv_signature(EnvConfig(**kwargs), machine, nthreads=nthreads)


class TestSignatureMerges:
    """Each merge is forced by a derivation rule (paper Sec. III)."""

    def test_true_bind_is_spread(self):
        assert sig(proc_bind="true", places="cores") == sig(
            proc_bind="spread", places="cores"
        )

    def test_blocktime_dead_under_turnaround(self):
        base = sig(library="turnaround")
        assert sig(library="turnaround", blocktime="0") == base
        assert sig(library="turnaround", blocktime="infinite") == base

    def test_blocktime_alive_under_throughput(self):
        assert sig(library="throughput", blocktime="0") != sig(
            library="throughput", blocktime="infinite"
        )

    def test_forced_reduction_matching_heuristic_merges(self):
        # tree is what the heuristic picks at >4 threads...
        assert sig(force_reduction="tree", num_threads=8) == sig(num_threads=8)
        # ...but not at 2 threads, where critical is the derived method.
        assert sig(force_reduction="tree", num_threads=2) != sig(num_threads=2)
        assert sig(force_reduction="critical", num_threads=2) == sig(
            num_threads=2
        )

    def test_places_dead_when_unbound(self):
        assert sig(places="cores", proc_bind="false") == sig(proc_bind="false")

    def test_explicit_bind_false_is_default(self):
        assert sig(proc_bind="false") == sig()

    def test_distinct_behaviour_stays_distinct(self):
        assert sig(schedule="static") != sig(schedule="dynamic")
        assert sig(num_threads=8) != sig(num_threads=16)
        assert sig(places="cores", proc_bind="close") != sig(
            places="sockets", proc_bind="close"
        )

    def test_nthreads_override_matches_with_threads(self):
        cfg = EnvConfig(schedule="guided")
        assert icv_signature(cfg, MILAN, nthreads=12) == icv_signature(
            cfg.with_threads(12), MILAN
        )


class TestEquivalenceClasses:
    @pytest.fixture(scope="class")
    def grid_and_classes(self):
        configs = EnvSpace().grid(MILAN, scale="small")
        return configs, equivalence_classes(configs, MILAN, nthreads=48)

    def test_classes_partition_the_grid(self, grid_and_classes):
        configs, classes = grid_and_classes
        seen = [i for c in classes for i in c.members]
        assert sorted(seen) == list(range(len(configs)))
        assert len(seen) == len(set(seen))

    def test_representative_is_first_member(self, grid_and_classes):
        configs, classes = grid_and_classes
        for c in classes:
            assert c.representative == configs[c.members[0]]
            assert c.members == tuple(sorted(c.members))
            assert c.size == len(c.members)

    def test_classes_in_grid_order(self, grid_and_classes):
        _, classes = grid_and_classes
        firsts = [c.members[0] for c in classes]
        assert firsts == sorted(firsts)

    def test_members_share_signature_across_classes_not(self, grid_and_classes):
        configs, classes = grid_and_classes
        for c in classes:
            for i in c.members:
                assert icv_signature(configs[i], MILAN, 48) == c.signature
        assert len({c.signature for c in classes}) == len(classes)

    def test_mirrors_sweep_grouping(self, grid_and_classes):
        configs, classes = grid_and_classes
        groups = equivalence_groups(configs, MILAN, nthreads=48)
        assert {c.signature: list(c.members) for c in classes} == dict(groups)


class TestGridPruneStats:
    def test_full_milan_grid_shrinks(self):
        (stats,) = grid_prune_stats(MILAN, scale="full")
        assert stats.n_configs == 9216
        assert stats.n_classes == 1440
        assert stats.n_pruned == 9216 - 1440
        assert stats.reduction == pytest.approx(6.4)
        assert stats.largest_class >= 2

    def test_every_arch_full_grid_prunes(self):
        # Acceptance criterion: the reduction is structural (derivation
        # rules), not a lucky artifact of one machine's grid.
        for arch in machine_names():
            from repro.arch.machines import get_machine

            (stats,) = grid_prune_stats(get_machine(arch), scale="full")
            assert stats.reduction > 1.0, arch

    def test_describe_reports_the_numbers(self):
        (stats,) = grid_prune_stats(A64FX, scale="full")
        line = stats.describe()
        assert "a64fx" in line and "->" in line
        assert str(stats.n_configs) in line and str(stats.n_classes) in line

    def test_explicit_thread_counts(self):
        small = grid_prune_stats(MILAN, scale="small", nthreads=(2, 96))
        assert [s.nthreads for s in small] == [2, 96]
        assert all(s.n_classes <= s.n_configs for s in small)


PLAN = SweepPlan(
    arch="milan",
    workload_names=("cg",),
    scale="small",
    repetitions=2,
    inputs_limit=2,
)


class TestPrunedSweepParity:
    @pytest.fixture(scope="class")
    def both(self):
        pruned = run_sweep(PLAN)
        unpruned = run_sweep(
            SweepPlan(**{**PLAN.__dict__, "prune": False})
        )
        return pruned, unpruned

    def test_records_bit_identical(self, both):
        pruned, unpruned = both
        assert pruned.records == unpruned.records

    def test_pruning_is_not_vacuous(self, both):
        pruned, unpruned = both
        assert pruned.n_pruned_configs > 0
        assert unpruned.n_pruned_configs == 0
        assert pruned.n_simulated_configs < unpruned.n_simulated_configs

    def test_counters_cover_computed_records(self, both):
        for result in both:
            assert (
                result.n_simulated_configs + result.n_pruned_configs
                == len(result.records)
            )

    def test_pruned_sweep_warms_cache_for_unpruned(self, tmp_path):
        # prune is excluded from the cache key: the pruned records ARE the
        # unpruned records, so a cold pruned sweep must fully warm an
        # unpruned one (and vice versa).
        cache = SweepCache(tmp_path)
        cold = run_sweep(PLAN, cache=cache)
        assert cold.n_computed_batches > 0
        warm = run_sweep(
            SweepPlan(**{**PLAN.__dict__, "prune": False}), cache=cache
        )
        assert warm.n_computed_batches == 0
        assert warm.n_cached_batches == cold.n_computed_batches
        assert warm.records == cold.records
