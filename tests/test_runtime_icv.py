"""Tests for EnvConfig validation and ICV resolution (Sec. III defaults)."""

import math

import pytest

from repro.arch.machines import A64FX, MILAN, SKYLAKE
from repro.arch.topology import PlaceKind
from repro.errors import InvalidEnvValue
from repro.runtime.icv import (
    UNSET,
    BindPolicy,
    EnvConfig,
    LibraryMode,
    ReductionMethod,
    ScheduleKind,
    WaitPolicy,
    resolve_icvs,
)


class TestValidation:
    def test_default_config_valid(self):
        EnvConfig().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_threads": 0},
            {"places": "tiles"},
            {"proc_bind": "everywhere"},
            {"schedule": "chaotic"},
            {"library": "superfast"},
            {"blocktime": "-5"},
            {"blocktime": "forever"},
            {"blocktime": str(2**31)},
            {"force_reduction": "magic"},
            {"align_alloc": 100},  # not a power of two
            {"align_alloc": 4},  # too small
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(InvalidEnvValue):
            EnvConfig(**kwargs).validate()

    def test_blocktime_accepts_any_int32(self):
        EnvConfig(blocktime="12345").validate()
        EnvConfig(blocktime="infinite").validate()
        EnvConfig(blocktime="0").validate()

    def test_as_env_omits_unset(self):
        assert EnvConfig().as_env() == {}
        env = EnvConfig(num_threads=8, library="turnaround").as_env()
        assert env == {"OMP_NUM_THREADS": "8", "KMP_LIBRARY": "turnaround"}

    def test_key_distinguishes_configs(self):
        assert EnvConfig().key() != EnvConfig(schedule="dynamic").key()
        assert EnvConfig().key() == EnvConfig().key()

    def test_with_threads(self):
        cfg = EnvConfig(schedule="guided").with_threads(12)
        assert cfg.num_threads == 12
        assert cfg.schedule == "guided"


class TestDefaults:
    """The default-derivation rules of Sec. III."""

    def test_all_unset_defaults(self):
        icvs = resolve_icvs(EnvConfig(), SKYLAKE)
        assert icvs.nthreads == 40
        assert icvs.places is PlaceKind.UNSET
        assert icvs.bind is BindPolicy.FALSE
        assert icvs.schedule is ScheduleKind.STATIC
        assert icvs.library is LibraryMode.THROUGHPUT
        assert icvs.blocktime_ms == 200.0
        assert icvs.align_alloc == 64

    def test_bind_default_becomes_spread_with_places(self):
        icvs = resolve_icvs(EnvConfig(places="cores"), SKYLAKE)
        assert icvs.bind is BindPolicy.SPREAD

    def test_bind_unset_value_matches_unset_variable(self):
        a = resolve_icvs(EnvConfig(proc_bind=UNSET), SKYLAKE)
        b = resolve_icvs(EnvConfig(), SKYLAKE)
        assert a.bind == b.bind

    def test_explicit_false_with_places_stays_false(self):
        icvs = resolve_icvs(EnvConfig(places="cores", proc_bind="false"), MILAN)
        assert icvs.bind is BindPolicy.FALSE
        assert not icvs.threads_bound

    def test_align_default_is_cache_line(self):
        assert resolve_icvs(EnvConfig(), A64FX).align_alloc == 256
        assert resolve_icvs(EnvConfig(), MILAN).align_alloc == 64

    def test_align_explicit(self):
        assert resolve_icvs(EnvConfig(align_alloc=512), A64FX).align_alloc == 512

    def test_blocktime_infinite(self):
        icvs = resolve_icvs(EnvConfig(blocktime="infinite"), MILAN)
        assert math.isinf(icvs.blocktime_ms)

    def test_default_threads_is_core_count(self):
        assert resolve_icvs(EnvConfig(), MILAN).nthreads == 96
        assert resolve_icvs(EnvConfig(num_threads=7), MILAN).nthreads == 7


class TestSerialMode:
    def test_serial_forces_one_thread(self):
        icvs = resolve_icvs(EnvConfig(library="serial", num_threads=40), MILAN)
        assert icvs.nthreads == 1
        assert icvs.library is LibraryMode.SERIAL

    def test_serial_runs_serially(self):
        from repro.runtime.executor import execute
        from repro.workloads.generator import synthetic_loop_workload

        prog = synthetic_loop_workload(n_iters=10_000, iter_work=1e-6,
                                       trips=2)
        serial = execute(prog, MILAN, EnvConfig(library="serial"))
        one_thread = execute(prog, MILAN, EnvConfig(num_threads=1))
        parallel = execute(prog, MILAN, EnvConfig())
        assert serial == pytest.approx(one_thread, rel=0.05)
        assert serial > 10 * parallel


class TestReductionHeuristic:
    """Sec. III-6: none / critical (2-4) / tree (>4)."""

    @pytest.mark.parametrize(
        "threads,expected",
        [
            (1, ReductionMethod.NONE),
            (2, ReductionMethod.CRITICAL),
            (4, ReductionMethod.CRITICAL),
            (5, ReductionMethod.TREE),
            (96, ReductionMethod.TREE),
        ],
    )
    def test_heuristic(self, threads, expected):
        icvs = resolve_icvs(EnvConfig(num_threads=threads), MILAN)
        assert icvs.reduction is expected

    def test_explicit_overrides_heuristic(self):
        icvs = resolve_icvs(
            EnvConfig(num_threads=96, force_reduction="atomic"), MILAN
        )
        assert icvs.reduction is ReductionMethod.ATOMIC


class TestWaitPolicyDerivation:
    """OMP_WAIT_POLICY derives from KMP_LIBRARY + KMP_BLOCKTIME."""

    def test_default_is_passive(self):
        assert resolve_icvs(EnvConfig(), MILAN).wait_policy is WaitPolicy.PASSIVE

    def test_turnaround_is_active(self):
        icvs = resolve_icvs(EnvConfig(library="turnaround"), MILAN)
        assert icvs.wait_policy is WaitPolicy.ACTIVE

    def test_infinite_blocktime_is_active(self):
        icvs = resolve_icvs(EnvConfig(blocktime="infinite"), MILAN)
        assert icvs.wait_policy is WaitPolicy.ACTIVE

    def test_blocktime_zero_is_passive(self):
        icvs = resolve_icvs(EnvConfig(blocktime="0"), MILAN)
        assert icvs.wait_policy is WaitPolicy.PASSIVE


class TestParseTimeAlignValidation:
    """KMP_ALIGN_ALLOC domain errors surface at construction, not at a
    later validate() call — a bad config object never exists."""

    @pytest.mark.parametrize("bad", [100, 4, 7, 1, 96, -64])
    def test_constructor_rejects_non_power_of_two(self, bad):
        with pytest.raises(InvalidEnvValue, match="power of two"):
            EnvConfig(align_alloc=bad)

    @pytest.mark.parametrize("good", [8, 64, 256, 4096])
    def test_constructor_accepts_powers_of_two(self, good):
        assert EnvConfig(align_alloc=good).align_alloc == good

    def test_with_threads_cannot_smuggle_bad_align(self):
        # dataclasses.replace re-runs __post_init__, so derived copies are
        # revalidated too.
        import dataclasses

        cfg = EnvConfig(align_alloc=64)
        with pytest.raises(InvalidEnvValue):
            dataclasses.replace(cfg, align_alloc=100)


class TestFromEnv:
    def test_parses_a_full_environment(self):
        cfg = EnvConfig.from_env(
            {
                "OMP_NUM_THREADS": "16",
                "OMP_PLACES": "cores",
                "OMP_PROC_BIND": "close",
                "OMP_SCHEDULE": "dynamic,8",
                "KMP_LIBRARY": "turnaround",
                "KMP_ALIGN_ALLOC": " 256 ",
            }
        )
        assert cfg.num_threads == 16 and cfg.align_alloc == 256
        assert cfg.schedule == "dynamic,8" and cfg.library == "turnaround"

    def test_unrelated_variables_ignored(self):
        cfg = EnvConfig.from_env({"PATH": "/bin", "HOME": "/root",
                                  "OMP_NUM_THREADS": "4"})
        assert cfg == EnvConfig(num_threads=4)

    def test_unknown_omp_kmp_variables_rejected(self):
        from repro.errors import UnknownVariable

        for name in ("OMP_BOGUS", "KMP_TEAMS_LIMIT"):
            with pytest.raises(UnknownVariable, match=name):
                EnvConfig.from_env({name: "1"})

    def test_non_integer_rejected_with_variable_name(self):
        with pytest.raises(InvalidEnvValue, match="OMP_NUM_THREADS"):
            EnvConfig.from_env({"OMP_NUM_THREADS": "lots"})

    def test_domain_errors_surface_at_parse(self):
        with pytest.raises(InvalidEnvValue):
            EnvConfig.from_env({"OMP_PROC_BIND": "everywhere"})
        with pytest.raises(InvalidEnvValue):
            EnvConfig.from_env({"KMP_ALIGN_ALLOC": "100"})
