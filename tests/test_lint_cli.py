"""The `repro-omp lint` surface: plane selection, exit codes, --stats,
--report artifacts, and the default all-planes invocation CI runs."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.cli import build_parser, main

pytestmark = pytest.mark.lint


class TestParser:
    def test_lint_subcommand_present(self):
        args = build_parser().parse_args(["lint", "--self"])
        assert args.command == "lint" and args.self_lint

    def test_arch_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["lint", "--arch", "pentium"])

    def test_sweep_gains_no_prune(self):
        args = build_parser().parse_args(
            ["sweep", "--arch", "milan", "-o", "x.csv", "--no-prune"]
        )
        assert args.no_prune


class TestSelfPlane:
    def test_self_lint_passes_on_this_tree(self, capsys):
        # Acceptance criterion: zero unwaived findings on src/repro.
        assert main(["lint", "--self"]) == 0
        out = capsys.readouterr().out
        assert "0 unwaived failure(s)" in out

    def test_self_lint_fails_on_planted_violation(self, tmp_path, capsys):
        pkg = tmp_path / "runtime"
        pkg.mkdir()
        (pkg / "bad.py").write_text(
            "import random\nX = random.random()\n", encoding="utf-8"
        )
        assert main(["lint", "--self", "--src", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "SIM002" in out and "fix:" in out


class TestManifestPlane:
    def test_shipped_manifests_pass(self, capsys):
        assert main(["lint", "--arch", "milan"]) == 0
        out = capsys.readouterr().out
        assert "unwaived failure(s)" in out or "clean" in out

    def test_multi_arch_findings_are_deduped(self, capsys):
        assert main(["lint", "--arch", "milan", "--workloads", "cg"]) == 0
        single = capsys.readouterr().out
        assert (
            main(["lint", "--arch", "milan", "skylake", "--workloads", "cg"])
            == 0
        )
        multi = capsys.readouterr().out
        # cg's program-spec findings are machine-independent; a second
        # arch must not repeat them.
        assert single.count("PRG006") == multi.count("PRG006")


class TestEnvPlane:
    def test_clean_environment_exits_zero(self, capsys):
        assert main(["lint", "--env", "OMP_NUM_THREADS=48"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_finding_environment_exits_one(self, capsys):
        assert main(["lint", "--env", "OMP_PLACES=cores"]) == 1
        out = capsys.readouterr().out
        assert "ENV002" in out and "OMP_PROC_BIND" in out

    def test_env_respects_arch(self, capsys):
        rc = main(["lint", "--arch", "a64fx", "--env",
                   "KMP_ALIGN_ALLOC=64"])
        assert rc == 1
        assert "ENV006" in capsys.readouterr().out

    def test_bad_env_syntax_exits_two(self, capsys):
        assert main(["lint", "--env", "OMP_NUM_THREADS"]) == 2
        assert "VAR=VALUE" in capsys.readouterr().err

    def test_unknown_variable_exits_two(self, capsys):
        assert main(["lint", "--env", "OMP_BOGUS=1"]) == 2
        assert "OMP_BOGUS" in capsys.readouterr().err

    def test_invalid_value_exits_two(self, capsys):
        assert main(["lint", "--env", "KMP_ALIGN_ALLOC=100"]) == 2
        assert "power of two" in capsys.readouterr().err


def plant_violations(tmp_path):
    """A fake source tree with violations in several files and rules."""
    tree = tmp_path / "bad_src"
    for rel, source in {
        "runtime/a.py": "import random\nX = random.random()\n",
        "desim/b.py": "import time\n\ndef now():\n    return time.time()\n",
        "core/c.py": "for x in set([3, 1, 2]):\n    print(x)\n",
    }.items():
        path = tree / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return tree


class TestJsonFormat:
    def test_schema_and_report_round_trip(self, tmp_path, capsys):
        tree = plant_violations(tmp_path)
        report = tmp_path / "lint.json"
        rc = main(["lint", "--self", "--src", str(tree),
                   "--format", "json", "--report", str(report)])
        assert rc == 1
        stdout_payload = json.loads(capsys.readouterr().out)
        report_payload = json.loads(report.read_text(encoding="utf-8"))
        # The artifact and stdout carry the same findings.
        assert stdout_payload["findings"] == report_payload["findings"]
        # The three planted violations, plus SIM000s for the shipped
        # waivers that match nothing in this fake tree.
        planted = [f for f in stdout_payload["findings"]
                   if f["rule"] != "SIM000"]
        assert sorted(f["rule"] for f in planted) == [
            "SIM001", "SIM002", "SIM003",
        ]
        for f in stdout_payload["findings"]:
            assert {"rule", "severity", "subject", "message", "path",
                    "line"} <= f.keys()
            assert f["severity"] in ("error", "warning", "info")

    def test_exit_code_contract(self, tmp_path, capsys):
        # Error-severity findings -> nonzero; a clean tree -> zero.
        tree = plant_violations(tmp_path)
        assert main(["lint", "--self", "--src", str(tree),
                     "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert any(f["severity"] == "error" for f in payload["findings"])

        # The shipped tree is clean -> zero (all waivers used, so no
        # SIM000 noise either).
        assert main(["lint", "--self", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_unwaived_failures"] == 0

    def test_ordering_stable_across_hash_seeds(self, tmp_path):
        # Finding order must not depend on interpreter hash
        # randomization: identical JSON under different PYTHONHASHSEED.
        tree = plant_violations(tmp_path)
        src_dir = str(Path(repro.__file__).resolve().parents[1])

        def run(seed):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = os.pathsep.join(
                [src_dir, env.get("PYTHONPATH", "")]
            ).rstrip(os.pathsep)
            proc = subprocess.run(
                [sys.executable, "-m", "repro.cli", "lint", "--self",
                 "--src", str(tree), "--format", "json"],
                capture_output=True, text=True, env=env,
            )
            assert proc.returncode == 1, proc.stderr
            return proc.stdout

        assert run("0") == run("1")


class TestStatsAndReport:
    def test_stats_prints_reduction_lines(self, capsys):
        assert main(["lint", "--arch", "milan", "--stats",
                     "--scale", "small"]) == 0
        out = capsys.readouterr().out
        assert "milan" in out and "classes" in out and "x," in out

    def test_report_artifact_shape(self, tmp_path, capsys):
        report = tmp_path / "lint.json"
        rc = main(["lint", "--self", "--arch", "milan", "--stats",
                   "--scale", "small", "--report", str(report)])
        assert rc == 0
        payload = json.loads(report.read_text(encoding="utf-8"))
        assert payload["n_unwaived_failures"] == 0
        assert "self" in payload["planes"]
        assert "manifests:milan" in payload["planes"]
        (stats,) = payload["prune_stats"]
        assert stats["arch"] == "milan" and stats["reduction"] > 1.0
        for f in payload["findings"]:
            assert {"rule", "severity", "subject", "message"} <= f.keys()

    def test_default_invocation_runs_all_planes(self, tmp_path, capsys):
        # Bare `repro-omp lint` = what the CI job relies on: self plane,
        # flow plane, deps plane, plus every arch's manifests.
        report = tmp_path / "all.json"
        assert main(["lint", "--report", str(report)]) == 0
        payload = json.loads(report.read_text(encoding="utf-8"))
        assert set(payload["planes"]) == {
            "self", "flow", "deps",
            "manifests:a64fx", "manifests:skylake", "manifests:milan",
        }
