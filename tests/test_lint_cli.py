"""The `repro-omp lint` surface: plane selection, exit codes, --stats,
--report artifacts, and the default all-planes invocation CI runs."""

import json

import pytest

from repro.cli import build_parser, main

pytestmark = pytest.mark.lint


class TestParser:
    def test_lint_subcommand_present(self):
        args = build_parser().parse_args(["lint", "--self"])
        assert args.command == "lint" and args.self_lint

    def test_arch_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["lint", "--arch", "pentium"])

    def test_sweep_gains_no_prune(self):
        args = build_parser().parse_args(
            ["sweep", "--arch", "milan", "-o", "x.csv", "--no-prune"]
        )
        assert args.no_prune


class TestSelfPlane:
    def test_self_lint_passes_on_this_tree(self, capsys):
        # Acceptance criterion: zero unwaived findings on src/repro.
        assert main(["lint", "--self"]) == 0
        out = capsys.readouterr().out
        assert "0 unwaived failure(s)" in out

    def test_self_lint_fails_on_planted_violation(self, tmp_path, capsys):
        pkg = tmp_path / "runtime"
        pkg.mkdir()
        (pkg / "bad.py").write_text(
            "import random\nX = random.random()\n", encoding="utf-8"
        )
        assert main(["lint", "--self", "--src", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "SIM002" in out and "fix:" in out


class TestManifestPlane:
    def test_shipped_manifests_pass(self, capsys):
        assert main(["lint", "--arch", "milan"]) == 0
        out = capsys.readouterr().out
        assert "unwaived failure(s)" in out or "clean" in out

    def test_multi_arch_findings_are_deduped(self, capsys):
        assert main(["lint", "--arch", "milan", "--workloads", "cg"]) == 0
        single = capsys.readouterr().out
        assert (
            main(["lint", "--arch", "milan", "skylake", "--workloads", "cg"])
            == 0
        )
        multi = capsys.readouterr().out
        # cg's program-spec findings are machine-independent; a second
        # arch must not repeat them.
        assert single.count("PRG006") == multi.count("PRG006")


class TestEnvPlane:
    def test_clean_environment_exits_zero(self, capsys):
        assert main(["lint", "--env", "OMP_NUM_THREADS=48"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_finding_environment_exits_one(self, capsys):
        assert main(["lint", "--env", "OMP_PLACES=cores"]) == 1
        out = capsys.readouterr().out
        assert "ENV002" in out and "OMP_PROC_BIND" in out

    def test_env_respects_arch(self, capsys):
        rc = main(["lint", "--arch", "a64fx", "--env",
                   "KMP_ALIGN_ALLOC=64"])
        assert rc == 1
        assert "ENV006" in capsys.readouterr().out

    def test_bad_env_syntax_exits_two(self, capsys):
        assert main(["lint", "--env", "OMP_NUM_THREADS"]) == 2
        assert "VAR=VALUE" in capsys.readouterr().err

    def test_unknown_variable_exits_two(self, capsys):
        assert main(["lint", "--env", "OMP_BOGUS=1"]) == 2
        assert "OMP_BOGUS" in capsys.readouterr().err

    def test_invalid_value_exits_two(self, capsys):
        assert main(["lint", "--env", "KMP_ALIGN_ALLOC=100"]) == 2
        assert "power of two" in capsys.readouterr().err


class TestStatsAndReport:
    def test_stats_prints_reduction_lines(self, capsys):
        assert main(["lint", "--arch", "milan", "--stats",
                     "--scale", "small"]) == 0
        out = capsys.readouterr().out
        assert "milan" in out and "classes" in out and "x," in out

    def test_report_artifact_shape(self, tmp_path, capsys):
        report = tmp_path / "lint.json"
        rc = main(["lint", "--self", "--arch", "milan", "--stats",
                   "--scale", "small", "--report", str(report)])
        assert rc == 0
        payload = json.loads(report.read_text(encoding="utf-8"))
        assert payload["n_unwaived_failures"] == 0
        assert "self" in payload["planes"]
        assert "manifests:milan" in payload["planes"]
        (stats,) = payload["prune_stats"]
        assert stats["arch"] == "milan" and stats["reduction"] > 1.0
        for f in payload["findings"]:
            assert {"rule", "severity", "subject", "message"} <= f.keys()

    def test_default_invocation_runs_all_planes(self, tmp_path, capsys):
        # Bare `repro-omp lint` = what the CI job relies on: self plane
        # plus every arch's manifests.
        report = tmp_path / "all.json"
        assert main(["lint", "--report", str(report)]) == 0
        payload = json.loads(report.read_text(encoding="utf-8"))
        assert set(payload["planes"]) == {
            "self", "manifests:a64fx", "manifests:skylake", "manifests:milan",
        }
