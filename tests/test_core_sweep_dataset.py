"""Tests for sweep orchestration and dataset construction."""

import numpy as np
import pytest

from repro.core.dataset import (
    aggregate_runs,
    enrich_with_speedup,
    records_to_table,
    runtime_stats_by_run,
    speedup_summary,
    validate_dataset,
)
from repro.core.envspace import EnvSpace
from repro.core.labeling import OPTIMAL_THRESHOLD, label_optimal, optimal_fraction
from repro.core.sweep import SweepPlan, SweepRecord, run_sweep
from repro.errors import ConfigError, DatasetError, SchemaError
from repro.frame.table import Table
from repro.runtime.icv import EnvConfig


class TestSweepExecution:
    def test_records_shape(self, milan_small_sweep):
        res = milan_small_sweep
        space = EnvSpace()
        from repro.arch.machines import MILAN

        n_configs = len(space.grid(MILAN, "small"))
        # xsbench: 4 thread settings; cg: 4 inputs; nqueens: 3 inputs.
        assert res.n_samples == n_configs * (4 + 4 + 3)
        assert res.n_measurements == res.n_samples * 3
        assert set(res.apps()) == {"xsbench", "cg", "nqueens"}

    def test_deterministic_rerun(self, milan_small_sweep):
        plan = milan_small_sweep.plan
        again = run_sweep(plan)
        assert [r.runtimes for r in again.records] == [
            r.runtimes for r in milan_small_sweep.records
        ]

    def test_order_independence_of_measurements(self):
        """The batching-preserves-relative-performance property: results
        keyed by identity, not execution order."""
        a = run_sweep(
            SweepPlan(arch="skylake", workload_names=("alignment",),
                      scale="small", repetitions=2, inputs_limit=1)
        )
        b = run_sweep(
            SweepPlan(arch="skylake", workload_names=("alignment", "ep"),
                      scale="small", repetitions=2, inputs_limit=1)
        )
        a_map = {(r.app, r.input_size, r.config.key()): r.runtimes
                 for r in a.records}
        b_map = {(r.app, r.input_size, r.config.key()): r.runtimes
                 for r in b.records}
        for key, runtimes in a_map.items():
            assert b_map[key] == runtimes

    def test_parallel_matches_serial(self):
        plan = SweepPlan(arch="a64fx", workload_names=("sort",),
                         scale="small", repetitions=2, inputs_limit=2)
        serial = run_sweep(plan, n_processes=1)
        parallel = run_sweep(plan, n_processes=2)
        assert [r.runtimes for r in serial.records] == [
            r.runtimes for r in parallel.records
        ]

    def test_workload_not_on_arch_rejected(self):
        with pytest.raises(ConfigError):
            run_sweep(SweepPlan(arch="milan", workload_names=("sort",)))

    def test_zero_repetitions_rejected(self):
        with pytest.raises(ConfigError):
            SweepPlan(arch="milan", repetitions=0)

    def test_runtimes_positive(self, milan_small_sweep):
        for r in milan_small_sweep.records:
            assert all(t > 0 for t in r.runtimes)


class TestDataset:
    def test_table_schema(self, milan_small_sweep):
        table = records_to_table(milan_small_sweep.records)
        for col in (
            "arch", "app", "suite", "input_size", "num_threads", "places",
            "proc_bind", "schedule", "library", "blocktime",
            "force_reduction", "align_alloc", "runtime_0", "runtime_1",
            "runtime_2",
        ):
            assert col in table, col

    def test_empty_records_rejected(self):
        with pytest.raises(DatasetError):
            records_to_table([])

    def test_inconsistent_repetitions_rejected(self):
        base = dict(arch="milan", app="x", suite="s", input_size="a",
                    num_threads=4, config=EnvConfig())
        records = [
            SweepRecord(**base, runtimes=(1.0, 2.0)),
            SweepRecord(**base, runtimes=(1.0,)),
        ]
        with pytest.raises(DatasetError):
            records_to_table(records)

    def test_aggregate_runs_mean(self, milan_small_sweep):
        table = aggregate_runs(records_to_table(milan_small_sweep.records))
        r0 = np.asarray(table["runtime_0"], float)
        r1 = np.asarray(table["runtime_1"], float)
        r2 = np.asarray(table["runtime_2"], float)
        assert np.allclose(table["runtime_mean"], (r0 + r1 + r2) / 3)

    def test_speedup_of_default_row_is_one(self, milan_dataset):
        t = milan_dataset
        mask = np.ones(t.num_rows, dtype=bool)
        for col in ("places", "proc_bind", "schedule", "library",
                    "blocktime", "force_reduction"):
            mask &= np.asarray([v == "unset" for v in t[col]])
        mask &= np.asarray(t["align_alloc"], int) == 0
        mask &= np.asarray(t["num_threads"], int) == 96
        defaults = t.filter(mask)
        assert defaults.num_rows > 0
        assert np.allclose(np.asarray(defaults["speedup"], float), 1.0)

    def test_speedup_positive(self, milan_dataset):
        assert (np.asarray(milan_dataset["speedup"], float) > 0).all()

    def test_missing_default_rejected(self):
        rec = SweepRecord(
            arch="milan", app="x", suite="s", input_size="a", num_threads=4,
            config=EnvConfig(schedule="dynamic"), runtimes=(1.0,),
        )
        with pytest.raises(DatasetError):
            enrich_with_speedup(records_to_table([rec]))

    def test_speedup_summary(self, milan_dataset):
        summary = speedup_summary(milan_dataset, by=("app",))
        assert set(summary.unique("app")) == {"xsbench", "cg", "nqueens"}
        assert (np.asarray(summary["max_speedup"], float) >= 1.0).all()

    def test_speedup_summary_missing_column(self):
        with pytest.raises(SchemaError):
            speedup_summary(Table({"app": ["x"]}))

    def test_runtime_stats_by_run(self, milan_dataset):
        stats = runtime_stats_by_run(milan_dataset)
        assert set(stats.unique("runtime_idx")) == {
            "runtime_0", "runtime_1", "runtime_2",
        }
        assert (np.asarray(stats["mean_sec"], float) > 0).all()
        # Milan's run 0 is the warm-up run: slower on average.
        for (arch, app, inp), sub in stats.group_by(["arch", "app", "input_size"]):
            by_idx = dict(zip(sub["runtime_idx"], sub["mean_sec"]))
            assert by_idx["runtime_0"] > by_idx["runtime_1"]


class TestLabeling:
    def test_label_threshold(self, milan_dataset):
        t = milan_dataset
        speedup = np.asarray(t["speedup"], float)
        optimal = np.asarray(t["optimal"], int)
        assert ((speedup > OPTIMAL_THRESHOLD) == (optimal == 1)).all()

    def test_label_requires_speedup(self):
        with pytest.raises(SchemaError):
            label_optimal(Table({"app": ["x"]}))

    def test_custom_threshold(self, milan_dataset):
        strict = label_optimal(milan_dataset, threshold=2.0)
        lax = label_optimal(milan_dataset, threshold=1.001)
        assert (
            np.asarray(strict["optimal"], int).sum()
            < np.asarray(lax["optimal"], int).sum()
        )

    def test_optimal_fraction_between_zero_and_one(self, milan_dataset):
        f = optimal_fraction(milan_dataset)
        assert 0.0 < f < 1.0


class TestValidateDataset:
    """Failure injection: corrupted datasets are rejected with precise
    diagnostics instead of silently poisoning the analysis."""

    def test_clean_dataset_passes(self, milan_dataset):
        assert validate_dataset(milan_dataset) is milan_dataset

    @pytest.mark.parametrize("bad_value", [float("nan"), float("inf"), -1.0, 0.0])
    def test_corrupted_runtime_rejected(self, milan_dataset, bad_value):
        runtimes = np.asarray(milan_dataset["runtime_0"], float).copy()
        runtimes[7] = bad_value
        corrupted = milan_dataset.with_column("runtime_0", runtimes)
        with pytest.raises(DatasetError, match="runtime_0.*row 7"):
            validate_dataset(corrupted)

    def test_corrupted_speedup_rejected(self, milan_dataset):
        speedups = np.asarray(milan_dataset["speedup"], float).copy()
        speedups[0] = float("nan")
        corrupted = milan_dataset.with_column("speedup", speedups)
        with pytest.raises(DatasetError):
            validate_dataset(corrupted)

    def test_missing_columns_rejected(self):
        with pytest.raises(SchemaError):
            validate_dataset(Table({"arch": ["m"]}))

    def test_no_runtime_columns_rejected(self, milan_dataset):
        stripped = milan_dataset.without_columns(
            [c for c in milan_dataset.column_names
             if c.startswith("runtime_") and c != "runtime_mean"]
        )
        with pytest.raises(DatasetError):
            validate_dataset(stripped)

    def test_cli_analyze_rejects_corrupt_csv(self, milan_dataset, tmp_path,
                                             capsys):
        from repro.cli import main
        from repro.frame.io import write_csv

        runtimes = np.asarray(milan_dataset["runtime_0"], float).copy()
        runtimes[3] = -5.0
        corrupted = milan_dataset.with_column("runtime_0", runtimes)
        path = tmp_path / "bad.csv"
        write_csv(corrupted, path)
        rc = main(["analyze", str(path)])
        assert rc == 2
        assert "invalid value" in capsys.readouterr().err
