"""Happens-before pass: vector clocks, edge construction, and tie-break
race detection — including the injected order-dependent handler the
sanitizer must catch and the HB-clean cases it must not flag."""

import pytest

from repro.sanitize.hb import (
    HappensBeforeTracker,
    StateAccess,
    _concurrent,
    _leq,
)
from repro.sanitize.scenarios import (
    LOOP_SPECS,
    loop_record,
    reduction_record,
)

pytestmark = pytest.mark.sanitize


class TestVectorClocks:
    def test_leq_reflexive_and_monotone(self):
        a = {"p": 1, "q": 2}
        assert _leq(a, a)
        assert _leq(a, {"p": 1, "q": 3})
        assert not _leq({"p": 2}, {"p": 1})

    def test_missing_component_counts_as_zero(self):
        assert _leq({}, {"p": 5})
        assert not _leq({"p": 1}, {})

    def test_concurrent_is_symmetric_incomparability(self):
        a, b = {"p": 1}, {"q": 1}
        assert _concurrent(a, b) and _concurrent(b, a)
        assert not _concurrent(a, {"p": 1, "q": 9})


class TestCleanScenarios:
    @pytest.mark.parametrize("spec", LOOP_SPECS, ids=lambda s: s.name)
    def test_loop_paths_race_free(self, spec):
        tracker = HappensBeforeTracker()
        loop_record(spec, observer=tracker)
        assert tracker.races() == []
        assert tracker.findings() == []

    def test_dynamic_loop_builds_lock_and_spawn_edges(self):
        tracker = HappensBeforeTracker()
        loop_record(LOOP_SPECS[1], observer=tracker)
        assert tracker.edge_counts["spawn"] == LOOP_SPECS[1].n_workers
        # Every chunk grab after the first joins the previous release.
        assert tracker.edge_counts["lock"] > 0
        assert tracker.accesses, "dynamic path must record state accesses"

    def test_reduction_slots_race_free_with_barrier_edges(self):
        tracker = HappensBeforeTracker()
        reduction_record(observer=tracker)
        assert tracker.races() == []
        assert tracker.edge_counts["barrier"] > 0

    def test_stats_shape(self):
        tracker = HappensBeforeTracker()
        loop_record(LOOP_SPECS[1], observer=tracker)
        stats = tracker.stats()
        assert stats["n_accesses"] == len(tracker.accesses)
        assert stats["n_actors"] > LOOP_SPECS[1].n_workers - 1
        assert set(stats["edges"]) == {"spawn", "wake", "lock", "barrier"}


class TestInjectedRace:
    """Fault-injection coverage: the deliberately order-dependent handler
    (an unlocked same-timestamp write from every worker prologue) must be
    flagged by the HB pass."""

    @pytest.mark.parametrize("spec", LOOP_SPECS[:2], ids=lambda s: s.name)
    def test_injected_write_is_caught(self, spec):
        tracker = HappensBeforeTracker()
        loop_record(spec, observer=tracker, inject_tie_race=True)
        races = tracker.races()
        assert races, "injected tie race went undetected"
        assert {r.obj for r in races} == {"race_cell"}
        race = races[0]
        assert race.first.actor != race.second.actor
        assert "write" in (race.first.op, race.second.op)

    def test_race_findings_are_errors_with_fixit(self):
        tracker = HappensBeforeTracker()
        loop_record(LOOP_SPECS[1], observer=tracker, inject_tie_race=True)
        findings = tracker.findings(context="loop-dynamic-injected")
        assert findings
        for f in findings:
            assert f.rule == "RACE100"
            assert f.severity.value == "error"
            assert "loop-dynamic-injected" in f.message
            assert f.fixit

    def test_one_race_per_object_actor_pair(self):
        # The injected write repeats at t=0 for every worker pair; the
        # report dedupes to one race per ordered pair, not one per step.
        tracker = HappensBeforeTracker()
        loop_record(LOOP_SPECS[1], observer=tracker, inject_tie_race=True)
        races = tracker.races()
        pairs = {(r.first.actor, r.second.actor) for r in races}
        assert len(races) == len(pairs)


class TestComplementarity:
    def test_arrival_order_reduction_is_hb_clean(self):
        # Every accumulator access is lock-ordered, so the HB pass finds
        # no race — yet the fuzzer diverges on it (see test_sanitize_fuzz).
        # This pair of tests is the proof the two passes are complementary.
        tracker = HappensBeforeTracker()
        reduction_record(observer=tracker, arrival_order=True)
        assert tracker.races() == []
        assert any(a.obj == "accumulator" for a in tracker.accesses)


class TestStateAccess:
    def test_describe_prefers_label(self):
        acc = StateAccess(0, 1.0, "worker3", "cursor", "write", "grab [0, 4)")
        assert acc.describe() == "grab [0, 4) (write)"
        bare = StateAccess(0, 1.0, "worker3", "cursor", "read", "")
        assert bare.describe() == "worker3 (read)"
