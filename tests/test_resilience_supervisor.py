"""Tests for the supervised worker pool (deadlines, respawn, retry).

Runs under the ``chaos`` marker: every test here injects a worker-level
fault (crash, hang, exception, corrupt payload) and asserts the
supervisor's recovery behavior.
"""

import os
import time

import pytest

from repro.errors import PoisonBatchError, ResilienceError
from repro.resilience import FailureLedger, RetryPolicy, Supervisor
from repro.resilience.supervisor import SupervisedTask

pytestmark = pytest.mark.chaos

#: Fast retry policy so fault tests stay sub-second per retry round.
FAST = RetryPolicy(max_retries=2, base_delay_s=0.01, max_delay_s=0.05,
                   seed=0)


def _work(payload, attempt):
    """Picklable worker body driven by its payload: (index, mode)."""
    index, mode = payload
    if mode == "crash" and attempt == 0:
        os._exit(7)
    if mode == "hang" and attempt == 0:
        time.sleep(60.0)
    if mode == "error" and attempt == 0:
        raise ValueError("injected failure")
    if mode == "always-bad":
        time.sleep(0.2)  # let healthy siblings land first
        return None
    return f"done-{index}"


def _validate(value):
    return None if isinstance(value, str) else "not a string"


def _tasks(modes, timeout_s=10.0):
    return [
        SupervisedTask(task_id=i, index=i, payload=(i, mode),
                       timeout_s=timeout_s)
        for i, mode in enumerate(modes)
    ]


def _run(modes, timeout_s=10.0, **kwargs):
    kwargs.setdefault("policy", FAST)
    supervisor = Supervisor(_work, n_workers=2, **kwargs)
    outcomes = list(supervisor.stream(_tasks(modes, timeout_s)))
    return supervisor, outcomes


class TestHappyPath:
    def test_results_stream_in_task_order(self):
        supervisor, outcomes = _run(["ok"] * 6)
        assert outcomes == [f"done-{i}" for i in range(6)]
        assert supervisor.worker_respawns == 0
        assert supervisor.ledger.build_report().clean

    def test_non_contiguous_task_ids_rejected(self):
        supervisor = Supervisor(_work, n_workers=1, policy=FAST)
        bad = [SupervisedTask(task_id=5, index=0, payload=(0, "ok"),
                              timeout_s=1.0)]
        with pytest.raises(ResilienceError):
            list(supervisor.stream(bad))


class TestFaultRecovery:
    def test_crash_is_retried_on_a_fresh_worker(self):
        supervisor, outcomes = _run(["crash", "ok"])
        assert outcomes == ["done-0", "done-1"]
        assert supervisor.worker_respawns >= 1
        report = supervisor.ledger.build_report()
        assert report.batches[0].attempts[0].kind == "crash"
        assert report.batches[0].recovered

    def test_hang_blows_deadline_and_recovers(self):
        supervisor, outcomes = _run(["hang", "ok"], timeout_s=0.5)
        assert outcomes == ["done-0", "done-1"]
        report = supervisor.ledger.build_report()
        assert report.batches[0].attempts[0].kind == "timeout"
        assert report.batches[0].recovered

    def test_worker_exception_recorded_and_retried(self):
        supervisor, outcomes = _run(["error", "ok"])
        assert outcomes == ["done-0", "done-1"]
        attempt = supervisor.ledger.build_report().batches[0].attempts[0]
        assert attempt.kind == "error"
        assert "injected failure" in attempt.cause

    def test_corrupt_payload_caught_by_validation(self):
        supervisor, outcomes = _run(["ok", "ok"], validate=_validate)
        assert outcomes == ["done-0", "done-1"]
        # Now one batch that always returns garbage: every attempt is a
        # corrupt-result failure, so the batch must be quarantined.
        supervisor, outcomes = _run(["always-bad", "ok"],
                                    validate=_validate)
        assert outcomes == [None, "done-1"]
        failure = supervisor.ledger.build_report().batches[0]
        assert failure.quarantined
        assert {a.kind for a in failure.attempts} == {"corrupt-result"}


class TestPoisonHandling:
    def test_degrade_yields_none_for_poison(self):
        supervisor, outcomes = _run(["always-bad", "ok", "ok"],
                                    validate=_validate, fail_fast=False)
        assert outcomes == [None, "done-1", "done-2"]
        report = supervisor.ledger.build_report()
        assert report.n_quarantined == 1
        # Retry budget: 1 + max_retries attempts, all failed.
        assert len(report.batches[0].attempts) == 1 + FAST.max_retries

    def test_fail_fast_raises_poison_batch_error(self):
        supervisor = Supervisor(_work, n_workers=2, policy=FAST,
                                validate=_validate, fail_fast=True)
        with pytest.raises(PoisonBatchError):
            list(supervisor.stream(_tasks(["always-bad", "ok"])))

    def test_completed_results_survive_fail_fast(self):
        """Work that landed before the poison verdict stays retrievable,
        so an interrupted sweep can flush it to its cache."""
        supervisor = Supervisor(_work, n_workers=2, policy=FAST,
                                validate=_validate, fail_fast=True)
        with pytest.raises(PoisonBatchError):
            list(supervisor.stream(_tasks(["always-bad", "ok"])))
        landed = dict(supervisor.completed_unyielded())
        assert landed.get(1) == "done-1"


class TestRespawnBudget:
    def test_crash_loop_exhausts_budget(self):
        supervisor = Supervisor(_work, n_workers=1, policy=FAST,
                                max_worker_respawns=0)
        with pytest.raises(ResilienceError, match="respawn budget"):
            list(supervisor.stream(_tasks(["crash"])))


class TestLedgerSharing:
    def test_external_ledger_is_used(self):
        ledger = FailureLedger(FAST, "degrade")
        supervisor = Supervisor(_work, n_workers=2, policy=FAST)
        outcomes = list(supervisor.stream(_tasks(["error", "ok"]),
                                          ledger=ledger))
        assert outcomes == ["done-0", "done-1"]
        assert supervisor.ledger is ledger
        assert ledger.build_report().n_failed_batches == 1

    def test_close_is_idempotent(self):
        supervisor, _ = _run(["ok"])
        supervisor.close()
        supervisor.close()
