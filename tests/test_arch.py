"""Tests for machine topologies, the Table I registry and noise models."""

import numpy as np
import pytest

from repro.arch.machines import (
    A64FX,
    ALL_MACHINES,
    MILAN,
    SKYLAKE,
    get_machine,
    hardware_table,
    machine_names,
)
from repro.arch.noise import NOISE_MODELS, NoiseModel, get_noise_model, sample_seed
from repro.arch.topology import MachineTopology, PlaceKind
from repro.errors import ReproError, TopologyError, UnknownMachine


class TestTableI:
    """The hardware facts of the paper's Table I."""

    def test_a64fx(self):
        assert A64FX.n_cores == 48
        assert A64FX.n_numa == 4
        assert A64FX.clock_ghz == 1.8
        assert A64FX.mem_type == "HBM"
        assert A64FX.mem_capacity_gb == 32
        assert A64FX.cache_line_bytes == 256

    def test_skylake(self):
        assert SKYLAKE.n_cores == 40
        assert SKYLAKE.n_sockets == 2
        assert SKYLAKE.n_numa == 2
        assert SKYLAKE.clock_ghz == 2.4
        assert SKYLAKE.mem_type == "DDR4"
        assert SKYLAKE.cache_line_bytes == 64

    def test_milan(self):
        assert MILAN.n_cores == 96
        assert MILAN.n_sockets == 2
        assert MILAN.n_numa == 8
        assert MILAN.clock_ghz == 2.3
        assert MILAN.mem_capacity_gb == 251

    def test_registry(self):
        assert set(machine_names()) == {"a64fx", "skylake", "milan"}
        assert get_machine("MILAN") is MILAN
        with pytest.raises(UnknownMachine):
            get_machine("graviton")

    def test_hardware_table_rows(self):
        rows = hardware_table()
        assert len(rows) == 3
        assert {r["architecture"] for r in rows} == set(ALL_MACHINES)


class TestTopologyDerived:
    def test_cores_per_group(self):
        assert MILAN.cores_per_numa == 12
        assert MILAN.cores_per_socket == 48
        assert SKYLAKE.cores_per_numa == 20
        assert A64FX.cores_per_numa == 12

    def test_core_ownership(self):
        assert MILAN.numa_of_core(0) == 0
        assert MILAN.numa_of_core(95) == 7
        assert MILAN.socket_of_core(47) == 0
        assert MILAN.socket_of_core(48) == 1
        assert MILAN.llc_of_core(15) == 1

    def test_core_out_of_range(self):
        with pytest.raises(TopologyError):
            MILAN.numa_of_core(96)

    def test_numa_distance_properties(self):
        d = MILAN.numa_distance_matrix()
        assert d.shape == (8, 8)
        assert np.allclose(np.diag(d), 1.0)
        assert np.allclose(d, d.T)
        # Cross-socket strictly worse than same-socket.
        assert MILAN.numa_distance(0, 7) > MILAN.numa_distance(0, 1)

    def test_mean_numa_distance_ordering(self):
        # Milan's many small domains give the largest average distance.
        assert MILAN.mean_numa_distance() > SKYLAKE.mean_numa_distance()
        assert MILAN.mean_numa_distance() > A64FX.mean_numa_distance()

    def test_total_bandwidth(self):
        assert A64FX.total_mem_bw_gbps == pytest.approx(1024.0)
        assert MILAN.total_mem_bw_gbps == pytest.approx(204.8)


class TestPlaces:
    def test_unset_is_whole_machine(self):
        places = MILAN.places(PlaceKind.UNSET)
        assert len(places) == 1
        assert places[0].width == 96

    def test_cores(self):
        places = SKYLAKE.places("cores")
        assert len(places) == 40
        assert all(p.width == 1 for p in places)

    def test_sockets(self):
        places = MILAN.places(PlaceKind.SOCKETS)
        assert len(places) == 2
        assert places[1].cores[0] == 48

    def test_ll_caches(self):
        assert len(MILAN.places(PlaceKind.LL_CACHES)) == 12
        assert len(SKYLAKE.places(PlaceKind.LL_CACHES)) == 2
        assert len(A64FX.places(PlaceKind.LL_CACHES)) == 4

    def test_numa_domains(self):
        assert len(MILAN.places(PlaceKind.NUMA_DOMAINS)) == 8

    def test_places_partition_all_cores(self):
        for kind in PlaceKind:
            cores = [c for p in MILAN.places(kind) for c in p.cores]
            assert sorted(cores) == list(range(96))

    def test_invalid_topology_rejected(self):
        with pytest.raises(TopologyError):
            MachineTopology(
                name="bad",
                n_cores=10,
                n_sockets=1,
                n_numa=3,  # 10 not divisible by 3
                cores_per_llc=5,
                clock_ghz=1.0,
                cache_line_bytes=64,
                mem_type="DDR4",
                mem_capacity_gb=1,
                mem_bw_per_numa_gbps=10.0,
            )


class TestNoise:
    def test_registered_models(self):
        assert set(NOISE_MODELS) == {"a64fx", "milan", "skylake"}

    def test_unknown_arch_gets_generic(self):
        m = get_noise_model("riscv")
        assert m.sigma > 0

    def test_a64fx_stationary(self):
        m = get_noise_model("a64fx")
        assert all(d == 1.0 for d in m.drift)

    def test_milan_first_run_slow(self):
        m = get_noise_model("milan")
        assert m.drift_factor(0) > 1.1
        assert m.drift_factor(0) > m.drift_factor(1)

    def test_drift_extends_last_value(self):
        m = NoiseModel(arch="x", sigma=0.0, drift=(1.0, 1.1))
        assert m.drift_factor(10) == 1.1

    def test_apply_deterministic(self):
        m = get_noise_model("milan")
        a = m.apply(1.0, run_index=1, seed=42)
        b = m.apply(1.0, run_index=1, seed=42)
        assert a == b

    def test_apply_varies_with_seed_and_run(self):
        m = get_noise_model("milan")
        assert m.apply(1.0, 1, 1) != m.apply(1.0, 1, 2)
        assert m.apply(1.0, 1, 1) != m.apply(1.0, 2, 1)

    def test_zero_sigma_pure_drift(self):
        m = NoiseModel(arch="x", sigma=0.0, drift=(1.5,))
        assert m.apply(2.0, 0, 0) == pytest.approx(3.0)

    def test_invalid_models_rejected(self):
        with pytest.raises(ReproError):
            NoiseModel(arch="x", sigma=-0.1, drift=(1.0,))
        with pytest.raises(ReproError):
            NoiseModel(arch="x", sigma=0.1, drift=())
        with pytest.raises(ReproError):
            NoiseModel(arch="x", sigma=0.1, drift=(0.0,))

    def test_apply_validates_inputs(self):
        m = get_noise_model("a64fx")
        with pytest.raises(ReproError):
            m.apply(-1.0, 0, 0)
        with pytest.raises(ReproError):
            m.drift_factor(-1)


class TestSampleSeed:
    def test_stable_across_calls(self):
        assert sample_seed("a", 1, (2, 3)) == sample_seed("a", 1, (2, 3))

    def test_order_sensitive(self):
        assert sample_seed("a", "b") != sample_seed("b", "a")

    def test_no_concat_ambiguity(self):
        assert sample_seed("ab", "c") != sample_seed("a", "bc")

    def test_64bit_range(self):
        s = sample_seed("anything")
        assert 0 <= s < 2**64
