"""Tests for linear and logistic regression."""

import numpy as np
import pytest

from repro.errors import FitError, NotFittedError
from repro.mlkit.linreg import LinearRegression
from repro.mlkit.logreg import LogisticRegression
from repro.mlkit.metrics import log_loss


class TestLinearRegression:
    def test_exact_recovery(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 3))
        true_w = np.array([2.0, -1.0, 0.5])
        y = X @ true_w + 3.0
        model = LinearRegression().fit(X, y)
        assert np.allclose(model.coef_, true_w, atol=1e-10)
        assert model.intercept_ == pytest.approx(3.0)
        assert model.score(X, y) == pytest.approx(1.0)

    def test_matches_normal_equations_with_noise(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(200, 4))
        y = X @ np.array([1.0, 0.0, -2.0, 0.3]) + rng.normal(scale=0.1, size=200)
        model = LinearRegression().fit(X, y)
        Xa = np.hstack([X, np.ones((200, 1))])
        beta = np.linalg.solve(Xa.T @ Xa, Xa.T @ y)
        assert np.allclose(model.coef_, beta[:-1], atol=1e-8)
        assert model.intercept_ == pytest.approx(beta[-1], abs=1e-8)

    def test_no_intercept(self):
        X = np.array([[1.0], [2.0], [3.0]])
        y = np.array([2.0, 4.0, 6.0])
        model = LinearRegression(fit_intercept=False).fit(X, y)
        assert model.coef_[0] == pytest.approx(2.0)
        assert model.intercept_ == 0.0

    def test_ridge_shrinks(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(50, 2))
        y = X @ np.array([5.0, -5.0])
        free = LinearRegression().fit(X, y)
        ridge = LinearRegression(l2=100.0).fit(X, y)
        assert np.linalg.norm(ridge.coef_) < np.linalg.norm(free.coef_)

    def test_rank_deficient_design(self):
        X = np.column_stack([np.arange(10.0), np.arange(10.0)])  # collinear
        y = np.arange(10.0)
        model = LinearRegression().fit(X, y)
        assert np.isfinite(model.coef_).all()
        assert model.score(X, y) == pytest.approx(1.0)

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            LinearRegression().predict(np.ones((2, 2)))

    def test_bad_shapes(self):
        with pytest.raises(FitError):
            LinearRegression().fit(np.ones(5), np.ones(5))
        with pytest.raises(FitError):
            LinearRegression().fit(np.ones((5, 2)), np.ones(4))

    def test_negative_l2_rejected(self):
        with pytest.raises(FitError):
            LinearRegression(l2=-1.0)


def _separable_data(n=300, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 2))
    logits = 2.5 * X[:, 0] - 1.5 * X[:, 1] + 0.4
    y = (logits + rng.logistic(size=n) > 0).astype(float)
    return X, y


class TestLogisticRegression:
    def test_accuracy_on_learnable_problem(self):
        X, y = _separable_data()
        model = LogisticRegression(l2=1e-3).fit(X, y)
        assert model.score(X, y) > 0.82
        assert model.converged_

    def test_newton_and_gd_agree(self):
        X, y = _separable_data(seed=3)
        newton = LogisticRegression(l2=1.0, solver="newton").fit(X, y)
        gd = LogisticRegression(l2=1.0, solver="gd", max_iter=5000, tol=1e-9).fit(X, y)
        assert np.allclose(newton.coef_, gd.coef_, atol=1e-3)
        assert newton.intercept_ == pytest.approx(gd.intercept_, abs=1e-3)

    def test_gradient_is_zero_at_optimum(self):
        X, y = _separable_data(seed=4)
        model = LogisticRegression(l2=2.0).fit(X, y)
        n = X.shape[0]
        w = model.coef_
        p = model.predict_proba(X)[:, 1]
        grad = X.T @ (p - y) / n + 2.0 * w / n
        assert np.linalg.norm(grad) < 1e-6

    def test_probabilities_valid(self):
        X, y = _separable_data(seed=5)
        proba = LogisticRegression().fit(X, y).predict_proba(X)
        assert proba.shape == (X.shape[0], 2)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert ((proba >= 0) & (proba <= 1)).all()

    def test_sign_of_coefficients(self):
        X, y = _separable_data(seed=6)
        model = LogisticRegression().fit(X, y)
        assert model.coef_[0] > 0 and model.coef_[1] < 0

    def test_perfectly_separable_regularized(self):
        X = np.array([[-2.0], [-1.0], [1.0], [2.0]])
        y = np.array([0.0, 0.0, 1.0, 1.0])
        model = LogisticRegression(l2=0.5).fit(X, y)
        assert model.score(X, y) == 1.0
        assert np.isfinite(model.coef_).all()

    def test_single_class_degenerate(self):
        X = np.random.default_rng(0).normal(size=(20, 3))
        y = np.ones(20)
        model = LogisticRegression().fit(X, y)
        assert np.allclose(model.coef_, 0.0)
        assert (model.predict(X) == 1).all()

    def test_normalized_importances_sum_to_one(self):
        X, y = _separable_data(seed=7)
        imp = LogisticRegression().fit(X, y).normalized_importances()
        assert imp.sum() == pytest.approx(1.0)
        assert (imp >= 0).all()
        assert imp[0] > imp[1] * 1.2  # feature 0 has the larger true weight

    def test_importances_uniform_for_zero_coef(self):
        X = np.zeros((10, 4))
        y = np.array([0, 1] * 5, dtype=float)
        model = LogisticRegression(l2=10.0).fit(X, y)
        assert np.allclose(model.normalized_importances(), 0.25)

    def test_label_validation(self):
        X = np.ones((4, 1))
        with pytest.raises(FitError):
            LogisticRegression().fit(X, np.array([0.0, 1.0, 2.0, 1.0]))

    def test_unknown_solver(self):
        with pytest.raises(FitError):
            LogisticRegression(solver="adam")

    def test_decision_before_fit(self):
        with pytest.raises(NotFittedError):
            LogisticRegression().decision_function(np.ones((2, 2)))

    def test_lower_log_loss_than_prior(self):
        X, y = _separable_data(seed=8)
        model = LogisticRegression(l2=0.1).fit(X, y)
        prior = np.full_like(y, y.mean())
        assert log_loss(y, model.predict_proba(X)) < log_loss(y, prior)
