"""API-quality meta-tests: every public item is documented and exported
names resolve."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.arch",
    "repro.core",
    "repro.desim",
    "repro.frame",
    "repro.mlkit",
    "repro.runtime",
    "repro.stats",
    "repro.viz",
    "repro.workloads",
]


def _walk_modules():
    """Every module under the repro package."""
    out = []
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        out.append(pkg)
        if hasattr(pkg, "__path__"):
            for info in pkgutil.iter_modules(pkg.__path__):
                out.append(importlib.import_module(f"{pkg_name}.{info.name}"))
    # cli is a plain module
    out.append(importlib.import_module("repro.cli"))
    out.append(importlib.import_module("repro.errors"))
    return {m.__name__: m for m in out}.values()


ALL_MODULES = list(_walk_modules())


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_all_exports_resolve(module):
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module.__name__}.__all__ lists {name}"


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_public_callables_documented(module):
    """Every public function/class (and their public methods) in __all__
    carries a docstring."""
    undocumented = []
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", "").startswith("repro") is False:
            continue
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(f"{module.__name__}.{name}")
        if inspect.isclass(obj):
            for mname, member in vars(obj).items():
                if mname.startswith("_"):
                    continue
                func = member
                if isinstance(member, property):
                    func = member.fget
                elif isinstance(member, (staticmethod, classmethod)):
                    func = member.__func__
                elif not inspect.isfunction(member):
                    continue
                if func is None or not (func.__doc__ and func.__doc__.strip()):
                    undocumented.append(f"{module.__name__}.{name}.{mname}")
    assert not undocumented, undocumented


def test_top_level_all_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_version_string():
    assert repro.__version__.count(".") == 2
