"""Tests for the verification subsystem (``repro.check``).

Runs under the ``check`` marker so ``pytest -m check`` exercises exactly
the machinery behind ``repro-omp check`` — plus fault-injection tests
proving each checker actually *catches* the bug class it guards against
(a checker that cannot fail is not a check).
"""

import json

import pytest

import repro.check.invariants as invariants_mod
from repro.check import (
    CheckResult,
    InvariantObserver,
    bless_golden_traces,
    check_engine_invariants,
    check_loop_iteration_coverage,
    check_no_negative_delay,
    check_schedule_chunk_coverage,
    check_work_stealing_conservation,
    columnar_pipeline_parity,
    differential_parity,
    golden_trace_check,
    pruning_parity,
    relation_blocktime_bracketing,
    relation_cost_scaling,
    relation_default_speedup_unity,
    relation_serial_phase_threads,
    resilience_degrade_parity,
    run_all,
    run_check,
    run_suite,
    sharded_execution_parity,
)
from repro.check.runner import SUITES, format_results, write_report
from repro.cli import main
from repro.desim.stealing import WorkStealingSimulator
from repro.errors import CheckFailure
from repro.runtime.schedule import iterate_chunks

pytestmark = pytest.mark.check


# ----------------------------------------------------------------------
# The run_check harness contract
# ----------------------------------------------------------------------
class TestRunCheckHarness:
    def test_dict_return_passes_with_data(self):
        result = run_check("x", "s", lambda: {"details": "ok", "n": 3})
        assert result.passed and result.details == "ok"
        assert result.data == {"n": 3}
        assert result.suite == "s" and result.duration_s >= 0

    def test_str_and_none_returns_pass(self):
        assert run_check("x", "s", lambda: "fine").details == "fine"
        assert run_check("x", "s", lambda: None).passed

    def test_check_failure_becomes_failing_result(self):
        def body():
            raise CheckFailure("law broken")

        result = run_check("x", "s", body)
        assert not result.passed and "law broken" in result.details

    def test_other_exceptions_propagate(self):
        """A crash is a checker bug, not a finding — it must not be
        swallowed into a tidy FAIL line."""
        def body():
            raise ZeroDivisionError

        with pytest.raises(ZeroDivisionError):
            run_check("x", "s", body)


# ----------------------------------------------------------------------
# Invariant checks pass on the healthy simulator
# ----------------------------------------------------------------------
class TestInvariantChecks:
    def test_engine_invariants(self):
        out = check_engine_invariants()
        assert out["n_scheduled"] > 0 and out["n_advanced"] > 0

    def test_no_negative_delay(self):
        assert "guards active" in check_no_negative_delay()

    def test_loop_iteration_coverage(self):
        out = check_loop_iteration_coverage(n_iters=64)
        assert out["n_cases"] == 8 and out["n_chunks"] > 0

    def test_schedule_chunk_coverage(self):
        assert check_schedule_chunk_coverage()["n_cases"] == 10

    def test_work_stealing_conservation(self):
        assert check_work_stealing_conservation()["n_graphs"] == 3

    def test_observer_flags_injected_violations(self):
        obs = InvariantObserver()
        obs.on_schedule(1.0, -0.5)
        obs.on_advance(2.0)
        obs.on_advance(1.0)
        with pytest.raises(CheckFailure, match="negative delay"):
            obs.assert_clean()
        assert any("backwards" in v for v in obs.violations)

    def test_observer_flags_unbalanced_processes(self):
        obs = InvariantObserver()
        obs.on_process_start(object())
        with pytest.raises(CheckFailure, match="unbalanced"):
            obs.assert_clean()


# ----------------------------------------------------------------------
# Fault injection: each checker catches the bug class it guards against
# ----------------------------------------------------------------------
class TestFaultInjection:
    def test_off_by_one_chunk_bound_is_caught(self, monkeypatch):
        """The acceptance fault: an off-by-one upper chunk bound (every
        chunk loses its last iteration) trips the coverage invariant."""
        def off_by_one(kind, n_iters, nthreads, chunk=None):
            for lo, hi in iterate_chunks(kind, n_iters, nthreads, chunk):
                yield lo, max(lo, hi - 1)

        monkeypatch.setattr(invariants_mod, "iterate_chunks", off_by_one)
        with pytest.raises(CheckFailure, match="never executed"):
            check_schedule_chunk_coverage()

    def test_loopsim_dropped_iterations_are_caught(self, monkeypatch):
        """A chunking bug inside the DES loop simulator (last iteration of
        every chunk silently skipped) trips the loop coverage check."""
        real = invariants_mod.simulate_loop

        def lossy(costs, workers, on_chunk=None, **kwargs):
            def truncated(w, lo, hi, start, duration):
                on_chunk(w, lo, max(lo, hi - 1), start, duration)

            return real(costs, workers,
                        on_chunk=truncated if on_chunk else None, **kwargs)

        monkeypatch.setattr(invariants_mod, "simulate_loop", lossy)
        with pytest.raises(CheckFailure, match="never executed"):
            check_loop_iteration_coverage(n_iters=64)

    def test_lost_task_is_caught(self, monkeypatch):
        """A work-stealing simulator that loses one task trips the task
        conservation check."""
        class LossySim(WorkStealingSimulator):
            def run(self, graph, worker_speeds=None, on_task=None):
                dropped = [False]

                def skipping(w, tid, start, end):
                    if not dropped[0]:
                        dropped[0] = True
                        return
                    on_task(w, tid, start, end)

                return super().run(
                    graph, worker_speeds,
                    on_task=skipping if on_task else None,
                )

        monkeypatch.setattr(invariants_mod, "WorkStealingSimulator",
                            LossySim)
        with pytest.raises(CheckFailure, match="distinct tasks"):
            check_work_stealing_conservation()


# ----------------------------------------------------------------------
# Metamorphic relations hold on the current model
# ----------------------------------------------------------------------
class TestMetamorphicRelations:
    def test_cost_scaling(self):
        out = relation_cost_scaling()
        assert out["n_exact"] > 0 and out["n_bracket"] > 0

    def test_serial_phase_threads(self):
        relation_serial_phase_threads()

    def test_blocktime_bracketing(self):
        relation_blocktime_bracketing()

    def test_default_speedup_unity(self):
        relation_default_speedup_unity()


# ----------------------------------------------------------------------
# Differential parity and golden traces
# ----------------------------------------------------------------------
class TestDifferential:
    def test_quick_parity(self):
        out = differential_parity()
        assert out["n_records"] > 0
        assert out["paths"] == ["cold-cache", "parallel", "warm-cache"]

    def test_repo_fixtures_match(self):
        """The blessed fixtures shipped in tests/golden/ match the model."""
        assert golden_trace_check()["n_cases"] == 4

    def test_bless_then_check_roundtrip(self, tmp_path):
        written = bless_golden_traces(tmp_path)
        assert len(written) == 4
        assert golden_trace_check(golden_dir=tmp_path)["n_events"] > 0

    def test_missing_dir_fails(self, tmp_path):
        with pytest.raises(CheckFailure, match="does not exist"):
            golden_trace_check(golden_dir=tmp_path / "nope")

    def test_missing_fixture_fails(self, tmp_path):
        bless_golden_traces(tmp_path)
        (tmp_path / "milan_cg_default.json").unlink()
        with pytest.raises(CheckFailure, match="missing"):
            golden_trace_check(golden_dir=tmp_path)

    def test_numeric_drift_fails(self, tmp_path):
        bless_golden_traces(tmp_path)
        path = tmp_path / "milan_cg_default.json"
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["events"][0]["duration_s"] *= 1.0 + 1e-6
        path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(CheckFailure, match="drifted"):
            golden_trace_check(golden_dir=tmp_path)

    def test_torn_fixture_fails(self, tmp_path):
        bless_golden_traces(tmp_path)
        (tmp_path / "milan_cg_default.json").write_text("{ torn",
                                                        encoding="utf-8")
        with pytest.raises(CheckFailure, match="unreadable"):
            golden_trace_check(golden_dir=tmp_path)


class TestPruningParity:
    def test_quick_pruning_parity(self):
        out = pruning_parity()
        assert out["n_records"] > 0
        assert out["n_pruned"] > 0  # the check must not be vacuous
        assert out["n_simulated"] + out["n_pruned"] == out["n_records"]

    def test_registered_in_differential_suite(self):
        assert "equivalence-pruning-parity" in dict(SUITES["differential"])

    def test_coarse_signature_is_caught(self, monkeypatch):
        """The acceptance fault: if an execution-relevant ICV (here the
        loop schedule) leaks out of the signature, pruning merges configs
        that behave differently — parity must fail."""
        from repro.runtime.icv import ResolvedICVs

        real = ResolvedICVs.execution_signature

        def coarse(self):
            full = real(self)
            return full[:3] + full[5:]  # drop schedule + chunk

        monkeypatch.setattr(ResolvedICVs, "execution_signature", coarse)
        with pytest.raises(CheckFailure, match="diverged"):
            pruning_parity()

    def test_vacuous_grid_is_caught(self, monkeypatch):
        """A signature so fine it never merges anything (raw config key
        mixed in) makes the check meaningless — it must say so rather
        than 'pass'."""
        from repro.runtime.icv import ResolvedICVs

        real = ResolvedICVs.execution_signature
        counter = iter(range(10**9))

        def unique(self):
            return real(self) + (next(counter),)

        monkeypatch.setattr(ResolvedICVs, "execution_signature", unique)
        with pytest.raises(CheckFailure, match="vacuous"):
            pruning_parity()


# ----------------------------------------------------------------------
# Suite runner and reporting
# ----------------------------------------------------------------------
class TestRunner:
    def test_unknown_suite_raises(self):
        with pytest.raises(CheckFailure, match="unknown check suite"):
            run_suite("bogus")

    def test_invariants_suite_all_pass(self):
        results = run_suite("invariants")
        assert len(results) == len(SUITES["invariants"])
        assert all(r.passed for r in results)
        assert [r.suite for r in results] == ["invariants"] * len(results)

    def test_run_all_selected_suites_in_order(self):
        results = run_all(suites=("invariants", "metamorphic"))
        suites_seen = [r.suite for r in results]
        n_inv = len(SUITES["invariants"])
        assert suites_seen[:n_inv] == ["invariants"] * n_inv
        assert set(suites_seen[n_inv:]) == {"metamorphic"}
        assert all(r.passed for r in results)

    def test_format_results_renders_verdict(self):
        results = [
            CheckResult("a", True, suite="s1", duration_s=0.001),
            CheckResult("b", False, details="boom", suite="s2"),
        ]
        text = format_results(results)
        assert "[s1]" in text and "[s2]" in text
        assert "PASS" in text and "FAIL" in text and "boom" in text
        assert "1/2 checks FAILED" in text

    def test_write_report(self, tmp_path):
        results = run_suite("invariants")
        out = tmp_path / "sub" / "report.json"
        write_report(results, out)
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["n_checks"] == len(results)
        assert payload["n_failed"] == 0
        assert {c["name"] for c in payload["checks"]} == {
            name for name, _ in SUITES["invariants"]
        }


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestCheckCLI:
    def test_check_suite_exit_zero(self, capsys, tmp_path):
        report = tmp_path / "report.json"
        code = main(["check", "--suite", "invariants", "--quick",
                     "--report", str(report)])
        out = capsys.readouterr().out
        assert code == 0
        assert "checks passed" in out
        assert json.loads(report.read_text())["n_failed"] == 0

    def test_bless_writes_fixtures(self, capsys, tmp_path):
        code = main(["check", "--bless", "--golden-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert len(list(tmp_path.glob("*.json"))) == 4
        assert "blessed" in out


# ----------------------------------------------------------------------
# Columnar record pipeline parity
# ----------------------------------------------------------------------
class TestColumnarPipelineParity:
    def test_registered_in_differential_suite(self):
        assert "columnar-pipeline-parity" in [
            name for name, _ in SUITES["differential"]
        ]

    def test_quick_columnar_parity(self):
        out = columnar_pipeline_parity()
        assert "bit-identical" in out["details"]
        assert out["n_records"] > 0 and out["n_groups"] > 0
        assert out["block_nbytes"] > 0

    @pytest.mark.parametrize("backend", ["pool", "nodes"])
    def test_columnar_parity_on_ipc_backends(self, backend):
        # The same guarantees when the blocks arrive through the pool
        # spool or across the nodes backend's socket frames.
        out = columnar_pipeline_parity(backend=backend)
        assert "bit-identical" in out["details"]
        assert out["n_records"] > 0

    def test_unknown_backend_rejected(self):
        with pytest.raises(CheckFailure, match="unknown backend"):
            columnar_pipeline_parity(backend="mainframe")

    def test_lossy_unpack_is_caught(self, monkeypatch):
        """A decoder that drops a record must fail the round-trip leg."""
        import repro.core.sweep as sweep_mod

        real = sweep_mod.sweep_block_to_records

        def lossy(block):
            return real(block)[:-1]

        monkeypatch.setattr(sweep_mod, "sweep_block_to_records", lossy)
        with pytest.raises(CheckFailure, match="round-trip altered"):
            columnar_pipeline_parity()

    def test_wrong_group_order_is_caught(self, monkeypatch):
        """A factorizer that numbers groups in sorted instead of
        first-appearance order must fail the group_by parity leg."""
        import repro.frame.table as table_mod

        real = table_mod._composite_codes

        def sorted_order(cols):
            codes = real(cols)
            return None if codes is None else codes.max() - codes

        monkeypatch.setattr(table_mod, "_composite_codes", sorted_order)
        with pytest.raises(CheckFailure, match="group_by diverged"):
            columnar_pipeline_parity()

    def test_reversing_descending_sort_is_caught(self, monkeypatch):
        """The regressed sort (reverse the ascending order array) breaks
        the stable-tie contract and must fail the sort leg."""
        from repro.frame.table import Table

        real = Table.sort_by

        def reversing(self, names, descending=False):
            out = real(self, names)
            if descending:
                out = out.take(list(range(out.num_rows - 1, -1, -1)))
            return out

        monkeypatch.setattr(Table, "sort_by", reversing)
        with pytest.raises(CheckFailure, match="stable-tie"):
            columnar_pipeline_parity()


# ----------------------------------------------------------------------
# Resilience degrade+resume parity
# ----------------------------------------------------------------------
class TestResilienceDegradeParity:
    def test_registered_in_differential_suite(self):
        assert "resilience-degrade-parity" in [
            name for name, _ in SUITES["differential"]
        ]

    @pytest.mark.parametrize("backend", ["serial", "pool", "nodes"])
    def test_quick_degrade_parity_per_backend(self, backend):
        out = resilience_degrade_parity(backend=backend)
        assert "bit-identical" in out["details"]
        assert out["backend"] == backend
        assert out["n_quarantined"] >= 1
        assert out["n_recovered"] >= 1

    def test_unknown_backend_rejected(self):
        with pytest.raises(CheckFailure, match="unknown backend"):
            resilience_degrade_parity(backend="mainframe")

    def test_silent_corruption_swallow_is_caught(self, monkeypatch):
        """Regress the cache to its old behavior — corruption read as a
        plain miss, never recorded — and the check must fail: resume
        parity alone is not enough, the fault must be *observable*."""
        from repro.core.cache import SweepCache

        real_get = SweepCache.get

        def swallowing(self, key):
            records = real_get(self, key)
            self.corrupt_keys.clear()
            return records

        monkeypatch.setattr(SweepCache, "get", swallowing)
        with pytest.raises(CheckFailure, match="corrupt"):
            resilience_degrade_parity()


# ----------------------------------------------------------------------
# Sharded multi-backend execution parity
# ----------------------------------------------------------------------
class TestShardedExecutionParity:
    def test_registered_in_differential_suite(self):
        assert "sharded-execution-parity" in [
            name for name, _ in SUITES["differential"]
        ]

    def test_quick_sharded_parity(self):
        out = sharded_execution_parity()
        assert out["n_records"] > 0
        # Every backend appears at shard counts 1, 2 and 4.
        assert len(out["combinations"]) == 9
        for backend in ("serial", "pool", "nodes"):
            for shards in (1, 2, 4):
                assert f"{backend}x{shards}" in out["combinations"]
        # The chaos leg observed both node fault kinds and quarantined.
        assert out["chaos_fault_kinds"] == ["node-lost",
                                            "shard-partition"]
        assert out["n_quarantined"] >= 1

    def test_order_sensitive_backend_is_caught(self, monkeypatch):
        """A backend that yields outcomes out of submission order must
        fail the parity sweep.  (Regressing the serial reference would
        be invisible — both sides would shuffle alike — so the fault
        goes into the nodes backend.)"""
        from repro.resilience.backends import NodesBackend

        real = NodesBackend.stream

        def completion_order(self, tasks, ledger=None):
            outcomes = list(real(self, tasks, ledger))
            mid = len(outcomes) // 2
            return iter(outcomes[mid:] + outcomes[:mid])

        monkeypatch.setattr(NodesBackend, "stream", completion_order)
        with pytest.raises(CheckFailure,
                           match="nodes.*diverged|diverged from"):
            sharded_execution_parity()
