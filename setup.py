"""Thin setup.py shim.

Kept so `pip install -e .` works on environments whose setuptools predates
PEP 660 editable-wheel support (metadata lives in pyproject.toml).
"""

from setuptools import setup

setup()
