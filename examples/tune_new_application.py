#!/usr/bin/env python3
"""Tune an *unseen* application with influence-guided search pruning.

The paper's conclusion proposes using the influence analysis to prune
autotuning search spaces.  This example plays that workflow end to end for
an application that is NOT one of the 15 studied benchmarks:

1. describe the new app with the synthetic workload generator (here: an
   irregular task-tree code, "mystery-sim"),
2. sweep the *known* benchmarks once to learn per-(arch, app) influence,
3. pick the influence row of the most similar known app (a task app),
4. prune the environment space to the variables that mattered there,
5. hill-climb the pruned space on the new app and compare against
   hill-climbing the full space: same quality, far fewer evaluations.

Run:  python examples/tune_new_application.py
"""

from repro import (
    EnvSpace,
    SweepPlan,
    enrich_with_speedup,
    get_machine,
    hill_climb,
    influence_by_arch_application,
    label_optimal,
    prune_space,
    records_to_table,
    run_sweep,
)
from repro.workloads import synthetic_task_workload

ARCH = "milan"


def main() -> None:
    machine = get_machine(ARCH)
    space = EnvSpace()

    # 1. The new application: fine-grained irregular tasking.
    mystery = synthetic_task_workload(
        name="mystery-sim",
        depth=7,
        branching=3,
        leaf_work=2e-6,
        node_work=4e-7,
        leaf_sigma=0.7,
        mem_intensity=0.2,
        trips=4,
    )
    print(f"new application: {mystery.name} "
          f"({mystery.parallel_regions[0].n_tasks} tasks/region)\n")

    # 2. Learn influence from the known task benchmarks.
    print(f"# learning influence from known benchmarks on {ARCH} ...")
    result = run_sweep(
        SweepPlan(arch=ARCH, workload_names=("nqueens", "health", "alignment"),
                  scale="small", repetitions=2)
    )
    dataset = label_optimal(enrich_with_speedup(records_to_table(result.records)))
    influence = {
        row.label: row
        for row in influence_by_arch_application(dataset).rows
    }

    # 3. The new app is task-parallel and fine-grained -> nqueens is the
    #    closest studied computation pattern (paper Sec. VI caveat: this
    #    similarity judgement is the user's).
    donor = influence[(ARCH, "nqueens")]
    print(f"donor influence row (nqueens): top features = "
          f"{donor.top_features(4)}\n")

    # 4/5. Tune: full space vs influence-pruned space.
    full = hill_climb(mystery, machine, space, restarts=1, seed=0)
    pruned_space = prune_space(space, donor, threshold=0.06)
    pruned = hill_climb(mystery, machine, pruned_space, restarts=1, seed=0)

    kept = [v.env_name for v in pruned_space.variables]
    print(f"pruned space keeps {len(kept)}/{len(space.variables)} "
          f"variables: {kept}\n")
    print(f"{'':14s}{'evaluations':>12s}{'speedup':>10s}   config")
    for label, res in (("full space", full), ("pruned space", pruned)):
        env = " ".join(f"{k}={v}" for k, v in res.best_config.as_env().items())
        print(f"{label:14s}{res.evaluations:12d}{res.speedup:10.3f}   "
              f"{env or '(defaults)'}")

    saved = 1.0 - pruned.evaluations / full.evaluations
    retained = pruned.speedup / full.speedup
    print(f"\npruning saved {saved:.0%} of the tuning evaluations while "
          f"retaining {retained:.0%} of the speedup.")


if __name__ == "__main__":
    main()
