#!/usr/bin/env python3
"""Anatomy of a run: where does the simulated libomp spend its time?

Dissects two contrasting benchmarks — MG (fork-heavy loop code) and
NQueens (fine-grained tasking) — on Milan:

- per-phase wall-time breakdown under the default configuration,
- how each knob moves each phase (one-factor-at-a-time deltas),
- the ICVs libomp actually derives from each setting (including the
  OMP_WAIT_POLICY derivation from KMP_LIBRARY + KMP_BLOCKTIME),
- analytic vs discrete-event task simulation for the NQueens region.

Run:  python examples/runtime_anatomy.py
"""

from repro import EnvConfig, RuntimeExecutor, get_machine, get_workload
from repro.core.envspace import EnvSpace
from repro.runtime.kernel import task_acquire_seconds
from repro.runtime.program import TaskRegion

ARCH = "milan"


def breakdown(executor: RuntimeExecutor, program) -> None:
    costs = executor.phase_costs(program)
    total = sum(c.seconds for c in costs)
    print(f"  total {total * 1e3:9.3f} ms")
    for c in costs:
        share = c.seconds / total
        bar = "#" * int(round(40 * share))
        print(f"    {c.name:22s} {c.kind:6s} {c.seconds * 1e3:9.3f} ms "
              f"{share:6.1%} {bar}")


def main() -> None:
    machine = get_machine(ARCH)
    space = EnvSpace()

    for app in ("mg", "nqueens"):
        workload = get_workload(app)
        program = workload.program(workload.default_input)
        print(f"\n=== {program.name} on {ARCH} ===")

        default = RuntimeExecutor(machine, EnvConfig())
        print("phase breakdown (default config):")
        breakdown(default, program)
        base = default.execute(program)

        print("\none-factor-at-a-time deltas vs default:")
        for config in space.ofat_grid(machine)[1:]:
            runtime = RuntimeExecutor(machine, config).execute(program)
            delta = runtime / base - 1.0
            if abs(delta) < 0.02:
                continue  # only show the knobs that move this app
            env = " ".join(f"{k}={v}" for k, v in config.as_env().items())
            print(f"    {env:40s} {delta:+7.1%}")

    # ICV derivation showcase.
    print("\n=== ICV resolution (libomp default derivations) ===")
    for config in (
        EnvConfig(),
        EnvConfig(places="cores"),
        EnvConfig(library="turnaround"),
        EnvConfig(blocktime="infinite"),
        EnvConfig(num_threads=3),
    ):
        executor = RuntimeExecutor(machine, config)
        icvs = executor.icvs
        env = " ".join(f"{k}={v}" for k, v in config.as_env().items())
        print(f"  {env or '(all unset)':34s} -> bind={icvs.bind.value:7s} "
              f"wait={icvs.wait_policy.value:8s} "
              f"reduction={icvs.reduction.value:8s} "
              f"acquire={task_acquire_seconds(icvs, executor.costs) * 1e6:.2f}us")

    # Analytic vs DES for the NQueens task region.
    print("\n=== task-model fidelity: analytic vs discrete-event ===")
    program = get_workload("nqueens").program("medium")
    region = next(p for p in program.phases if isinstance(p, TaskRegion))
    print(f"  region: {region.n_tasks} tasks, depth {region.depth}, "
          f"branching {region.branching}")
    for env in ({}, {"library": "turnaround"}):
        label = env.get("library", "default")
        analytic = RuntimeExecutor(machine, EnvConfig(**env), "analytic")
        des = RuntimeExecutor(machine, EnvConfig(**env), "des")
        a = analytic.engine.task_region_seconds(region, "analytic")
        d = des.engine.task_region_seconds(region, "des", seed=7)
        print(f"  {label:10s} analytic={a * 1e3:7.3f} ms  "
              f"des={d * 1e3:7.3f} ms  "
              f"(error {abs(a - d) / d:5.1%})")


if __name__ == "__main__":
    main()
