#!/usr/bin/env python3
"""Quickstart: what does tuning the LLVM/OpenMP runtime buy on each machine?

Runs a handful of the paper's benchmarks on all three simulated machines
(Table I), compares the default configuration against a few hand-picked
environment settings, and prints the speedups — a five-second tour of the
study's core question.

Run:  python examples/quickstart.py
"""

from repro import ALL_MACHINES, EnvConfig, execute, get_workload
from repro.frame.table import Table

# The configurations a practitioner might try first (paper Sec. III).
CANDIDATES = {
    "default": EnvConfig(),
    "turnaround": EnvConfig(library="turnaround"),
    "bind spread": EnvConfig(places="ll_caches", proc_bind="spread"),
    "half threads": None,  # filled per machine below
    "master (bad!)": EnvConfig(proc_bind="master"),
}

APPS = ("nqueens", "xsbench", "cg", "ep")


def main() -> None:
    rows = []
    for arch, machine in ALL_MACHINES.items():
        for app_name in APPS:
            workload = get_workload(app_name)
            if not workload.runs_on(arch):
                continue
            program = workload.program(workload.default_input)
            default = execute(program, machine, EnvConfig())
            row = {"arch": arch, "app": app_name, "default_s": default}
            for label, config in CANDIDATES.items():
                if label == "default":
                    continue
                if config is None:
                    config = EnvConfig(num_threads=machine.n_cores // 2)
                runtime = execute(program, machine, config)
                row[label] = default / runtime  # speedup over default
            rows.append(row)

    table = Table.from_records(rows)
    print("Speedup over the default configuration (x):\n")
    print(table.to_text(float_fmt="{:.3f}"))
    print(
        "\nReadings: NQueens wants spin-waiting (turnaround) everywhere;"
        "\nXSBench only has headroom on Milan (NUMA congestion); EP has"
        "\nnothing to tune; master binding is always catastrophic."
    )


if __name__ == "__main__":
    main()
