#!/usr/bin/env python3
"""Tour of the extensions beyond the paper's published analysis.

The paper's conclusion names its own future work; this example runs it:

1. **Non-linear models** — a random forest on the same optimal/sub-optimal
   task, vs the paper's logistic regression: accuracy gain + how the
   feature attribution shifts,
2. **Transfer to unseen applications** — leave-one-app-out accuracy and
   configuration-transfer regret, plus the limited-data fine-tune curve,
3. **OMP_PLACES=numa_domains** — the place kind the paper deferred
   (requires hwloc on real metal; our topology knows NUMA natively),
4. **Energy/EDP** — the related-work objective, showing where turnaround
   is a free lunch (NQueens: faster AND cheaper) and where it is not,
5. **Variable interactions** — the "unclear dependency relationships"
   quantified from a dedicated two-factor sweep.

Run:  python examples/extensions_tour.py
"""

from repro import (
    EnvConfig,
    SweepPlan,
    enrich_with_speedup,
    execute,
    get_machine,
    get_workload,
    label_optimal,
    records_to_table,
    run_sweep,
)
from repro.core.interactions import strongest_interactions
from repro.core.nonlinear import compare_models
from repro.core.transfer import fine_tune, leave_one_app_out, recommend_for_unseen
from repro.frame.ops import concat_tables
from repro.runtime.power import energy_profile


def main() -> None:
    print("# sweeping a mixed app set on all machines (small scale) ...")
    tables = []
    for arch in ("a64fx", "skylake", "milan"):
        result = run_sweep(
            SweepPlan(
                arch=arch,
                workload_names=("nqueens", "health", "xsbench", "su3bench",
                                "cg"),
                scale="small",
                repetitions=2,
            )
        )
        tables.append(records_to_table(result.records))
    dataset = label_optimal(enrich_with_speedup(concat_tables(tables)))
    print(f"  {dataset.num_rows} samples\n")

    # -- 1. non-linear vs linear ----------------------------------------
    print("# 1. non-linear models (paper future work)")
    for c in compare_models(dataset, by=("arch",), n_trees=12):
        print(
            f"  {c.label[0]:8s} logistic {c.linear_accuracy:.3f} -> "
            f"forest {c.forest_accuracy:.3f} (+{c.accuracy_gain:.3f}); "
            f"forest top features: {', '.join(c.top_forest)}"
        )

    # -- 2. transfer ------------------------------------------------------
    print("\n# 2. transfer to unseen applications (paper caveat)")
    for r in leave_one_app_out(dataset, apps=("nqueens", "xsbench"),
                               n_trees=8):
        print(
            f"  hold out {r.app:8s}: in-sample acc {r.in_sample_accuracy:.3f}"
            f" vs transfer acc {r.transfer_accuracy:.3f} "
            f"(gap {r.transfer_gap:+.3f})"
        )
    rec = recommend_for_unseen(dataset, app="nqueens", arch="milan")
    print(
        f"  config transfer to nqueens/milan from "
        f"{'+'.join(rec.donor_apps)}: achieves {rec.achieved_speedup:.2f}x "
        f"of a possible {rec.best_speedup:.2f}x (regret {rec.regret:.0%})"
    )
    curve = fine_tune(dataset, app="nqueens", arch="milan",
                      budgets=(0, 4, 16, 64))
    curve_text = "  ".join(f"n={b}: {r:.0%}" for b, r in curve)
    print(f"  fine-tune regret vs probe budget: {curve_text}")

    # -- 3. numa_domains ---------------------------------------------------
    print("\n# 3. OMP_PLACES=numa_domains (deferred in the paper)")
    milan = get_machine("milan")
    su3 = get_workload("su3bench").program("default")
    base = execute(su3, milan, EnvConfig())
    for places in ("sockets", "ll_caches", "numa_domains"):
        t = execute(su3, milan, EnvConfig(places=places, proc_bind="spread"))
        print(f"  su3bench/milan places={places:12s} speedup {base / t:.3f}x")

    # -- 4. energy ----------------------------------------------------------
    print("\n# 4. energy/EDP (related-work objective)")
    for app in ("nqueens", "ep"):
        program = get_workload(app).program(get_workload(app).default_input)
        for label, cfg in (("default", EnvConfig()),
                           ("turnaround", EnvConfig(library="turnaround")),
                           ("half threads",
                            EnvConfig(num_threads=milan.n_cores // 2))):
            p = energy_profile(program, milan, cfg)
            print(
                f"  {app:8s} {label:12s} t={p.runtime_s * 1e3:8.3f} ms  "
                f"E={p.energy_j:8.3f} J  P={p.avg_power_w:6.1f} W  "
                f"EDP={p.edp:.2e}"
            )

    # -- 5. interactions ----------------------------------------------------
    print("\n# 5. variable interactions (two-factor design, milan)")
    result = run_sweep(
        SweepPlan(arch="milan", workload_names=("nqueens", "su3bench"),
                  scale="twofactor", repetitions=1)
    )
    two_factor = enrich_with_speedup(records_to_table(result.records))
    for pair in strongest_interactions(two_factor, k=4):
        print(
            f"  {pair.label:28s} strength {pair.strength:.3f}  "
            f"worst conflict: {'+'.join(pair.worst_conflict)} "
            f"({pair.worst_conflict_value:+.3f} log-speedup)"
        )
    print("  -> turnaround and blocktime=infinite buy the SAME active "
          "waiting;\n     tune one of them, not both.")


if __name__ == "__main__":
    main()
