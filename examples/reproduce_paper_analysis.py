#!/usr/bin/env python3
"""End-to-end reproduction of the paper's analysis pipeline, in miniature.

Sweeps a subset of applications on all three machines, then walks the
paper's Sec. IV/V methodology step by step:

1. measurement-consistency check (Wilcoxon signed-rank, Table III),
2. per-run statistics (Table IV),
3. speedup computation and headline ranges (Sec. V-1),
4. the failed linear-regression fit and the classification reformulation,
5. influence heat maps for all three groupings (Figs. 2-4, SVG + text),
6. recommendations and worst trends (Table VII, Sec. V-4).

Artifacts land in ``examples/output/``.  Use ``--scale medium`` for a
richer (slower) sweep.

Run:  python examples/reproduce_paper_analysis.py [--scale small|medium]
"""

import argparse
from pathlib import Path

import numpy as np

from repro import (
    SweepPlan,
    best_variable_values,
    enrich_with_speedup,
    influence_by_application,
    influence_by_arch_application,
    influence_by_architecture,
    label_optimal,
    records_to_table,
    run_sweep,
    worst_trends,
    write_csv,
)
from repro.core.dataset import run_columns
from repro.core.influence import linear_fit_quality
from repro.frame.ops import concat_tables
from repro.stats.descriptive import summarize
from repro.stats.wilcoxon import wilcoxon_signed_rank
from repro.viz.heatmap import influence_heatmap
from repro.viz.text import text_heatmap

APPS = ("alignment", "nqueens", "xsbench", "cg")


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", default="small",
                        choices=("small", "medium", "full"))
    args = parser.parse_args()

    out = Path(__file__).parent / "output"
    out.mkdir(exist_ok=True)

    # -- 1. sweep all three machines -----------------------------------
    print(f"# Sweeping {APPS} on three machines (scale={args.scale}) ...")
    tables = []
    for arch in ("a64fx", "skylake", "milan"):
        result = run_sweep(
            SweepPlan(arch=arch, workload_names=APPS, scale=args.scale,
                      repetitions=3)
        )
        print(f"  {arch}: {result.n_samples} samples "
              f"({result.n_measurements} measurements)")
        tables.append(records_to_table(result.records))
    dataset = label_optimal(enrich_with_speedup(concat_tables(tables)))
    write_csv(dataset, out / "dataset.csv")
    print(f"  dataset -> {out / 'dataset.csv'}")

    # -- 2. measurement consistency (Table III) ------------------------
    print("\n# Wilcoxon run-consistency per machine (Table III):")
    cols = run_columns(dataset)
    for (arch,), sub in dataset.group_by("arch"):
        r0 = np.asarray(sub[cols[0]], float)
        r1 = np.asarray(sub[cols[1]], float)
        res = wilcoxon_signed_rank(r0, r1)
        verdict = "noisy" if res.significant() else "consistent"
        print(f"  {arch:8s} R0 vs R1: p = {res.pvalue:9.3g}  -> {verdict}")

    # -- 3. per-run statistics (Table IV) -------------------------------
    print("\n# Mean runtime per repetition index (Table IV):")
    for (arch,), sub in dataset.group_by("arch"):
        means = [summarize(np.asarray(sub[c], float)).mean for c in cols]
        formatted = "  ".join(f"R{i}={m:.4f}s" for i, m in enumerate(means))
        print(f"  {arch:8s} {formatted}")

    # -- 4. speedups ----------------------------------------------------
    print("\n# Best per-setting speedup ranges (Sec. V-1):")
    for (arch,), sub in dataset.group_by("arch"):
        maxima = [
            float(np.max(np.asarray(g["speedup"], float)))
            for _, g in sub.group_by(["app", "input_size", "num_threads"])
        ]
        print(f"  {arch:8s} range {min(maxima):.3f}-{max(maxima):.3f}x "
              f"median {np.median(maxima):.3f}x")

    # -- 5. linear fit fails -> classification --------------------------
    r2 = linear_fit_quality(dataset)
    optimal_frac = float(np.asarray(dataset["optimal"], float).mean())
    print(f"\n# OLS on naive-encoded features: R^2 = {r2:.3f} (poor)")
    print(f"# -> classify optimal (speedup > 1.01): "
          f"{optimal_frac:.1%} of samples optimal")

    # -- 6. influence heat maps (Figs. 2-4) ------------------------------
    for name, inf in (
        ("fig2_by_application", influence_by_application(dataset)),
        ("fig3_by_architecture", influence_by_architecture(dataset)),
        ("fig4_by_arch_application", influence_by_arch_application(dataset)),
    ):
        influence_heatmap(inf).save(str(out / f"{name}.svg"))
        print(f"\n# {name} (accuracy {inf.mean_accuracy():.2f}) "
              f"-> {out / (name + '.svg')}")
        print(text_heatmap(inf.matrix(), inf.row_labels,
                           list(inf.feature_names)))

    # -- 7. recommendations (Table VII) ----------------------------------
    print("\n# Recommendations (top-5% slice, Table VII analogue):")
    for rec in best_variable_values(dataset):
        if rec.variable == "defaults":
            print(f"  {rec.app:10s} {rec.arch:8s} -> defaults already good "
                  f"(best {rec.best_speedup:.2f}x)")
        else:
            print(f"  {rec.app:10s} {rec.arch:8s} -> {rec.variable} = "
                  f"{'/'.join(rec.values):20s} (best {rec.best_speedup:.2f}x)")

    print("\n# Worst trends (Sec. V-4):")
    for trend in worst_trends(dataset):
        print(f"  {trend.variable}={trend.value}: "
              f"{trend.lift:.1f}x over-represented among the worst runs, "
              f"mean speedup {trend.mean_speedup:.3f}x")


if __name__ == "__main__":
    main()
